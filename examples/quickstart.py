#!/usr/bin/env python3
"""Quickstart: the paper's mini-world (Table I) end to end.

Streams the seven basketball box scores from Example 1 through the
engine and shows, for the last arrival (Wesley's 12/13/5 game), which
contexts and measure combinations make it a contextual skyline tuple —
plus the prominence ranking of §VII.

Run:  python examples/quickstart.py
"""

from repro import DiscoveryConfig, EngineSpec, TableSchema, open_engine
from repro.reporting import narrate

schema = TableSchema(
    dimensions=("player", "month", "season", "team", "opp_team"),
    measures=("points", "assists", "rebounds"),
)

GAMELOG = [
    dict(player="Bogues", month="Feb", season="1991-92", team="Hornets",
         opp_team="Hawks", points=4, assists=12, rebounds=5),
    dict(player="Seikaly", month="Feb", season="1991-92", team="Heat",
         opp_team="Hawks", points=24, assists=5, rebounds=15),
    dict(player="Sherman", month="Dec", season="1993-94", team="Celtics",
         opp_team="Nets", points=13, assists=13, rebounds=5),
    dict(player="Wesley", month="Feb", season="1994-95", team="Celtics",
         opp_team="Nets", points=2, assists=5, rebounds=2),
    dict(player="Wesley", month="Feb", season="1994-95", team="Celtics",
         opp_team="Timberwolves", points=3, assists=5, rebounds=3),
    dict(player="Strickland", month="Jan", season="1995-96", team="Blazers",
         opp_team="Celtics", points=27, assists=18, rebounds=8),
    dict(player="Wesley", month="Feb", season="1995-96", team="Celtics",
         opp_team="Nets", points=12, assists=13, rebounds=5),
]


def main() -> None:
    # One declarative spec opens any engine composition (add
    # sharding=ShardingSpec(...) or window=N and nothing else changes).
    spec = EngineSpec(schema, algorithm="stopdown", config=DiscoveryConfig())
    with open_engine(spec) as engine:
        # Feed the historical tuples (t1..t6).
        engine.observe_many(GAMELOG[:-1])

        # t7 arrives: discover every (constraint, measure-subspace) pair
        # that makes it a contextual skyline tuple.
        facts = engine.facts_for(GAMELOG[-1])
        print(f"t7 is a contextual skyline tuple for {len(facts)} pairs "
              f"(the paper quotes 196; exact enumeration gives 195).\n")

        print("Top facts by prominence:")
        for fact in facts.ranked()[:8]:
            print(f"  {fact.describe(schema)}")

        print("\nNarrated, newsroom-style:")
        for fact in facts.ranked()[:3]:
            print(f"  - {narrate(fact, schema)}")

        # The same engine answers forward queries (Engine.query()).
        skyline = engine.query().skyline_text("team=Celtics | assists")
        print(f"\nForward query: {len(skyline)} tuple(s) in the "
              f"team=Celtics assists skyline.")


if __name__ == "__main__":
    main()
