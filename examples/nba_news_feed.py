#!/usr/bin/env python3
"""The §VII case study: a streaming NBA news desk.

Streams synthetic box scores (the substitute for the paper's 317 K-row
gamelog) through a prominence-thresholded news feed with the paper's
reporting parameters (d̂=3, m̂=3) and prints the headlines the engine
would hand a sports journalist — the "Damon Stoudamire scored 54 points,
the highest in history by any Trail Blazer"-style facts.

Run:  python examples/nba_news_feed.py [n_tuples] [tau]
"""

import sys

from repro import DiscoveryConfig, EngineSpec, open_engine
from repro.datasets import nba_rows, nba_schema
from repro.reporting import NewsFeed


def main(n: int = 1500, tau: float = 25.0) -> None:
    schema = nba_schema(d=5, m=4)
    # The feed runs over any Engine: this spec opens an in-proc
    # stopdown engine, but sharding=ShardingSpec(4, "process") would
    # serve the same feed from four subspace-parallel workers.
    spec = EngineSpec(
        schema,
        algorithm="stopdown",
        config=DiscoveryConfig(max_bound_dims=3, max_measure_dims=3, tau=tau),
    )
    feed = NewsFeed(schema, engine=open_engine(spec))
    rows = nba_rows(n, d=5, m=4)
    print(f"Streaming {n} box scores (tau={tau}, d̂=3, m̂=3)...\n")
    for i, row in enumerate(rows):
        for headline in feed.push(row):
            print(f"[game {i:5d}] {headline.text}")
    total = len(feed.headlines)
    print(f"\n{total} prominent facts from {n} tuples "
          f"({1000 * total / n:.1f} per 1000 tuples — the paper's Fig. 14 "
          f"band is 5-25 per 1000 at its scale).")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    tau = float(sys.argv[2]) if len(sys.argv) > 2 else 25.0
    main(n, tau)
