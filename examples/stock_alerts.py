#!/usr/bin/env python3
"""Stock-market situational facts (intro example #1: "Stock A becomes
the first stock in history with price over $300 and market cap over
$400 billion").

Generates a synthetic daily stock tape (sector / exchange dimensions,
price / market-cap / volume measures) and reports days on which a
ticker's readings are a prominent contextual skyline — first-ever
combinations within its sector, its exchange, or the whole market.

Run:  python examples/stock_alerts.py [n_days]
"""

import random
import sys

from repro import DiscoveryConfig, EngineSpec, TableSchema, open_engine
from repro.reporting import narrate

SECTORS = ("tech", "energy", "finance", "health", "retail")
EXCHANGES = ("NYSE", "NASDAQ")


def stock_tape(n: int, n_tickers: int = 60, seed: int = 99):
    rng = random.Random(seed)
    tickers = []
    for i in range(n_tickers):
        tickers.append(
            {
                "ticker": f"STK{i:03d}",
                "sector": rng.choice(SECTORS),
                "exchange": rng.choice(EXCHANGES),
                "price": rng.uniform(10, 80),
                "cap": rng.uniform(1, 50),  # billions
            }
        )
    for day in range(n):
        stock = rng.choice(tickers)
        # Geometric random walk with drift: occasional break-outs.
        stock["price"] *= rng.lognormvariate(0.0007, 0.03)
        stock["cap"] *= rng.lognormvariate(0.0007, 0.025)
        yield {
            "ticker": stock["ticker"],
            "sector": stock["sector"],
            "exchange": stock["exchange"],
            "quarter": f"Q{1 + (day * 8 // max(n, 1)) % 4}",
            "price": round(stock["price"], 2),
            "market_cap": round(stock["cap"], 2),
            "volume": round(rng.paretovariate(1.8), 2),
        }


def main(n: int = 2000) -> None:
    schema = TableSchema(
        dimensions=("ticker", "sector", "exchange", "quarter"),
        measures=("price", "market_cap", "volume"),
    )
    config = DiscoveryConfig(max_bound_dims=2, max_measure_dims=2, tau=40.0)
    spec = EngineSpec(schema, algorithm="stopdown", config=config)

    print(f"Streaming {n} ticks (tau={config.tau})...\n")
    alerts = 0
    with open_engine(spec) as engine:
        for i, row in enumerate(stock_tape(n)):
            for fact in engine.observe(row):
                alerts += 1
                print(f"[tick {i:5d}] {narrate(fact, schema)}")
    print(f"\n{alerts} market alerts raised.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2000)
