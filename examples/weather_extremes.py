#!/usr/bin/env python3
"""Weather-extremes monitoring (the paper's second dataset and its
intro example #2: "City B has never encountered such high wind speed
and humidity in March").

Streams synthetic UK daily forecasts and reports, per arrival, the most
prominent context in which the day's readings are unprecedented — e.g.
unmatched wind speed + humidity among all March records for a country.

Run:  python examples/weather_extremes.py [n_tuples]
"""

import sys

from repro import DiscoveryConfig, EngineSpec, open_engine
from repro.datasets import weather_rows, weather_schema
from repro.reporting import narrate


def main(n: int = 1200) -> None:
    schema = weather_schema(d=5, m=4)
    config = DiscoveryConfig(max_bound_dims=2, max_measure_dims=2, tau=30.0)
    spec = EngineSpec(schema, algorithm="stopdown", config=config)

    rows = weather_rows(n, d=5, m=4)
    print(f"Streaming {n} forecasts (tau={config.tau})...\n")
    alerts = 0
    with open_engine(spec) as engine:
        for i, row in enumerate(rows):
            for fact in engine.observe(row):
                alerts += 1
                print(f"[day {i:5d}] {narrate(fact, schema)}")
    print(f"\n{alerts} weather alerts raised.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1200)
