#!/usr/bin/env python3
"""Side-by-side comparison of all discovery algorithms on one stream.

Runs every registry algorithm over the same synthetic NBA prefix,
verifies they emit identical fact sets (the paper's correctness
contract), and prints a work/space summary — a miniature of the §VI
evaluation in one screen.

Run:  python examples/algorithm_comparison.py [n_tuples]
"""

import sys
import time

from repro import DiscoveryConfig, EngineSpec, open_engine
from repro.datasets import nba_rows, nba_schema

ALGOS = (
    "bruteforce",
    "baselineseq",
    "baselineidx",
    "ccsc",
    "bottomup",
    "topdown",
    "sbottomup",
    "stopdown",
    "svec",
)


def main(n: int = 150) -> None:
    schema = nba_schema(d=4, m=4)
    config = DiscoveryConfig(max_bound_dims=4)
    rows = nba_rows(n, d=4, m=4)

    print(f"{n} tuples, d=4, m=4, d̂=4\n")
    header = (
        f"{'algorithm':<12} {'time/tuple':>11} {'comparisons':>12} "
        f"{'traversed':>10} {'stored':>8}"
    )
    print(header)
    print("-" * len(header))

    reference = None
    for name in ALGOS:
        # Each engine differs only in the spec's algorithm field.
        spec = EngineSpec(schema, algorithm=name, config=config, score=False)
        with open_engine(spec) as engine:
            start = time.perf_counter()
            outputs = [fs.pairs for fs in engine.facts_for_many(rows)]
            elapsed = time.perf_counter() - start
            if reference is None:
                reference = outputs
            else:
                assert outputs == reference, f"{name} disagrees with bruteforce!"
            print(
                f"{name:<12} {1000 * elapsed / n:>9.2f}ms "
                f"{engine.counters.comparisons:>12,} "
                f"{engine.counters.traversed_constraints:>10,} "
                f"{engine.algorithm.stored_tuple_count():>8,}"
            )
    print("\nAll algorithms produced identical fact sets.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150)
