#!/usr/bin/env python3
"""Windowed record watching with Elias-style framing.

Combines two extensions: a sliding window (facts hold within the recent
window, not all history) and historical narration — when a windowed fact
fires, the full retained history is searched for the last precedent so
the headline reads like the paper's opening example: *"... the first
Pacers player with a 20/10/5 game against the Bulls since Detlef
Schrempf in December 1992."*

Run:  python examples/record_watch.py [n_tuples] [window]
"""

import sys

from repro import DiscoveryConfig, EngineSpec, TableSchema, open_engine
from repro.datasets import nba_rows
from repro.reporting.history import narrate_with_history

SCHEMA = TableSchema(
    dimensions=("player", "season", "team", "opp_team"),
    measures=("points", "rebounds", "assists"),
)

ENTITY_ATTR = 0  # player
WHEN_ATTR = 1  # season


def main(n: int = 1200, window: int = 300) -> None:
    config = DiscoveryConfig(max_bound_dims=2, max_measure_dims=2, tau=40.0)
    # Windowing is one spec field; the window layer composes over any
    # engine (swap in sharding=ShardingSpec(...) unchanged).
    spec = EngineSpec(SCHEMA, algorithm="stopdown", config=config,
                      window=window)
    full_history = []  # retained beyond the window, for "first since"

    keep = set(SCHEMA.dimensions) | set(SCHEMA.measures)
    rows = [
        {k: v for k, v in row.items() if k in keep}
        for row in nba_rows(n, d=4, m=4)
    ]
    print(f"Watching {n} games, window={window}, tau={config.tau}\n")
    headlines = 0
    with open_engine(spec) as engine:
        for i, row in enumerate(rows):
            facts = engine.observe(row)
            newest = engine.table[len(engine.table) - 1]
            for fact in facts:
                headlines += 1
                text = narrate_with_history(
                    fact,
                    SCHEMA,
                    full_history,
                    entity_attribute=ENTITY_ATTR,
                    when_attribute=WHEN_ATTR,
                )
                print(f"[game {i:5d}] {text}")
            full_history.append(newest)
    print(f"\n{headlines} windowed records spotted.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1200
    window = int(sys.argv[2]) if len(sys.argv) > 2 else 300
    main(n, window)
