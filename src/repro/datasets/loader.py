"""CSV loading/saving of row streams for a given schema.

Lets users replay their own data (e.g. real NBA gamelogs in the paper's
layout) through the engine.  Dimension values stay strings; measures are
parsed as floats (ints when exact).
"""

from __future__ import annotations

import csv
from typing import Dict, Iterator, List

from ..core.schema import SchemaError, TableSchema


def load_rows(path: str, schema: TableSchema) -> Iterator[Dict[str, object]]:
    """Yield rows from a CSV file with a header line.

    Raises :class:`SchemaError` if the header is missing any schema
    attribute; extra columns are ignored.
    """
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        header = set(reader.fieldnames or ())
        missing = [
            a for a in (*schema.dimensions, *schema.measures) if a not in header
        ]
        if missing:
            raise SchemaError(f"CSV {path!r} is missing columns: {missing}")
        for raw in reader:
            row: Dict[str, object] = {d: raw[d] for d in schema.dimensions}
            for m in schema.measures:
                value = float(raw[m])
                row[m] = int(value) if value.is_integer() else value
            yield row


def save_rows(path: str, schema: TableSchema, rows: List[Dict[str, object]]) -> None:
    """Write rows to CSV in schema attribute order."""
    fields = [*schema.dimensions, *schema.measures]
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
