"""Generic synthetic workloads: independent / correlated / anti-correlated.

The standard skyline-benchmark distributions (Börzsönyi et al. [5]),
extended with categorical dimension attributes of configurable
cardinality.  Used by property tests (randomised small tables) and the
ablation benches (workload-shape sensitivity).
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Sequence

from ..core.schema import TableSchema

INDEPENDENT = "independent"
CORRELATED = "correlated"
ANTICORRELATED = "anticorrelated"

_DISTRIBUTIONS = (INDEPENDENT, CORRELATED, ANTICORRELATED)


def synthetic_schema(n_dims: int, n_measures: int) -> TableSchema:
    """Schema ``d0..d{n-1}`` / ``m0..m{s-1}``, all max-preferred."""
    return TableSchema(
        tuple(f"d{i}" for i in range(n_dims)),
        tuple(f"m{i}" for i in range(n_measures)),
    )


def generate_synthetic(
    n: int,
    n_dims: int,
    n_measures: int,
    distribution: str = INDEPENDENT,
    cardinalities: Sequence[int] | None = None,
    seed: int = 7,
) -> Iterator[Dict[str, object]]:
    """Yield ``n`` rows with the requested measure correlation.

    Parameters
    ----------
    distribution:
        ``independent`` — i.i.d. uniform measures;
        ``correlated``  — measures share a common latent factor
        (small skylines);
        ``anticorrelated`` — measures trade off against each other
        (large skylines, the stress case).
    cardinalities:
        Domain size per dimension attribute (default 8 each).
    """
    if distribution not in _DISTRIBUTIONS:
        raise ValueError(
            f"distribution must be one of {_DISTRIBUTIONS}, got {distribution!r}"
        )
    cards = list(cardinalities or [8] * n_dims)
    if len(cards) != n_dims:
        raise ValueError("cardinalities must have one entry per dimension")
    rng = random.Random(seed)
    for _ in range(n):
        row: Dict[str, object] = {
            f"d{i}": f"v{rng.randrange(cards[i])}" for i in range(n_dims)
        }
        if distribution == INDEPENDENT:
            values = [rng.random() for _ in range(n_measures)]
        elif distribution == CORRELATED:
            base = rng.random()
            values = [
                min(1.0, max(0.0, base + rng.gauss(0, 0.08)))
                for _ in range(n_measures)
            ]
        else:  # anticorrelated: points near the anti-diagonal plane
            raw = [rng.random() for _ in range(n_measures)]
            total = sum(raw)
            budget = rng.gauss(n_measures / 2.0, 0.12)
            scale = budget / total if total else 1.0
            values = [min(1.0, max(0.0, v * scale)) for v in raw]
        for i, v in enumerate(values):
            row[f"m{i}"] = round(v, 6)
        yield row


def synthetic_rows(
    n: int,
    n_dims: int,
    n_measures: int,
    distribution: str = INDEPENDENT,
    cardinalities: Sequence[int] | None = None,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Materialised :func:`generate_synthetic`."""
    return list(
        generate_synthetic(n, n_dims, n_measures, distribution, cardinalities, seed)
    )
