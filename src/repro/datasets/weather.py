"""Synthetic UK weather-forecast generator (substitute for the Met Office
archive the paper streams, see DESIGN.md §2).

Shape matches the paper's description: 7 dimension attributes
(location, country, month, time step, day/night wind direction,
visibility range) and 7 measures (day/night wind speed, temperature,
humidity, plus wind gust), with larger-dominates-smaller on every
measure (paper §VI-A).  Measures carry seasonal structure so contexts
such as ``month=Jan ∧ country=Scotland`` have correlated extremes, the
property the case-study-style facts depend on.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterator, List, Tuple

from ..core.schema import TableSchema

DIMENSIONS: Tuple[str, ...] = (
    "location",
    "country",
    "month",
    "time_step",
    "wind_dir_day",
    "wind_dir_night",
    "visibility_range",
)

MEASURES: Tuple[str, ...] = (
    "wind_speed_day",
    "wind_speed_night",
    "temperature_day",
    "temperature_night",
    "humidity_day",
    "humidity_night",
    "wind_gust",
)

_COUNTRIES = (
    "England",
    "Scotland",
    "Wales",
    "NorthernIreland",
    "Guernsey",
    "Jersey",
)
_MONTHS = ("Dec", "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov")
_TIME_STEPS = ("0-6h", "6-12h", "12-18h", "18-24h")
_WIND_DIRS = ("N", "NE", "E", "SE", "S", "SW", "W", "NW")
_VISIBILITY = ("VeryPoor", "Poor", "Moderate", "Good", "VeryGood", "Excellent")


def weather_schema(d: int = 7, m: int = 7) -> TableSchema:
    """Schema over the first ``d`` dimensions / ``m`` measures.

    The paper's weather runs use ``d=5, m=7``; prefix subsets keep the
    most selective attributes (location, country, month) first.
    """
    if not 1 <= d <= len(DIMENSIONS):
        raise ValueError(f"d must be in 1..{len(DIMENSIONS)}, got {d}")
    if not 1 <= m <= len(MEASURES):
        raise ValueError(f"m must be in 1..{len(MEASURES)}, got {m}")
    return TableSchema(DIMENSIONS[:d], MEASURES[:m])


def generate_weather(
    n: int,
    seed: int = 2012,
    n_locations: int = 500,
) -> Iterator[Dict[str, object]]:
    """Yield ``n`` synthetic daily-forecast rows in chronological order.

    Each location has a fixed country and a climate offset; measures mix
    a seasonal sinusoid, per-location bias, and heavy-tailed gusts.
    """
    rng = random.Random(seed)
    locations = []
    for i in range(n_locations):
        country = rng.choice(_COUNTRIES)
        locations.append(
            (
                f"Loc{i:04d}",
                country,
                rng.uniform(-3.0, 3.0),  # temperature bias
                rng.uniform(0.7, 1.5),  # wind exposure factor
            )
        )
    for produced in range(n):
        month_idx = (produced * len(_MONTHS)) // max(n, 1)
        month = _MONTHS[month_idx % len(_MONTHS)]
        season = math.cos(2 * math.pi * (month_idx % len(_MONTHS)) / len(_MONTHS))
        name, country, temp_bias, wind_factor = rng.choice(locations)
        base_temp = 11.0 - 7.0 * season + temp_bias
        base_wind = (9.0 + 5.0 * season) * wind_factor
        wind_day = max(0.0, rng.gauss(base_wind, 3.0))
        wind_night = max(0.0, rng.gauss(base_wind * 0.85, 3.0))
        yield {
            "location": name,
            "country": country,
            "month": month,
            "time_step": rng.choice(_TIME_STEPS),
            "wind_dir_day": rng.choice(_WIND_DIRS),
            "wind_dir_night": rng.choice(_WIND_DIRS),
            "visibility_range": rng.choice(_VISIBILITY),
            "wind_speed_day": round(wind_day, 1),
            "wind_speed_night": round(wind_night, 1),
            "temperature_day": round(rng.gauss(base_temp, 2.5), 1),
            "temperature_night": round(rng.gauss(base_temp - 4.0, 2.5), 1),
            "humidity_day": round(min(100.0, max(20.0, rng.gauss(72 + 8 * season, 9))), 1),
            "humidity_night": round(min(100.0, max(20.0, rng.gauss(80 + 6 * season, 8))), 1),
            "wind_gust": round(wind_day * (1.3 + rng.paretovariate(4.0) * 0.2), 1),
        }


def weather_rows(n: int, d: int = 5, m: int = 7, seed: int = 2012) -> List[Dict[str, object]]:
    """Materialised rows projected to the ``(d, m)`` prefix subsets."""
    keep = set(DIMENSIONS[:d]) | set(MEASURES[:m])
    return [
        {k: v for k, v in row.items() if k in keep}
        for row in generate_weather(n, seed)
    ]
