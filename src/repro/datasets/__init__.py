"""Dataset substrates: synthetic NBA, synthetic UK weather, generic
skyline-benchmark workloads, and CSV replay."""

from .loader import load_rows, save_rows
from .nba import (
    DIMENSION_SPACES,
    MEASURE_SPACES,
    dimension_space,
    generate_nba,
    measure_space,
    nba_rows,
    nba_schema,
)
from .synthetic import (
    ANTICORRELATED,
    CORRELATED,
    INDEPENDENT,
    generate_synthetic,
    synthetic_rows,
    synthetic_schema,
)
from .weather import generate_weather, weather_rows, weather_schema

__all__ = [
    "load_rows",
    "save_rows",
    "DIMENSION_SPACES",
    "MEASURE_SPACES",
    "dimension_space",
    "measure_space",
    "generate_nba",
    "nba_rows",
    "nba_schema",
    "ANTICORRELATED",
    "CORRELATED",
    "INDEPENDENT",
    "generate_synthetic",
    "synthetic_rows",
    "synthetic_schema",
    "generate_weather",
    "weather_rows",
    "weather_schema",
]
