"""Synthetic NBA box-score generator (substitute for the paper's dataset).

The paper streams 317,371 real box scores (1991–2004 regular seasons)
with 8 dimension attributes and 7 measures.  We cannot ship that data,
so this module generates a deterministic synthetic stream with the same
*shape*: identical attribute sets, realistic dimension cardinalities
(hundreds of players, 30 teams, ~50 colleges, ~35 states, 13 seasons,
7 months, 5 positions) and skewed, position-correlated stat lines.
Skyline/lattice behaviour depends only on these shape properties, so the
substitution preserves the phenomena the experiments measure (see
DESIGN.md §2).

Dimension/measure subsets for the paper's ``d``/``m`` sweeps (Tables V
and VI) are exposed via :func:`dimension_space` and
:func:`measure_space`.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Sequence, Tuple

from ..core.schema import MIN, TableSchema

#: Table V — dimension spaces for d = 4..7 (8-attribute full space).
DIMENSION_SPACES: Dict[int, Tuple[str, ...]] = {
    4: ("player", "season", "team", "opp_team"),
    5: ("player", "season", "month", "team", "opp_team"),
    6: ("position", "college", "state", "season", "team", "opp_team"),
    7: ("position", "college", "state", "season", "month", "team", "opp_team"),
    8: (
        "player",
        "position",
        "college",
        "state",
        "season",
        "month",
        "team",
        "opp_team",
    ),
}

#: Table VI — measure spaces for m = 4..7.
MEASURE_SPACES: Dict[int, Tuple[str, ...]] = {
    4: ("points", "rebounds", "assists", "blocks"),
    5: ("points", "rebounds", "assists", "blocks", "steals"),
    6: ("points", "rebounds", "assists", "blocks", "steals", "fouls"),
    7: (
        "points",
        "rebounds",
        "assists",
        "blocks",
        "steals",
        "fouls",
        "turnovers",
    ),
}

#: Smaller is better on these (paper §VI-A).
MIN_PREFERRED = ("fouls", "turnovers")

_POSITIONS = ("PG", "SG", "SF", "PF", "C")
_MONTHS = ("Nov", "Dec", "Jan", "Feb", "Mar", "Apr", "May")
_TEAMS = tuple(f"TEAM{i:02d}" for i in range(30))
_COLLEGES = tuple(f"College{i:02d}" for i in range(50))
_STATES = tuple(f"State{i:02d}" for i in range(35))
_SEASONS = tuple(f"{1991 + i}-{(92 + i) % 100:02d}" for i in range(13))

#: Per-position (mean points, mean rebounds, mean assists, mean blocks,
#: mean steals) — rough league-average archetypes.
_ARCHETYPES = {
    "PG": (11.0, 3.0, 6.5, 0.2, 1.4),
    "SG": (13.0, 3.5, 3.0, 0.3, 1.1),
    "SF": (12.0, 5.0, 2.5, 0.5, 1.0),
    "PF": (10.5, 7.0, 1.8, 0.9, 0.8),
    "C": (9.5, 8.0, 1.2, 1.4, 0.6),
}


def dimension_space(d: int) -> Tuple[str, ...]:
    """Dimension attributes for the paper's ``d`` parameter (Table V)."""
    try:
        return DIMENSION_SPACES[d]
    except KeyError:
        raise ValueError(f"d must be in {sorted(DIMENSION_SPACES)}, got {d}") from None


def measure_space(m: int) -> Tuple[str, ...]:
    """Measure attributes for the paper's ``m`` parameter (Table VI)."""
    try:
        return MEASURE_SPACES[m]
    except KeyError:
        raise ValueError(f"m must be in {sorted(MEASURE_SPACES)}, got {m}") from None


def nba_schema(d: int = 5, m: int = 7) -> TableSchema:
    """Schema matching the paper's experiment configuration ``(d, m)``."""
    measures = measure_space(m)
    prefs = {name: MIN for name in MIN_PREFERRED if name in measures}
    return TableSchema(dimension_space(d), measures, prefs)


class _Player:
    __slots__ = ("name", "position", "college", "state", "team", "skill")

    def __init__(self, rng: random.Random, index: int) -> None:
        self.name = f"Player{index:04d}"
        self.position = rng.choice(_POSITIONS)
        self.college = rng.choice(_COLLEGES)
        self.state = rng.choice(_STATES)
        self.team = rng.choice(_TEAMS)
        # Long-tailed skill multiplier: a few stars, many role players.
        self.skill = 0.4 + rng.paretovariate(3.0) * 0.45


def generate_nba(
    n: int,
    seed: int = 2014,
    n_players: int = 400,
) -> Iterator[Dict[str, object]]:
    """Yield ``n`` synthetic box-score rows in chronological order.

    Rows are grouped by season (like the real gamelog stream), and every
    row carries the full 8-dimension / 7-measure attribute set; callers
    project down via the schema.
    """
    rng = random.Random(seed)
    players = [_Player(rng, i) for i in range(n_players)]
    per_season = max(1, n // len(_SEASONS))
    produced = 0
    for season in _SEASONS:
        if produced >= n:
            break
        # A few rookies join each season: new player dimension values,
        # which is what keeps new contexts forming (paper §VII, Fig. 14).
        for _ in range(max(1, n_players // 40)):
            players.append(_Player(rng, len(players)))
        for _ in range(per_season):
            if produced >= n:
                break
            yield _game_row(rng, players, season)
            produced += 1
    while produced < n:  # round the count out in the last season
        yield _game_row(rng, players, _SEASONS[-1])
        produced += 1


def _game_row(
    rng: random.Random, players: Sequence[_Player], season: str
) -> Dict[str, object]:
    player = rng.choice(players)
    opp = rng.choice([t for t in _TEAMS if t != player.team])
    pts_mu, reb_mu, ast_mu, blk_mu, stl_mu = _ARCHETYPES[player.position]
    skill = player.skill
    hot = rng.gammavariate(2.0, 0.5)  # game-to-game variance, long tail

    def stat(mu: float, spread: float = 1.0) -> int:
        value = rng.gammavariate(1.8, mu * skill * spread / 1.8) * hot
        return max(0, int(round(value)))

    return {
        "player": player.name,
        "position": player.position,
        "college": player.college,
        "state": player.state,
        "season": season,
        "month": rng.choice(_MONTHS),
        "team": player.team,
        "opp_team": opp,
        "points": stat(pts_mu),
        "rebounds": stat(reb_mu),
        "assists": stat(ast_mu),
        "blocks": stat(blk_mu),
        "steals": stat(stl_mu),
        "fouls": min(6, stat(2.2, 0.8)),
        "turnovers": stat(1.6, 0.9),
    }


def nba_rows(n: int, d: int = 5, m: int = 7, seed: int = 2014) -> List[Dict[str, object]]:
    """Materialised list of rows projected to the ``(d, m)`` attribute
    subsets (convenience for benches)."""
    dims = dimension_space(d)
    measures = measure_space(m)
    keep = set(dims) | set(measures)
    return [
        {k: v for k, v in row.items() if k in keep} for row in generate_nba(n, seed)
    ]
