"""Forward contextual-skyline queries (the classic direction, [13]).

The paper solves the *reverse* problem — given an answer tuple, find the
queries.  Downstream users still need the forward direction: given a
``(constraint, measure-subspace)`` pair, return the contextual skyline,
the k-skyband, or context statistics.  :class:`ContextualQueryEngine`
answers those against a live discovery algorithm, using its maintained
``µ`` stores when the algorithm has them, the columnar read kernels
(:mod:`repro.query.kernels`) when the algorithm keeps a columnar
history, and falling back to exact scalar recomputation otherwise.

Batched reads go through the cost-ordered planner
(:mod:`repro.query.planner`) via :meth:`ContextualQueryEngine.batch`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..algorithms.base import DiscoveryAlgorithm
from ..algorithms.bottom_up import BottomUp
from ..algorithms.top_down import TopDown
from ..core.constraint import UNBOUND, Constraint
from ..core.dominance import dominates
from ..core.lattice import iter_submasks
from ..core.record import Record
from ..core.schema import TableSchema
from .kernels import ColumnarQueryKernels
from .parser import parse_query


class ContextualQueryEngine:
    """Query façade over a discovery algorithm's state.

    Obtained uniformly from any engine via ``engine.query()`` (the
    :class:`~repro.core.engine_protocol.Engine` protocol); sharded
    engines return the router-merged subclass from
    :mod:`repro.service.sharding`.  ``algorithm`` may be any
    algorithm-shaped state view: an object with ``table``, ``schema``
    and ``maintained_subspaces()`` (store-backed fast paths engage only
    for real :class:`BottomUp` / :class:`TopDown` instances).

    ``context_counter`` (the engine's incremental ``|σ_C|`` counter)
    and the columnar kernels are optional accelerations — every answer
    they produce is property-identical to the scalar path, which
    ``use_kernels=False`` pins for differential testing.

    Examples
    --------
    >>> from repro import TableSchema, make_algorithm
    >>> schema = TableSchema(("team",), ("pts", "ast"))
    >>> algo = make_algorithm("bottomup", schema)
    >>> _ = algo.process({"team": "T", "pts": 10, "ast": 2})
    >>> queries = ContextualQueryEngine(algo)
    >>> [r.tid for r in queries.skyline_text("team=T | pts")]
    [0]
    """

    def __init__(
        self,
        algorithm: "DiscoveryAlgorithm",
        context_counter=None,
        use_kernels: bool = True,
    ) -> None:
        self.algorithm = algorithm
        self.schema: TableSchema = algorithm.schema
        self._counter = context_counter
        self._use_kernels = use_kernels
        self._kernels_cache: Optional[ColumnarQueryKernels] = None
        self._kernels_resolved = False

    def _kernels(self) -> Optional[ColumnarQueryKernels]:
        if not self._use_kernels:
            return None
        if not self._kernels_resolved:
            self._kernels_cache = ColumnarQueryKernels.for_algorithm(self.algorithm)
            self._kernels_resolved = True
        return self._kernels_cache

    # ------------------------------------------------------------------
    # Skyline queries
    # ------------------------------------------------------------------
    def skyline(self, constraint: Constraint, subspace: int) -> List[Record]:
        """``λ_M(σ_C(R))`` — from the store when the pair is maintained,
        via the columnar kernels when the algorithm keeps a columnar
        history, exactly recomputed otherwise.

        The store paths reconstruct from maintained anchors, which is
        exact only for constraints within the ``d̂`` bound cap — a
        beyond-cap constraint's skyline tuple may be anchored nowhere
        (dominated in every maintained ancestor context), so those
        queries take the exact kernel/scalar path instead."""
        if self._maintained(subspace) and self._within_bound_cap(constraint):
            if isinstance(self.algorithm, BottomUp):
                return list(self.algorithm.store.get(constraint, subspace))
            if isinstance(self.algorithm, TopDown):
                return self._skyline_from_maximal(constraint, subspace)
        if subspace == 0:
            return []
        kernels = self._kernels()
        if kernels is not None:
            return kernels.skyband_records(constraint, subspace, 1)
        from ..core.skyline import contextual_skyline

        return contextual_skyline(self.algorithm.table, constraint, subspace)

    def skyline_text(self, query: str) -> List[Record]:
        """Skyline for a textual query (see :mod:`repro.query.parser`)."""
        constraint, subspace = parse_query(query, self.schema)
        return self.skyline(constraint, subspace)

    def _maintained(self, subspace: int) -> bool:
        return subspace in self.algorithm.maintained_subspaces()

    def _within_bound_cap(self, constraint: Constraint) -> bool:
        """True when the algorithm's anchor skeleton covers this
        constraint (bound count within ``d̂``) — the validity condition
        for store reconstruction and scoring-index probes alike."""
        config = getattr(self.algorithm, "config", None)
        if config is None:
            return False
        return constraint.bound_count <= config.effective_bound_cap(
            constraint.arity
        )

    def _skyline_from_maximal(
        self, constraint: Constraint, subspace: int
    ) -> List[Record]:
        """Invariant 2 reconstruction: a skyline tuple of ``(C, M)`` is
        anchored at ``C`` or one of its ancestors and satisfies ``C``."""
        store = self.algorithm.store
        seen = {}
        mask = constraint.bound_mask
        n = constraint.arity
        for sub in iter_submasks(mask):
            anc = Constraint(
                tuple(
                    constraint.values[i] if sub & (1 << i) else UNBOUND
                    for i in range(n)
                )
            )
            for record in store.get(anc, subspace):
                if record.tid not in seen and constraint.satisfied_by(record):
                    seen[record.tid] = record
        return list(seen.values())

    # ------------------------------------------------------------------
    # k-skyband and statistics
    # ------------------------------------------------------------------
    def skyband(
        self, constraint: Constraint, subspace: int, k: int
    ) -> List[Record]:
        """The k-skyband of the context: tuples dominated by fewer than
        ``k`` others (``k=1`` is the skyline).  Related work [11] builds
        its "one-of-the-few" objects on this notion.  Columnar
        algorithms answer with one chunked dominance-count reduction;
        the scalar double loop remains the fallback."""
        if k < 1:
            raise ValueError("k must be >= 1")
        kernels = self._kernels()
        if kernels is not None:
            return kernels.skyband_records(constraint, subspace, k)
        context = self.algorithm.table.select_constraint(constraint)
        out = []
        for record in context:
            dominators = 0
            for other in context:
                if other.tid != record.tid and dominates(other, record, subspace):
                    dominators += 1
                    if dominators >= k:
                        break
            if dominators < k:
                out.append(record)
        return out

    def context_size(self, constraint: Constraint) -> int:
        """``|σ_C(R)|`` — O(1) off the engine's context counter when it
        covers the constraint exactly, one columnar selection reduction
        otherwise, scalar table scan as the last resort."""
        counted = self._counted_context(constraint)
        if counted is not None:
            return counted
        kernels = self._kernels()
        if kernels is not None:
            return kernels.context_size(constraint)
        return len(self.algorithm.table.select_constraint(constraint))

    def prominence(self, constraint: Constraint, subspace: int) -> Optional[float]:
        """Prominence of the pair (§VII): ``|σ_C| / |λ_M(σ_C)|``, or
        ``None`` for an empty context (or empty subspace).  Both
        cardinalities come from one shared selection — O(1) when the
        counter and scoring index cover the pair, never two table
        scans."""
        stats = self._fast_statistics(constraint, subspace)
        if stats is not None:
            ctx, sky = stats
            return None if sky == 0 else ctx / sky
        if (
            self._maintained(subspace)
            and self._within_bound_cap(constraint)
            and isinstance(self.algorithm, (BottomUp, TopDown))
        ):
            sky = len(self.skyline(constraint, subspace))
            if sky == 0:
                return None
            return self.context_size(constraint) / sky
        kernels = self._kernels()
        if kernels is not None:
            ctx, sky = kernels.context_and_skyline_size(constraint, subspace)
            return None if sky == 0 else ctx / sky
        from ..core.skyline import skyline_bnl

        context = self.algorithm.table.select_constraint(constraint)
        sky = len(skyline_bnl(context, subspace))
        if sky == 0:
            return None
        return len(context) / sky

    def is_skyline_tuple(
        self, tid: int, constraint: Constraint, subspace: int
    ) -> bool:
        """Membership test for a specific live tuple — short-circuits on
        the first dominator instead of materialising the skyline."""
        if subspace == 0:
            return False
        target = None
        for record in self.algorithm.table:
            if record.tid == tid:
                target = record
                break
        if target is None or not constraint.satisfied_by(target):
            return False
        kernels = self._kernels()
        if kernels is not None:
            return not kernels.has_dominator(target, constraint, subspace)
        for other in self.algorithm.table:
            if (
                other.tid != tid
                and constraint.satisfied_by(other)
                and dominates(other, target, subspace)
            ):
                return False
        return True

    # ------------------------------------------------------------------
    # Planner hooks (overridable per composition — sharded push-down)
    # ------------------------------------------------------------------
    def _counted_context(self, constraint: Constraint) -> Optional[int]:
        """``|σ_C|`` in O(1) from the engine's counter, or ``None`` when
        the counter does not cover the constraint exactly."""
        counter = self._counter
        if counter is None:
            return None
        covers = getattr(counter, "covers", None)
        if covers is None or not covers(constraint):
            return None
        return counter.count(constraint)

    def _skyline_size_indexed(
        self, constraint: Constraint, subspace: int
    ) -> Optional[int]:
        """``|λ_M(σ_C)|`` as one scoring-index probe, or ``None`` when
        the pair is not covered (non-maintained subspace, beyond-cap
        constraint, no index)."""
        if not self._maintained(subspace) or not self._within_bound_cap(constraint):
            return None
        kernels = self._kernels()
        if kernels is None:
            return None
        return kernels.skyline_size(constraint, subspace)

    def _fast_statistics(
        self, constraint: Constraint, subspace: int
    ) -> Optional[Tuple[int, int]]:
        """Exact ``(|σ_C|, |λ_M(σ_C)|)`` without touching any rows, or
        ``None``.  The planner prices and short-circuits queries with
        this."""
        ctx = self._counted_context(constraint)
        if ctx is None:
            return None
        if ctx == 0:
            return 0, 0
        sky = self._skyline_size_indexed(constraint, subspace)
        if sky is None:
            return None
        return ctx, sky

    # ------------------------------------------------------------------
    # Batched, cost-ordered execution
    # ------------------------------------------------------------------
    def batch(
        self,
        queries: Sequence[Union[str, Tuple[Constraint, int]]],
        top_k: Optional[int] = None,
        tau: Optional[float] = None,
        _fixed_order: bool = False,
    ):
        """Answer many ``(constraint, subspace)`` queries (or query
        strings) through the cost-ordered planner: cheapest first, with
        early termination once the ``tau`` / ``top_k`` bounds are
        provably met.  Returns the reported
        :class:`~repro.query.planner.QueryResult` list in input order;
        ``_fixed_order=True`` pins naive input-order execution for
        differential testing and benchmarks.  See
        :class:`~repro.query.planner.QueryPlan`.
        """
        from .planner import QueryPlan

        plan = QueryPlan(
            self, queries, top_k=top_k, tau=tau, ordered=not _fixed_order
        )
        return plan.execute()
