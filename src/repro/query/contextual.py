"""Forward contextual-skyline queries (the classic direction, [13]).

The paper solves the *reverse* problem — given an answer tuple, find the
queries.  Downstream users still need the forward direction: given a
``(constraint, measure-subspace)`` pair, return the contextual skyline,
the k-skyband, or context statistics.  :class:`ContextualQueryEngine`
answers those against a live discovery algorithm, using its maintained
``µ`` stores when the algorithm has them and falling back to exact
recomputation otherwise.
"""

from __future__ import annotations

from typing import List, Optional

from ..algorithms.base import DiscoveryAlgorithm
from ..algorithms.bottom_up import BottomUp
from ..algorithms.top_down import TopDown
from ..core.constraint import UNBOUND, Constraint
from ..core.dominance import dominates
from ..core.lattice import iter_submasks
from ..core.record import Record
from ..core.schema import TableSchema
from .parser import parse_query


class ContextualQueryEngine:
    """Query façade over a discovery algorithm's state.

    Obtained uniformly from any engine via ``engine.query()`` (the
    :class:`~repro.core.engine_protocol.Engine` protocol); sharded
    engines return the router-merged subclass from
    :mod:`repro.service.sharding`.  ``algorithm`` may be any
    algorithm-shaped state view: an object with ``table``, ``schema``
    and ``maintained_subspaces()`` (store-backed fast paths engage only
    for real :class:`BottomUp` / :class:`TopDown` instances).

    Examples
    --------
    >>> from repro import TableSchema, make_algorithm
    >>> schema = TableSchema(("team",), ("pts", "ast"))
    >>> algo = make_algorithm("bottomup", schema)
    >>> _ = algo.process({"team": "T", "pts": 10, "ast": 2})
    >>> queries = ContextualQueryEngine(algo)
    >>> [r.tid for r in queries.skyline_text("team=T | pts")]
    [0]
    """

    def __init__(self, algorithm: "DiscoveryAlgorithm") -> None:
        self.algorithm = algorithm
        self.schema: TableSchema = algorithm.schema

    # ------------------------------------------------------------------
    # Skyline queries
    # ------------------------------------------------------------------
    def skyline(self, constraint: Constraint, subspace: int) -> List[Record]:
        """``λ_M(σ_C(R))`` — from the store when the pair is maintained,
        exactly recomputed otherwise."""
        if self._maintained(subspace):
            if isinstance(self.algorithm, BottomUp):
                return list(self.algorithm.store.get(constraint, subspace))
            if isinstance(self.algorithm, TopDown):
                return self._skyline_from_maximal(constraint, subspace)
        from ..core.skyline import contextual_skyline

        return contextual_skyline(self.algorithm.table, constraint, subspace)

    def skyline_text(self, query: str) -> List[Record]:
        """Skyline for a textual query (see :mod:`repro.query.parser`)."""
        constraint, subspace = parse_query(query, self.schema)
        return self.skyline(constraint, subspace)

    def _maintained(self, subspace: int) -> bool:
        return subspace in self.algorithm.maintained_subspaces()

    def _skyline_from_maximal(
        self, constraint: Constraint, subspace: int
    ) -> List[Record]:
        """Invariant 2 reconstruction: a skyline tuple of ``(C, M)`` is
        anchored at ``C`` or one of its ancestors and satisfies ``C``."""
        store = self.algorithm.store
        seen = {}
        mask = constraint.bound_mask
        n = constraint.arity
        for sub in iter_submasks(mask):
            anc = Constraint(
                tuple(
                    constraint.values[i] if sub & (1 << i) else UNBOUND
                    for i in range(n)
                )
            )
            for record in store.get(anc, subspace):
                if record.tid not in seen and constraint.satisfied_by(record):
                    seen[record.tid] = record
        return list(seen.values())

    # ------------------------------------------------------------------
    # k-skyband and statistics
    # ------------------------------------------------------------------
    def skyband(
        self, constraint: Constraint, subspace: int, k: int
    ) -> List[Record]:
        """The k-skyband of the context: tuples dominated by fewer than
        ``k`` others (``k=1`` is the skyline).  Related work [11] builds
        its "one-of-the-few" objects on this notion."""
        if k < 1:
            raise ValueError("k must be >= 1")
        context = self.algorithm.table.select_constraint(constraint)
        out = []
        for record in context:
            dominators = 0
            for other in context:
                if other.tid != record.tid and dominates(other, record, subspace):
                    dominators += 1
                    if dominators >= k:
                        break
            if dominators < k:
                out.append(record)
        return out

    def context_size(self, constraint: Constraint) -> int:
        """``|σ_C(R)|``."""
        return len(self.algorithm.table.select_constraint(constraint))

    def prominence(self, constraint: Constraint, subspace: int) -> Optional[float]:
        """Prominence of the pair (§VII): ``|σ_C| / |λ_M(σ_C)|``, or
        ``None`` for an empty context."""
        sky = len(self.skyline(constraint, subspace))
        if sky == 0:
            return None
        return self.context_size(constraint) / sky

    def is_skyline_tuple(
        self, tid: int, constraint: Constraint, subspace: int
    ) -> bool:
        """Membership test for a specific live tuple."""
        return any(r.tid == tid for r in self.skyline(constraint, subspace))
