"""A tiny textual query language for contextual skyline queries.

Grammar (whitespace-insensitive)::

    query      := [conjunction] "|" measures
    conjunction:= binding ("&" binding)*   |   "*"
    binding    := attribute "=" value
    measures   := attribute ("," attribute)*

Examples::

    team=Celtics & opp_team=Nets | assists, rebounds
    * | points
    month=Feb | points, assists, rebounds

Values are matched against dimension domains as strings; numeric
dimension values are coerced when the string parses as a number.
"""

from __future__ import annotations

from typing import Tuple

from ..core.constraint import Constraint
from ..core.schema import SchemaError, TableSchema


class QueryParseError(ValueError):
    """Raised for malformed query strings."""


def _coerce(value: str) -> object:
    text = value.strip()
    try:
        number = float(text)
    except ValueError:
        return text
    return int(number) if number.is_integer() and "." not in text else number


def parse_query(text: str, schema: TableSchema) -> Tuple[Constraint, int]:
    """Parse ``text`` into a ``(constraint, measure-subspace mask)`` pair.

    Raises :class:`QueryParseError` on syntax errors and
    :class:`~repro.core.schema.SchemaError` on unknown attributes.

    >>> schema = TableSchema(("team", "opp"), ("points", "assists"))
    >>> c, m = parse_query("team=Celtics | points", schema)
    >>> c.bound_count, bin(m)
    (1, '0b1')
    """
    if "|" not in text:
        raise QueryParseError(
            "query must contain '|' separating constraint from measures"
        )
    constraint_part, _, measure_part = text.partition("|")
    constraint_part = constraint_part.strip()
    measure_part = measure_part.strip()
    if not measure_part:
        raise QueryParseError("no measure attributes given after '|'")

    bindings = {}
    if constraint_part and constraint_part != "*":
        for clause in constraint_part.split("&"):
            clause = clause.strip()
            if not clause:
                raise QueryParseError("empty conjunct in constraint")
            if "=" not in clause:
                raise QueryParseError(f"conjunct {clause!r} lacks '='")
            name, _, value = clause.partition("=")
            name = name.strip()
            if not name:
                raise QueryParseError(f"conjunct {clause!r} lacks attribute name")
            if name in bindings:
                raise QueryParseError(f"attribute {name!r} bound twice")
            bindings[name] = _coerce(value)

    constraint = Constraint.from_mapping(schema, bindings)

    names = [part.strip() for part in measure_part.split(",")]
    if any(not name for name in names):
        raise QueryParseError("empty measure name in list")
    if len(set(names)) != len(names):
        raise QueryParseError("duplicate measure attribute in list")
    subspace = schema.measure_mask(names)
    return constraint, subspace


def format_query(constraint: Constraint, subspace: int, schema: TableSchema) -> str:
    """Inverse of :func:`parse_query` (canonical spacing)."""
    bindings = constraint.to_mapping(schema)
    if bindings:
        left = " & ".join(f"{k}={v}" for k, v in bindings.items())
    else:
        left = "*"
    right = ", ".join(schema.measure_names(subspace))
    return f"{left} | {right}"
