"""Cost-ordered batched query execution with τ / top-k push-down (PR 8).

``engine.query().batch([...])`` answers many ``(constraint, subspace)``
queries against one engine.  Naively that evaluates every pair in input
order — yet the engine already *knows* most of the answers: the context
counter holds ``|σ_C|`` in O(1) for covered constraints, and the PR-2
scoring index holds ``|λ_M(σ_C)|`` for maintained subspaces, so the
prominence of an indexed pair costs two dict probes.  The planner
exploits that (litmus's rough-cost-then-execute idiom):

1. **Price** every pair from store cardinalities: indexed pairs are
   free; counter-covered pairs cost one selection plus a dominance pass
   over ``|σ_C|`` rows (``n + |σ_C|²``); blind pairs cost ``n + n²``.
2. **Bound** every pair's prominence from the same statistics:
   an indexed pair's prominence is exact; a counter-covered pair is at
   most ``|σ_C|`` (its skyline has ≥ 1 tuple); a known-empty context or
   skyline can never be reported.
3. **Execute cheapest-first** — the free indexed pairs evaluate first
   and seed the τ / top-k thresholds — and **terminate early**: a pair
   whose upper bound falls strictly below the current threshold is
   provably unreportable and is never evaluated.  Thresholds only rise,
   so the reported set is *identical* to naive full evaluation
   (``tests/test_query_planner.py`` fuzzes this).

Reporting semantics (mirroring §VII's ``select_reportable``): with
``tau``, pairs with prominence ≥ τ; with ``top_k``, the k most
prominent with ties at the k-th value kept; combined, top-k of the
τ-survivors; with neither, every query is evaluated and returned.
Results always come back in input order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.constraint import Constraint
from ..core.record import Record
from .parser import parse_query

Query = Union[str, Tuple[Constraint, int]]


def normalize_queries(queries: Sequence[Query], schema) -> List[Tuple[Constraint, int]]:
    """Parse query strings / pass through ``(constraint, subspace)``
    pairs — the shared canonical form for planning and cache keys."""
    pairs = []
    for query in queries:
        if isinstance(query, str):
            pairs.append(parse_query(query, schema))
        else:
            constraint, subspace = query
            pairs.append((constraint, int(subspace)))
    return pairs


@dataclass
class QueryResult:
    """One reported query: the pair, its statistics, and its skyline."""

    constraint: Constraint
    subspace: int
    prominence: Optional[float]
    context_size: int
    skyline_size: int
    skyline: List[Record] = field(repr=False)


@dataclass
class _PlanEntry:
    index: int
    constraint: Constraint
    subspace: int
    ctx: Optional[int]          # exact |σ_C| when the counter covers C
    sky: Optional[int]          # exact |λ_M(σ_C)| when the index covers (C, M)
    prom_known: bool            # prominence decided from statistics alone
    prom: Optional[float]
    cost: float
    upper: float                # provable prominence upper bound
    mode: str                   # "indexed" | "counted" | "scan"


class QueryPlan:
    """Cost-ordered execution plan for one query batch.

    Build with ``ordered=False`` to pin naive input-order execution
    with no early termination (differential testing, benchmarks).
    After :meth:`execute`, ``stats_hits`` / ``evaluated_count`` /
    ``skipped`` describe what the plan actually did.
    """

    def __init__(
        self,
        engine,
        queries: Sequence[Query],
        top_k: Optional[int] = None,
        tau: Optional[float] = None,
        ordered: bool = True,
    ) -> None:
        if top_k is not None and top_k < 1:
            raise ValueError("top_k must be >= 1")
        self._engine = engine
        self._top_k = top_k
        self._tau = tau
        self._ordered = ordered
        #: Indexed pairs answered from statistics alone (no row touched).
        self.stats_hits = 0
        #: Pairs evaluated against the engine.
        self.evaluated_count = 0
        #: Pairs proven unreportable and never evaluated.
        self.skipped = 0
        n = len(engine.algorithm.table)
        self._entries = [
            self._price(i, constraint, subspace, n)
            for i, (constraint, subspace) in enumerate(
                normalize_queries(queries, engine.schema)
            )
        ]

    def _price(
        self, index: int, constraint: Constraint, subspace: int, n: int
    ) -> _PlanEntry:
        engine = self._engine
        ctx = engine._counted_context(constraint)
        sky = 0 if ctx == 0 else engine._skyline_size_indexed(constraint, subspace)
        prom_known = sky is not None and (sky == 0 or ctx is not None)
        prom = None
        if prom_known and sky:
            prom = ctx / sky
        if prom_known:
            upper = prom if prom is not None else -math.inf
            cost, mode = 0.0, "indexed"
        elif ctx is not None:
            upper = float(ctx)
            cost, mode = float(n) + float(ctx) ** 2, "counted"
        else:
            upper = math.inf
            cost, mode = float(n) + float(n) ** 2 + 1.0, "scan"
        return _PlanEntry(
            index, constraint, subspace, ctx, sky, prom_known, prom,
            cost, upper, mode,
        )

    def explain(self) -> List[Dict[str, object]]:
        """Per-query plan in input order (cost model introspection)."""
        return [
            {
                "index": e.index,
                "mode": e.mode,
                "cost": e.cost,
                "upper_bound": e.upper,
                "context_size": e.ctx,
                "skyline_size": e.sky,
            }
            for e in self._entries
        ]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self) -> List[QueryResult]:
        entries = self._entries
        tau, k = self._tau, self._top_k
        bounded = tau is not None or k is not None
        if self._ordered:
            # Cheapest first; among equals, highest upper bound first so
            # the τ/top-k thresholds rise as fast as possible.
            order = sorted(
                range(len(entries)),
                key=lambda i: (entries[i].cost, -entries[i].upper, i),
            )
        else:
            order = list(range(len(entries)))
        proms: Dict[int, Optional[float]] = {}
        top: List[float] = []  # evaluated non-None prominences

        def threshold() -> Optional[float]:
            if k is None or len(top) < k:
                return None
            return sorted(top, reverse=True)[k - 1]

        for i in order:
            entry = entries[i]
            if bounded and self._ordered:
                bound = tau if tau is not None else -math.inf
                current = threshold()
                if current is not None:
                    bound = max(bound, current)
                if entry.upper < bound:
                    # Provably below every future threshold: thresholds
                    # only rise, so this pair can never be reported.
                    self.skipped += 1
                    continue
            if entry.prom_known:
                prom = entry.prom
                self.stats_hits += 1
            else:
                prom = self._engine.prominence(entry.constraint, entry.subspace)
                self.evaluated_count += 1
            proms[i] = prom
            if prom is not None:
                top.append(prom)

        if bounded:
            candidates = [
                i
                for i in sorted(proms)
                if proms[i] is not None and (tau is None or proms[i] >= tau)
            ]
            if k is not None:
                ranked = sorted((proms[i] for i in candidates), reverse=True)
                if len(ranked) >= k:
                    theta = ranked[k - 1]
                    candidates = [i for i in candidates if proms[i] >= theta]
        else:
            candidates = sorted(proms)

        results = []
        for i in candidates:
            entry = entries[i]
            skyline = self._engine.skyline(entry.constraint, entry.subspace)
            ctx = entry.ctx
            if ctx is None:
                ctx = self._engine.context_size(entry.constraint)
            results.append(
                QueryResult(
                    entry.constraint,
                    entry.subspace,
                    proms[i],
                    ctx,
                    len(skyline),
                    skyline,
                )
            )
        return results
