"""Columnar read kernels for the forward query direction (PR 8).

The write path is vectorized end to end (PRs 1-3, 7), but the seed-era
query engine still answered reads with per-Record Python loops: an
O(n) ``satisfied_by`` scan per selection and an O(n²) double loop for
k-skybands.  This module reuses the write path's columnar machinery for
reads over any algorithm that registers its full history into a
:class:`~repro.storage.columnar_store.ColumnarSkylineStore` (``svec``):

* **selection** — the context ``σ_C`` as row indices: one posting-bitset
  AND per bound dimension below the PR-7 sweep-index watermark plus a
  dense compare over the short suffix, falling back to a dense
  ``dims == id`` reduction when the index is off;
* **k-skyband** — dominance *counting* as chunked NumPy broadcast
  reductions over the selected measure rows instead of the scalar
  ``dominates`` pair loop;
* **skyline size** — one probe of the PR-2 scoring index
  (``|λ_M(σ_C)|`` per Invariant 2) for maintained subspaces, so the
  planner prices queries without materialising anything.

Every kernel is property-identical to the scalar
:class:`~repro.query.contextual.ContextualQueryEngine` path, which
remains the fallback for non-columnar algorithms
(``tests/test_query_planner.py`` fuzzes the equivalence).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.constraint import UNBOUND, Constraint
from ..core.record import Record

#: Element budget for one ``(chunk, selection, measures)`` dominance
#: broadcast — bounds peak memory at a few MB regardless of context size.
_CHUNK_ELEMS = 1 << 22


class ColumnarQueryKernels:
    """Vectorized selection / skyband / statistics over one columnar store.

    Valid only for algorithms whose store registers *every* live row
    (the ``svec`` family does: the shared dominance sweep needs the full
    history).  :meth:`for_algorithm` duck-checks the store surface and
    returns ``None`` for anything else, at which point callers keep the
    scalar path.
    """

    def __init__(self, store) -> None:
        self.store = store

    @classmethod
    def for_algorithm(cls, algorithm) -> Optional["ColumnarQueryKernels"]:
        store = getattr(algorithm, "store", None)
        if store is None:
            return None
        needed = ("dims_matrix", "values_matrix", "intern_dims",
                  "record_at", "sweep_index", "scoring_index")
        if not all(callable(getattr(store, name, None)) for name in needed):
            return None
        return cls(store)

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def selection_rows(self, constraint: Constraint) -> np.ndarray:
        """Rows of ``σ_C`` (live, ascending — i.e. arrival order).

        Bound dimensions resolve through the sweep index's per-dimension
        posting bitsets when it is active (one AND per bound dim over
        the stable prefix, dense compare over the suffix); otherwise one
        dense ``dims == id`` reduction per bound dim.  Tombstones carry
        ``-1`` dimension sentinels, so they match no probe; the
        unconstrained selection filters them explicitly.
        """
        store = self.store
        dims = store.dims_matrix()
        n = dims.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if dims.shape[1] == 0:
            live = [r for r in range(n) if store.record_at(r) is not None]
            return np.asarray(live, dtype=np.int64)
        probe_ids = store.intern_dims(constraint.values)
        bound = [i for i, v in enumerate(constraint.values) if v is not UNBOUND]
        if not bound:
            return np.nonzero(dims[:, 0] != np.int32(-1))[0]
        sweep = store.sweep_index()
        if sweep is not None:
            sweep.ensure_folded()
        if sweep is not None and sweep.active:
            packed = sweep.posting(bound[0], int(probe_ids[bound[0]])).copy()
            for j in bound[1:]:
                packed &= sweep.posting(j, int(probe_ids[j]))
            hit = sweep.unpack(packed)
            dead = sweep.dead_mask_u8()
            if dead is not None:
                hit &= dead ^ 1
            prefix = np.nonzero(hit)[0]
            w = sweep.watermark
            tail = dims[w:]
            tail_hit = tail[:, bound[0]] == probe_ids[bound[0]]
            for j in bound[1:]:
                tail_hit &= tail[:, j] == probe_ids[j]
            return np.concatenate((prefix, np.nonzero(tail_hit)[0] + w))
        hit = dims[:, bound[0]] == probe_ids[bound[0]]
        for j in bound[1:]:
            hit &= dims[:, j] == probe_ids[j]
        return np.nonzero(hit)[0]

    def context_size(self, constraint: Constraint) -> int:
        """``|σ_C|`` as one selection reduction (no Record objects)."""
        return int(self.selection_rows(constraint).size)

    # ------------------------------------------------------------------
    # k-skyband
    # ------------------------------------------------------------------
    def _measure_positions(self, subspace: int) -> List[int]:
        width = self.store.values_matrix().shape[1]
        return [i for i in range(width) if (subspace >> i) & 1]

    def _dominator_counts(self, values: np.ndarray) -> np.ndarray:
        """Per-row count of dominators within ``values`` (rows × measures).

        Chunked broadcast of the dominance test (``≥`` everywhere and
        ``>`` somewhere, larger-is-better after ``Table._normalise``);
        a row never dominates itself or an exact duplicate, so no
        self-exclusion is needed.
        """
        s, m = values.shape
        counts = np.empty(s, dtype=np.int64)
        chunk = max(1, _CHUNK_ELEMS // max(1, s * max(1, m)))
        for lo in range(0, s, chunk):
            cand = values[lo:lo + chunk]
            ge = (values[None, :, :] >= cand[:, None, :]).all(axis=2)
            gt = (values[None, :, :] > cand[:, None, :]).any(axis=2)
            counts[lo:lo + chunk] = (ge & gt).sum(axis=1)
        return counts

    def skyband_records(
        self, constraint: Constraint, subspace: int, k: int
    ) -> List[Record]:
        """The k-skyband of ``(C, M)`` — tuples dominated by fewer than
        ``k`` context tuples — in arrival order (scalar-path parity).
        ``k=1`` is the contextual skyline."""
        rows = self.selection_rows(constraint)
        if rows.size == 0:
            return []
        mpos = self._measure_positions(subspace)
        values = self.store.values_matrix()[rows][:, mpos]
        keep = rows[self._dominator_counts(values) < k]
        records = [self.store.record_at(r) for r in keep]
        records.sort(key=lambda record: record.tid)
        return records

    def has_dominator(
        self, record: Record, constraint: Constraint, subspace: int
    ) -> bool:
        """Any context tuple dominating ``record`` in ``subspace``?
        One broadcast pass — the membership test never materialises the
        skyline."""
        mpos = self._measure_positions(subspace)
        if not mpos:
            return False
        rows = self.selection_rows(constraint)
        if rows.size == 0:
            return False
        values = self.store.values_matrix()[rows][:, mpos]
        probe = np.asarray(record.values, dtype=np.float64)[mpos]
        ge = (values >= probe).all(axis=1)
        gt = (values > probe).any(axis=1)
        return bool((ge & gt).any())

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def context_and_skyline_size(
        self, constraint: Constraint, subspace: int
    ) -> "tuple":
        """``(|σ_C|, |λ_M(σ_C)|)`` off *one* shared selection — the
        prominence fallback never scans twice."""
        rows = self.selection_rows(constraint)
        ctx = int(rows.size)
        if ctx == 0:
            return 0, 0
        mpos = self._measure_positions(subspace)
        if not mpos:
            return ctx, 0
        values = self.store.values_matrix()[rows][:, mpos]
        sky = int((self._dominator_counts(values) == 0).sum())
        return ctx, sky

    def skyline_size(self, constraint: Constraint, subspace: int) -> Optional[int]:
        """``|λ_M(σ_C)|`` as one scoring-index probe, valid for any
        bound mask and any subspace the algorithm *maintains* (callers
        gate on that — a non-maintained subspace has no anchors and
        would read as empty).  ``None`` when the index is unavailable.
        """
        store = self.store
        if store.score_shift is None or store.mask_keys is None:
            return None
        index = store.scoring_index()
        if index is None:
            return None
        table = index.get(store.score_key(subspace, constraint.bound_mask))
        if not table:
            return 0
        key = store.mask_keys[constraint.bound_mask](constraint.values)
        return int(table.get(key, 0))
