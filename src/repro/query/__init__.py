"""Forward contextual-skyline queries and the textual query language.

PR 8 grew this package a full read path: columnar kernels
(:mod:`repro.query.kernels`), the cost-ordered batch planner
(:mod:`repro.query.planner`) and the versioned result cache
(:mod:`repro.query.cache`).
"""

from .cache import CachedQueryEngine, QueryResultCache
from .contextual import ContextualQueryEngine
from .kernels import ColumnarQueryKernels
from .parser import QueryParseError, format_query, parse_query
from .planner import QueryPlan, QueryResult, normalize_queries

__all__ = [
    "ContextualQueryEngine",
    "ColumnarQueryKernels",
    "QueryPlan",
    "QueryResult",
    "QueryResultCache",
    "CachedQueryEngine",
    "normalize_queries",
    "QueryParseError",
    "parse_query",
    "format_query",
]
