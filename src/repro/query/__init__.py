"""Forward contextual-skyline queries and the textual query language."""

from .contextual import ContextualQueryEngine
from .parser import QueryParseError, format_query, parse_query

__all__ = [
    "ContextualQueryEngine",
    "QueryParseError",
    "parse_query",
    "format_query",
]
