"""Versioned result caching for the forward query surface (PR 8).

Read-heavy serving workloads repeat queries far more often than they
write.  :class:`QueryResultCache` is a small LRU keyed by
``(query key, engine version)`` where the version is the pair
``(arrivals, deletions)`` — every engine mutation strictly increases one
of the two, so a version match proves the cached answer is still exact
and *no explicit invalidation hook is needed*: a write simply makes
every cached version stale, and stale entries are overwritten (or aged
out by the LRU) on their next probe.

:class:`CachedQueryEngine` wraps any
:class:`~repro.query.contextual.ContextualQueryEngine` (the router-
merged sharded subclass included) and memoises its full read surface —
``skyline`` / ``skyband`` / ``context_size`` / ``prominence`` /
``is_skyline_tuple`` / ``batch``.  List-valued answers are copied on
every hit so callers mutating their result cannot poison the cache.

The layer composes over any engine via
:class:`~repro.api.middleware.QueryCacheMiddleware`
(``EngineSpec(query_cache=N)``); hit/miss/eviction counters surface
through ``engine.stats()`` and :class:`~repro.metrics.service.ServiceStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.constraint import Constraint
from ..core.record import Record
from .parser import parse_query
from .planner import QueryResult, normalize_queries

#: ``(arrivals, deletions)`` — totally ordered by engine mutations.
Version = Tuple[int, int]


class QueryResultCache:
    """LRU of ``key -> (version, value)`` with occupancy accounting.

    A probe whose stored version differs from the live engine version is
    a *miss* (the entry is stale); the fresh answer then overwrites it
    in place, so writes never grow the cache beyond ``capacity``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("query cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[object, Tuple[Version, object]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: object, version: Version) -> Tuple[bool, object]:
        """``(hit, value)`` — a version mismatch counts as a miss."""
        entry = self._entries.get(key)
        if entry is not None and entry[0] == version:
            self._entries.move_to_end(key)
            self.hits += 1
            return True, entry[1]
        self.misses += 1
        return False, None

    def put(self, key: object, version: Version, value: object) -> None:
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = (version, value)
        while len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> Dict[str, int]:
        """JSON-able counter rendering (feeds ``engine.stats()``)."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class CachedQueryEngine:
    """Memoising façade over a :class:`ContextualQueryEngine`.

    ``version_fn`` returns the live engine's ``(arrivals, deletions)``
    pair; answers are cached against the version current at compute
    time, so any interleaved write invalidates them for free.  Exposes
    the same read surface as the wrapped engine (it *is* the object
    ``engine.query()`` returns for cached compositions).
    """

    def __init__(
        self,
        inner,
        cache: QueryResultCache,
        version_fn: Callable[[], Version],
    ) -> None:
        self.inner = inner
        self.algorithm = inner.algorithm
        self.schema = inner.schema
        self.cache = cache
        self._version = version_fn

    # ------------------------------------------------------------------
    # Memoisation core
    # ------------------------------------------------------------------
    def _memo(self, key: object, compute: Callable[[], object], copy: bool = False):
        version = self._version()
        hit, value = self.cache.get(key, version)
        if not hit:
            value = compute()
            self.cache.put(key, version, value)
        # Hand out a fresh list each time so callers mutating their
        # answer cannot corrupt the cached one.
        return list(value) if copy else value  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Cached read surface (mirrors ContextualQueryEngine)
    # ------------------------------------------------------------------
    def skyline(self, constraint: Constraint, subspace: int) -> List[Record]:
        return self._memo(
            ("skyline", constraint, subspace),
            lambda: self.inner.skyline(constraint, subspace),
            copy=True,
        )

    def skyline_text(self, query: str) -> List[Record]:
        constraint, subspace = parse_query(query, self.schema)
        return self.skyline(constraint, subspace)

    def skyband(
        self, constraint: Constraint, subspace: int, k: int
    ) -> List[Record]:
        if k < 1:
            raise ValueError("k must be >= 1")
        return self._memo(
            ("skyband", constraint, subspace, k),
            lambda: self.inner.skyband(constraint, subspace, k),
            copy=True,
        )

    def context_size(self, constraint: Constraint) -> int:
        return self._memo(
            ("context", constraint),
            lambda: self.inner.context_size(constraint),
        )

    def prominence(
        self, constraint: Constraint, subspace: int
    ) -> Optional[float]:
        return self._memo(
            ("prominence", constraint, subspace),
            lambda: self.inner.prominence(constraint, subspace),
        )

    def is_skyline_tuple(
        self, tid: int, constraint: Constraint, subspace: int
    ) -> bool:
        return self._memo(
            ("member", tid, constraint, subspace),
            lambda: self.inner.is_skyline_tuple(tid, constraint, subspace),
        )

    def batch(
        self,
        queries: Sequence[Union[str, Tuple[Constraint, int]]],
        top_k: Optional[int] = None,
        tau: Optional[float] = None,
        _fixed_order: bool = False,
    ) -> List[QueryResult]:
        pairs = tuple(normalize_queries(queries, self.schema))
        return self._memo(
            ("batch", pairs, top_k, tau, _fixed_order),
            lambda: self.inner.batch(
                pairs, top_k=top_k, tau=tau, _fixed_order=_fixed_order
            ),
            copy=True,
        )

    # ------------------------------------------------------------------
    # Planner hooks (delegated — a QueryPlan built over this engine
    # prices from the same statistics as the uncached one)
    # ------------------------------------------------------------------
    def _counted_context(self, constraint: Constraint) -> Optional[int]:
        return self.inner._counted_context(constraint)

    def _skyline_size_indexed(
        self, constraint: Constraint, subspace: int
    ) -> Optional[int]:
        return self.inner._skyline_size_indexed(constraint, subspace)

    def _fast_statistics(
        self, constraint: Constraint, subspace: int
    ) -> Optional[Tuple[int, int]]:
        return self.inner._fast_statistics(constraint, subspace)
