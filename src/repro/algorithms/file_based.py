"""FSBottomUp / FSTopDown — the file-based implementations of §VI-C.

These are SBottomUp and STopDown running on a
:class:`~repro.storage.file_store.FileSkylineStore`: every non-empty
``µ_{C,M}`` is one binary file, read wholesale into a buffer when the
pair is visited and overwritten when the algorithm moves on.  The
paper's finding — FSTopDown beats FSBottomUp because maximal-constraint
storage touches far fewer files — is reproduced by the
``file_reads``/``file_writes`` counters.
"""

from __future__ import annotations

from typing import Optional

from ..core.config import DiscoveryConfig
from ..core.schema import TableSchema
from ..metrics.counters import OpCounters
from ..storage.file_store import FileSkylineStore
from .s_bottom_up import SBottomUp
from .s_top_down import STopDown


class FSBottomUp(SBottomUp):
    """SBottomUp over one-binary-file-per-pair storage (§VI-C)."""

    name = "fsbottomup"

    def __init__(
        self,
        schema: TableSchema,
        config: Optional[DiscoveryConfig] = None,
        counters: Optional[OpCounters] = None,
        directory: Optional[str] = None,
    ) -> None:
        counters = counters if counters is not None else OpCounters()
        store = FileSkylineStore(schema, directory=directory, counters=counters)
        super().__init__(schema, config, counters, store=store)

    def close(self) -> None:
        """Flush and remove store-owned files."""
        self.store.close()


class FSTopDown(STopDown):
    """STopDown over one-binary-file-per-pair storage (§VI-C)."""

    name = "fstopdown"

    def __init__(
        self,
        schema: TableSchema,
        config: Optional[DiscoveryConfig] = None,
        counters: Optional[OpCounters] = None,
        directory: Optional[str] = None,
    ) -> None:
        counters = counters if counters is not None else OpCounters()
        store = FileSkylineStore(schema, directory=directory, counters=counters)
        super().__init__(schema, config, counters, store=store)

    def close(self) -> None:
        """Flush and remove store-owned files."""
        self.store.close()
