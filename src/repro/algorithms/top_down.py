"""TopDown — Algorithm 5 of the paper.

Maintains Invariant 2: ``µ_{C,M}`` stores a tuple **only at its maximal
skyline constraints** ``MSC^t_M`` (Defs. 9–10).  The skyline constraints
of any tuple are down-closed (Prop. 2: domination propagates to more
general contexts), so storing only the maximal ones avoids the duplicate
storage BottomUp pays — the paper's space–time trade-off.

Traversal note: the paper's breadth-first queue from ``⊤`` enqueues
every child regardless of pruning (the pruned region is *up-closed*
toward ``⊤``, so skyline constraints may lie below pruned ones).  That
order is exactly "iterate allowed masks by ascending popcount", which we
do directly.  Correctness of on-the-fly pruning is preserved because any
dominator of ``t`` in a context ``C`` is covered by a full-context
skyline tuple whose maximal constraint is an *ancestor* of ``C`` —
visited earlier in level order.

On a domination the whole intersection lattice ``C^{t,t'}`` is marked
pruned (Prop. 3); unlike BottomUp, the scan of ``µ_{C,M}`` continues
after a domination, because other stored tuples may prune constraints
outside ``C^{t,t'}``.  When the new tuple dominates a stored ``t'``,
``t'`` is deleted and re-anchored at the children of ``C`` that ``t'``
satisfies but ``t`` does not (procedure *Dominates*).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.config import DiscoveryConfig
from ..core.constraint import UNBOUND, Constraint, bindable_positions
from ..core.dominance import dominates
from ..core.facts import FactSet
from ..core.lattice import agreement_mask, iter_submasks, iter_supermasks
from ..core.record import Record
from ..core.schema import TableSchema
from ..metrics.counters import OpCounters
from ..storage.base import SkylineStore
from ..storage.memory_store import MemorySkylineStore
from .base import DiscoveryAlgorithm


def repair_demoted_tuple(
    store: SkylineStore,
    new_record: Record,
    demoted: Record,
    constraint: Constraint,
    subspace: int,
    allows_mask,
) -> None:
    """Procedure *Dominates* of Alg. 5.

    ``new_record`` dominates ``demoted`` at ``(constraint, subspace)``
    where ``constraint`` was a maximal skyline constraint of ``demoted``.
    Delete it there, then store it at each child ``C'`` of ``constraint``
    satisfied by ``demoted`` but not ``new_record`` (``CH^{t'}_C − C^t``)
    unless an ancestor of ``C'`` in ``C^{t'} − C^t`` already stores it
    (the ancestors *inside* ``C^t`` cannot: ``constraint`` was maximal).

    ``allows_mask(mask)`` enforces the ``d̂`` truncation: children beyond
    the cap are simply outside the maintained lattice.
    """
    store.delete(constraint, subspace, demoted)
    mask = constraint.bound_mask
    dims = demoted.dims
    new_dims = new_record.dims
    n = len(dims)
    cvalues = constraint.values
    # Stores indexing anchors by bound mask answer the "is an ancestor
    # anchored?" question with integer arithmetic (see
    # SkylineStore.anchor_masks); others take the constraint-probing
    # path below.
    anchors = store.anchor_masks(demoted.tid, subspace)
    # Candidate children bind one attribute that is currently free and on
    # which the two tuples disagree; iterate those bits only.
    free = ~mask & ((1 << n) - 1)
    while free:
        bit = free & -free
        free ^= bit
        j = bit.bit_length() - 1
        if dims[j] == new_dims[j]:
            # Child lies in C^t: new_record is in that context and still
            # dominates, so demoted is not in its skyline.
            continue
        if dims[j] is UNBOUND:
            # A value equal to the unbound marker cannot be bound —
            # there is no child on this attribute.
            continue
        if not allows_mask(mask | bit):
            continue
        child_mask = mask | bit
        # Ancestors of the child satisfied by demoted but not by
        # new_record all bind j; scan them for an existing anchor.
        if anchors is not None:
            stored_above = any(
                a & bit and a != child_mask and not a & ~child_mask
                for a in anchors
            )
        else:
            stored_above = False
            for sub in iter_submasks(mask):
                if sub == mask:
                    continue
                anc_values = [
                    cvalues[i] if sub & (1 << i) else UNBOUND for i in range(n)
                ]
                anc_values[j] = dims[j]
                anc = Constraint.from_values_mask(tuple(anc_values), sub | bit)
                if store.contains(anc, subspace, demoted):
                    stored_above = True
                    break
        if not stored_above:
            child_values = list(cvalues)
            child_values[j] = dims[j]
            child = Constraint.from_values_mask(tuple(child_values), child_mask)
            store.insert(child, subspace, demoted)


class TopDown(DiscoveryAlgorithm):
    """Top-down lattice traversal with maximal-constraint materialisation
    (Alg. 5; Invariant 2)."""

    name = "topdown"

    def __init__(
        self,
        schema: TableSchema,
        config: Optional[DiscoveryConfig] = None,
        counters: Optional[OpCounters] = None,
        store: Optional[SkylineStore] = None,
    ) -> None:
        super().__init__(schema, config, counters)
        self.store = store if store is not None else MemorySkylineStore(self.counters)
        # parents_by_mask[m] lists m's parent masks (used for inAnces).
        self._parents: List[Tuple[int, ...]] = [
            tuple(m & ~(1 << i) for i in range(schema.n_dimensions) if m & (1 << i))
            for m in range(1 << schema.n_dimensions)
        ]

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def _discover(self, record: Record) -> FactSet:
        facts = FactSet(record)
        constraints = self.constraint_cache(record)
        for subspace in self.subspaces:
            self._discover_subspace(record, subspace, facts, constraints)
        return facts

    def _discover_subspace(
        self,
        record: Record,
        subspace: int,
        facts: FactSet,
        constraints: Dict[int, Constraint],
    ) -> None:
        store = self.store
        counters = self.counters
        pruned = bytearray(1 << self.schema.n_dimensions)
        parents = self._parents
        # Distinct constraints of C^t form the boolean lattice over the
        # *bindable* positions: a dimension value equal to the unbound
        # marker collapses every covering mask onto the constraint that
        # leaves it free.  Pruning state must therefore be read at the
        # collapsed canonical mask, or a duplicate raw mask re-reports a
        # constraint its canonical visit saw pruned (the historical
        # over-reporting bug on unbindable values).
        bindable = bindable_positions(record.dims)
        for mask in self.masks_top_down:
            constraint = constraints[mask]
            counters.traversed_constraints += 1
            canonical = mask & bindable
            # The µ scan runs even at already-pruned constraints: tuples
            # anchored here may prune constraints outside the already
            # marked C^{t,t'} families, and those are only discoverable
            # through this comparison (maximal storage keeps them
            # invisible at their descendants).
            for other in store.get(constraint, subspace):
                counters.comparisons += 1
                if dominates(other, record, subspace):
                    agree = agreement_mask(record.dims, other.dims)
                    for sub in iter_submasks(agree):
                        pruned[sub] = True
                elif dominates(record, other, subspace):
                    repair_demoted_tuple(
                        store, record, other, constraint, subspace, self.allowed_mask
                    )
            if not pruned[canonical]:
                facts.add_pair(constraint, subspace)
                # t is stored at an ancestor iff some parent is a skyline
                # constraint (then t sits at that parent or higher); this
                # is C maximal iff every parent is pruned.  Parents are
                # read at their canonical masks too: a raw duplicate has
                # a parent collapsing onto the constraint itself (still
                # unpruned here), so only the canonical visit anchors.
                if all(pruned[p & bindable] for p in parents[mask]):
                    store.insert(constraint, subspace, record)

    # ------------------------------------------------------------------
    # Prominence / accounting
    # ------------------------------------------------------------------
    def _skyline_sizes_bulk(
        self,
        dims: Tuple[object, ...],
        constraint_of,
        masks_by_subspace: Dict[int, Set[int]],
    ) -> Dict[Tuple[Constraint, int], int]:
        """Shared Invariant-2 size resolver, one sweep per subspace.

        ``constraint_of(mask)`` must return the constraint binding
        ``dims`` at exactly ``mask``'s positions.  A stored tuple ``u``
        is in ``λ_M(σ_C)`` for every fact mask between its anchor and
        its agreement mask with ``dims`` (it satisfies those contexts,
        and skyline-ness is down-closed below a maximal constraint).
        Both the bulk per-arrival path and the single-pair query path
        wrap this, so the two cannot drift.
        """
        store = self.store
        allowed = self.allowed_mask
        sizes: Dict[Tuple[Constraint, int], int] = {}
        agree_cache: Dict[int, int] = {}
        for subspace, fact_masks in masks_by_subspace.items():
            union = 0
            for fm in fact_masks:
                union |= fm
            tids_by_mask: Dict[int, Set[int]] = {m: set() for m in fact_masks}
            # Anchors above the d̂ cap store nothing; skip the probes.
            for anchor in iter_submasks(union):
                if not allowed(anchor):
                    continue
                for u in store.get(constraint_of(anchor), subspace):
                    agree = agree_cache.get(u.tid)
                    if agree is None:
                        agree = agreement_mask(u.dims, dims)
                        agree_cache[u.tid] = agree
                    for fm in iter_supermasks(anchor, agree & union):
                        bucket = tids_by_mask.get(fm)
                        if bucket is not None:
                            bucket.add(u.tid)
            for fm in fact_masks:
                sizes[(constraint_of(fm), subspace)] = len(tids_by_mask[fm])
        return sizes

    def skyline_size(self, constraint: Constraint, subspace: int) -> int:
        """Invariant 2: the skyline of ``(C, M)`` is the set of tuples
        anchored at ``C`` or any ancestor of ``C`` that also satisfy
        ``C`` (every skyline tuple's maximal constraint lies on or above
        ``C``).  Thin wrapper over :meth:`_skyline_sizes_bulk`."""
        values = constraint.values
        n = constraint.arity

        def constraint_of(mask: int) -> Constraint:
            if mask == constraint.bound_mask:
                return constraint
            return Constraint(
                tuple(
                    values[i] if mask & (1 << i) else UNBOUND for i in range(n)
                )
            )

        sizes = self._skyline_sizes_bulk(
            values, constraint_of, {subspace: {constraint.bound_mask}}
        )
        return sizes[(constraint, subspace)]

    def skyline_sizes(self, facts: FactSet) -> Dict[Tuple[Constraint, int], int]:
        """One sweep per subspace: every tuple anchored at a constraint
        of ``C^t`` contributes to each fact mask between its anchor and
        its agreement mask with the new tuple."""
        record = facts.record
        constraints = self.constraint_cache(record)
        masks_by_subspace: Dict[int, Set[int]] = {}
        for constraint, subspace in facts.iter_pairs():
            masks_by_subspace.setdefault(subspace, set()).add(
                constraint.bound_mask
            )
        return self._skyline_sizes_bulk(
            record.dims, constraints.__getitem__, masks_by_subspace
        )

    def _repair_after_retract(self, removed: Record) -> None:
        from .retraction import retract_top_down

        retract_top_down(
            self.store,
            self.table,
            removed,
            self.masks_top_down,
            self.maintained_subspaces(),
            self.allowed_mask,
            self.dim_universe,
        )

    def stored_tuple_count(self) -> int:
        return self.store.stored_tuple_count()

    def approx_bytes(self) -> int:
        return self.store.approx_bytes()

    def reset(self) -> None:
        super().reset()
        self.store.clear()
