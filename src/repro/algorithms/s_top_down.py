"""STopDown — Algorithm 6 of the paper (TopDown + subspace sharing).

One traversal of ``C^t`` in the *full* measure space compares ``t``
against every stored tuple ``t'`` it meets; each comparison partitions
the measure space into ``(M>, M<, M=)`` once, and Proposition 4 then
identifies **every** subspace in which ``t'`` dominates ``t``.  The
constraints of ``C^{t,t'}`` are marked pruned in each such subspace via
the ``pruned[C][M]`` matrix (here: one bitset over constraint masks per
subspace, updated with a precomputed submask-closure table).

After the root pass, the per-subspace pass (``STopDownNode``) never
needs a dominated-check again: full-space contextual skyline tuples
*cover* all dominators — if anything dominates ``t`` in ``(C, M)``, some
tuple of ``λ_M(σ_C(R))``'s full-space counterpart does too, and it is
anchored at a constraint the root pass visits.  The node pass only adds
facts, stores ``t`` at its maximal skyline constraints, and demotes
tuples ``t`` dominates.

The root pass always runs in the full measure space even when the ``m̂``
cap excludes it from *reported* subspaces — the full-space stores are
the sharing substrate.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..core.config import DiscoveryConfig
from ..core.constraint import Constraint, bindable_positions
from ..core.dominance import ComparisonOutcome, compare, dominates
from ..core.facts import FactSet
from ..core.lattice import agreement_mask, submask_closure_table
from ..core.record import Record
from ..core.schema import TableSchema
from ..metrics.counters import OpCounters
from ..storage.base import SkylineStore
from .top_down import TopDown, repair_demoted_tuple


class STopDown(TopDown):
    """TopDown with computation shared across measure subspaces (Alg. 6)."""

    name = "stopdown"

    def __init__(
        self,
        schema: TableSchema,
        config: Optional[DiscoveryConfig] = None,
        counters: Optional[OpCounters] = None,
        store: Optional[SkylineStore] = None,
    ) -> None:
        super().__init__(schema, config, counters, store)
        self._closure = submask_closure_table(schema.n_dimensions)

    def maintained_subspaces(self):
        """The full space is always maintained — it is the sharing
        substrate — even when the m̂ cap excludes it from reporting."""
        out = list(self.subspaces)
        if self.full_space not in out:
            out.insert(0, self.full_space)
        return out

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def _discover(self, record: Record) -> FactSet:
        facts = FactSet(record)
        constraints = self.constraint_cache(record)
        # pruned[M] is a bitset over constraint masks (bit c = pruned).
        pruned_matrix: Dict[int, int] = {m: 0 for m in self.subspaces}
        pruned_matrix.setdefault(self.full_space, 0)
        self._root_pass(record, facts, pruned_matrix, constraints)
        for subspace in self.subspaces:
            if subspace == self.full_space:
                continue
            self._node_pass(
                record, subspace, facts, pruned_matrix[subspace], constraints
            )
        return facts

    # ------------------------------------------------------------------
    # STopDownRoot: full-space traversal + Prop. 4 subspace pruning
    # ------------------------------------------------------------------
    def _root_pass(
        self,
        record: Record,
        facts: FactSet,
        pruned_matrix: Dict[int, int],
        constraints: Dict[int, Constraint],
    ) -> None:
        full = self.full_space
        store = self.store
        counters = self.counters
        parents = self._parents
        report_full = self.config.allows_subspace(full)
        outcomes: Dict[int, ComparisonOutcome] = {}
        subspace_keys = list(pruned_matrix)
        # Prune/test on the collapsed canonical mask: raw masks covering
        # an unbindable (None) dimension value collapse onto one
        # constraint and must share its pruning state (see TopDown).
        bindable = bindable_positions(record.dims)
        full_pruned_bits = 0
        for mask in self.masks_top_down:
            constraint = constraints[mask]
            counters.traversed_constraints += 1
            canonical = mask & bindable
            for other in store.get(constraint, full):
                counters.comparisons += 1
                outcome = outcomes.get(other.tid)
                if outcome is None:
                    outcome = compare(record, other)
                    outcomes[other.tid] = outcome
                    # Lines 13-16 of STopDownRoot: one partition prunes
                    # C^{t,t'} in every subspace where t is dominated.
                    agree_closure = self._closure[
                        agreement_mask(record.dims, other.dims)
                    ]
                    for sub in subspace_keys:
                        if outcome.dominated_in(sub):
                            pruned_matrix[sub] |= agree_closure
                if outcome.dominates_in(full):
                    repair_demoted_tuple(
                        store, record, other, constraint, full, self.allowed_mask
                    )
            full_pruned_bits = pruned_matrix[full]
            if not (full_pruned_bits >> canonical) & 1:
                if report_full:
                    facts.add_pair(constraint, full)
                if all(
                    (full_pruned_bits >> (p & bindable)) & 1
                    for p in parents[mask]
                ):
                    store.insert(constraint, full, record)

    # ------------------------------------------------------------------
    # STopDownNode: per-subspace pass over the pre-pruned lattice
    # ------------------------------------------------------------------
    def _node_pass(
        self,
        record: Record,
        subspace: int,
        facts: FactSet,
        pruned_bits: int,
        constraints: Dict[int, Constraint],
    ) -> None:
        store = self.store
        counters = self.counters
        parents = self._parents
        bindable = bindable_positions(record.dims)
        for mask in self.masks_top_down:
            if (pruned_bits >> (mask & bindable)) & 1:
                # Pruned constraints are skipped outright — the point of
                # sharing (Fig. 11b counts them as not traversed).
                continue
            counters.traversed_constraints += 1
            constraint = constraints[mask]
            facts.add_pair(constraint, subspace)
            for other in store.get(constraint, subspace):
                counters.comparisons += 1
                if dominates(record, other, subspace):
                    repair_demoted_tuple(
                        store, record, other, constraint, subspace, self.allowed_mask
                    )
            if all((pruned_bits >> (p & bindable)) & 1 for p in parents[mask]):
                store.insert(constraint, subspace, record)
