"""C-CSC — the Compressed-Skycube adaptation the paper compares against.

Xia & Zhang's CSC [12] maintains, for a *single* context, each tuple in
its minimum skyline subspaces and supports incremental updates.  It has
no notion of contexts, so the adaptation (paper §II) keeps **one CSC per
constraint**.  On arrival of ``t``, the CSC of every context containing
``t`` (every ``C ∈ C^t``) is updated, and the CSC's query machinery is
used to decide, per measure subspace, whether ``t`` entered the skyline.

The paper's analysis of why this is slow — per-context updates cannot be
shared, and the CSC must effectively answer skyline queries for all
subspaces just to test membership — is exactly what this implementation
exhibits (Figs. 7–9 show it an order of magnitude behind
BottomUp/TopDown).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.config import DiscoveryConfig
from ..core.constraint import Constraint, constraint_for_record
from ..core.facts import FactSet
from ..core.record import Record
from ..core.schema import TableSchema
from ..index.skycube import CompressedSkycube
from ..metrics.counters import OpCounters
from .base import DiscoveryAlgorithm


class CCSC(DiscoveryAlgorithm):
    """One Compressed Skycube per context (the paper's "C-CSC")."""

    name = "ccsc"

    def __init__(
        self,
        schema: TableSchema,
        config: Optional[DiscoveryConfig] = None,
        counters: Optional[OpCounters] = None,
    ) -> None:
        super().__init__(schema, config, counters)
        self._cscs: Dict[Constraint, CompressedSkycube] = {}
        self._subspace_bits = {m: 1 << m for m in self.subspaces}

    def _discover(self, record: Record) -> FactSet:
        facts = FactSet(record)
        for mask in self.constraint_masks():
            constraint = constraint_for_record(record, mask)
            self.counters.traversed_constraints += 1
            csc = self._cscs.get(constraint)
            if csc is None:
                csc = CompressedSkycube(self.full_space)
                self._cscs[constraint] = csc
            before = csc.comparisons
            sky_bits = csc.insert(record)
            self.counters.comparisons += csc.comparisons - before
            for subspace, bit in self._subspace_bits.items():
                if sky_bits & bit:
                    facts.add_pair(constraint, subspace)
        self.counters.stored_tuples = self.stored_tuple_count()
        return facts

    # ------------------------------------------------------------------
    # Prominence / accounting
    # ------------------------------------------------------------------
    def skyline_size(self, constraint: Constraint, subspace: int) -> int:
        csc = self._cscs.get(constraint)
        if csc is None:
            return 0
        return len(csc.skyline(subspace))

    def _repair_after_retract(self, removed: Record) -> None:
        # Rebuild the CSC of every context that contained the tuple (the
        # CSC of [12] supports insertion, not deletion).
        for mask in self.constraint_masks():
            constraint = constraint_for_record(removed, mask)
            if constraint not in self._cscs:
                continue
            rebuilt = CompressedSkycube(self.full_space)
            for record in self.table.select_constraint(constraint):
                rebuilt.insert(record)
            self._cscs[constraint] = rebuilt

    def stored_tuple_count(self) -> int:
        return sum(c.stored_tuple_count() for c in self._cscs.values())

    def approx_bytes(self) -> int:
        from ..metrics.memory import approximate_store_bytes

        def entries():
            for constraint, csc in self._cscs.items():
                for subspace, records in csc.iter_stored():
                    yield (constraint, subspace), records

        return approximate_store_bytes(entries())

    def reset(self) -> None:
        super().reset()
        self._cscs.clear()
