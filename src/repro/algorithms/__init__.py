"""The seven discovery algorithms of the paper plus file-based variants.

========================  =============================================
Name                      Paper reference
========================  =============================================
``bruteforce``            Algorithm 2
``baselineseq``           Algorithm 3
``baselineidx``           §IV (k-d tree baseline)
``ccsc``                  §II adaptation of Xia & Zhang's CSC [12]
``bottomup``              Algorithm 4 (Invariant 1)
``topdown``               Algorithm 5 (Invariant 2)
``sbottomup``             §V-C sharing variant of BottomUp
``stopdown``              Algorithm 6
``fsbottomup``            §VI-C file-based SBottomUp
``fstopdown``             §VI-C file-based STopDown
``baselinevec``           NumPy tuple-at-a-time baseline (this repo's
                          extension; output-equivalent to BaselineSeq)
``svec``                  STopDown over columnar storage with batched
                          NumPy comparisons (this repo's extension;
                          output-equivalent to STopDown, stores and
                          counters included)
========================  =============================================
"""

from typing import Dict, Optional, Type

from ..core.config import DiscoveryConfig
from ..core.schema import TableSchema
from .base import DiscoveryAlgorithm
from .baseline_idx import BaselineIdx
from .baseline_seq import BaselineSeq
from .bottom_up import BottomUp
from .brute_force import BruteForce
from .csc import CCSC
from .file_based import FSBottomUp, FSTopDown
from .s_bottom_up import SBottomUp
from .s_top_down import STopDown
from .s_vectorized import SVectorized
from .top_down import TopDown
from .vectorized import VectorizedBaseline

#: Registry keyed by algorithm name.
ALGORITHMS: Dict[str, Type[DiscoveryAlgorithm]] = {
    cls.name: cls
    for cls in (
        BruteForce,
        BaselineSeq,
        BaselineIdx,
        CCSC,
        BottomUp,
        TopDown,
        SBottomUp,
        STopDown,
        FSBottomUp,
        FSTopDown,
        VectorizedBaseline,
        SVectorized,
    )
}


def make_algorithm(
    name: str,
    schema: TableSchema,
    config: Optional[DiscoveryConfig] = None,
    **kwargs,
) -> DiscoveryAlgorithm:
    """Instantiate a discovery algorithm by registry name.

    >>> from repro.core.schema import TableSchema
    >>> algo = make_algorithm("bottomup", TableSchema(("d",), ("m",)))
    >>> algo.name
    'bottomup'
    """
    try:
        cls = ALGORITHMS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        ) from None
    return cls(schema, config, **kwargs)


__all__ = [
    "ALGORITHMS",
    "make_algorithm",
    "DiscoveryAlgorithm",
    "BruteForce",
    "BaselineSeq",
    "BaselineIdx",
    "CCSC",
    "BottomUp",
    "TopDown",
    "SBottomUp",
    "STopDown",
    "FSBottomUp",
    "FSTopDown",
    "VectorizedBaseline",
    "SVectorized",
]
