"""BaselineSeq — Algorithm 3 of the paper.

A first use of constraint pruning (Proposition 3): per measure subspace,
start from all of ``C^t`` and, for every historical tuple ``t'`` that
dominates ``t``, subtract the whole intersection lattice ``C^{t,t'}``
(all submasks of the agreement mask).  What survives the scan is exactly
the set of skyline constraints for ``t``.
"""

from __future__ import annotations

from typing import Set

from ..core.constraint import constraint_for_record
from ..core.dominance import dominates
from ..core.facts import FactSet
from ..core.lattice import agreement_mask, iter_submasks
from ..core.record import Record
from .base import DiscoveryAlgorithm


class BaselineSeq(DiscoveryAlgorithm):
    """Sequential-scan baseline exploiting Proposition 3 (Alg. 3)."""

    name = "baselineseq"

    def _discover(self, record: Record) -> FactSet:
        facts = FactSet(record)
        allowed = self.constraint_masks()
        for subspace in self.subspaces:
            surviving: Set[int] = set(allowed)
            for other in self.table:
                self.counters.comparisons += 1
                if dominates(other, record, subspace):
                    agree = agreement_mask(record.dims, other.dims)
                    for sub in iter_submasks(agree):
                        surviving.discard(sub)
                    if not surviving:
                        break
            for mask in surviving:
                self.counters.traversed_constraints += 1
                facts.add_pair(constraint_for_record(record, mask), subspace)
        return facts
