"""VectorizedBaseline — BaselineSeq with NumPy tuple-at-a-time sharing.

The paper shares computation *across measure subspaces* (Prop. 4).  An
orthogonal axis, natural in Python, is sharing *across tuples*: one
vectorised pass over the whole history computes, for the new tuple
``t`` against every historical ``t'`` simultaneously,

* the ``M<`` / ``M>`` partition bitmasks (so Prop. 4 answers dominance
  in every subspace with two integer ops per tuple), and
* the dimension agreement bitmask (so ``C^{t,t'}`` is one closure-table
  lookup).

Per subspace, the surviving constraint set is then the complement of a
union of submask closures — pure integer arithmetic.  Output-equivalent
to BaselineSeq/BruteForce; the ablation bench quantifies the win.

Arrays grow geometrically; dimension values are interned to int32 ids.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.config import DiscoveryConfig
from ..core.facts import FactSet
from ..core.lattice import submask_closure_table
from ..core.record import Record
from ..core.schema import TableSchema
from ..metrics.counters import OpCounters
from ..storage.columnar_store import ColumnInterner, grow_2d
from .base import DiscoveryAlgorithm

_INITIAL_CAPACITY = 256


class VectorizedBaseline(DiscoveryAlgorithm):
    """NumPy-accelerated baseline (tuple-at-a-time sharing)."""

    name = "baselinevec"

    def __init__(
        self,
        schema: TableSchema,
        config: Optional[DiscoveryConfig] = None,
        counters: Optional[OpCounters] = None,
    ) -> None:
        super().__init__(schema, config, counters)
        self._closure = submask_closure_table(schema.n_dimensions)
        self._capacity = _INITIAL_CAPACITY
        self._size = 0
        self._values = np.empty((self._capacity, schema.n_measures), dtype=np.float64)
        self._dims = np.empty((self._capacity, schema.n_dimensions), dtype=np.int32)
        self._interner = ColumnInterner(schema.n_dimensions)
        #: Bit weights for measure positions (column -> bit).
        self._measure_bits = (1 << np.arange(schema.n_measures)).astype(np.int64)
        self._dim_bits = (1 << np.arange(schema.n_dimensions)).astype(np.int64)

    # ------------------------------------------------------------------
    # Array maintenance
    # ------------------------------------------------------------------
    def _after_append(self, record: Record) -> None:
        self._values = grow_2d(self._values, self._size)
        self._dims = grow_2d(self._dims, self._size)
        self._capacity = self._values.shape[0]
        self._values[self._size] = record.values
        self._dims[self._size] = self._interner.intern_row(record.dims)
        self._size += 1

    def reserve(self, extra: int) -> None:
        """Pre-grow both column arrays once for a known-size block."""
        if extra <= 0:
            return
        self._values = grow_2d(self._values, self._size, self._size + extra)
        self._dims = grow_2d(self._dims, self._size, self._size + extra)
        self._capacity = self._values.shape[0]

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def _discover(self, record: Record) -> FactSet:
        facts = FactSet(record)
        n = self._size
        allowed = self.masks_top_down
        # C^t built once per arrival and shared by every subspace (the
        # Constraint construction cost used to be paid per (subspace,
        # mask) pair — the dominant allocation in this loop).
        constraints = self.constraint_cache(record)
        if n == 0:
            for subspace in self.subspaces:
                self.counters.traversed_constraints += len(allowed)
                for mask in allowed:
                    facts.add_pair(constraints[mask], subspace)
            return facts

        probe_values = np.asarray(record.values, dtype=np.float64)
        probe_dims = self._interner.intern_row(record.dims)

        values = self._values[:n]
        dims = self._dims[:n]
        # One vectorised pass: M< / M> partitions and dim agreement, as
        # per-tuple integer bitmasks.
        lt = ((values > probe_values) @ self._measure_bits).astype(np.int64)
        gt = ((values < probe_values) @ self._measure_bits).astype(np.int64)
        agree = ((dims == probe_dims) @ self._dim_bits).astype(np.int64)
        # Counting convention (see metrics.counters): the shared sweep
        # resolves one tuple-pair comparison per historical tuple *per
        # consuming subspace*, mirroring BaselineSeq's per-subspace scan.
        self.counters.comparisons += n * len(self.subspaces)

        full_universe_bits = (1 << (1 << self.schema.n_dimensions)) - 1
        allowed_bits = 0
        for mask in allowed:
            allowed_bits |= 1 << mask

        for subspace in self.subspaces:
            # Prop. 4 vectorised: t dominated by row i in `subspace` iff
            # lt[i] hits the subspace and gt[i] misses it entirely.
            dominated = ((lt & subspace) != 0) & ((gt & subspace) == 0)
            pruned_bits = 0
            if dominated.any():
                # Distinct agreement masks bound this loop at 2^n no
                # matter how many dominators the history holds.
                for agree_mask in np.unique(agree[dominated]):
                    pruned_bits |= self._closure[int(agree_mask)]
                    if pruned_bits & allowed_bits == allowed_bits:
                        break  # everything allowed is already pruned
            surviving = allowed_bits & ~pruned_bits & full_universe_bits
            if not surviving:
                continue
            for mask in allowed:
                if (surviving >> mask) & 1:
                    self.counters.traversed_constraints += 1
                    facts.add_pair(constraints[mask], subspace)
        return facts

    def reset(self) -> None:
        super().reset()
        self._size = 0
        self._interner = ColumnInterner(self.schema.n_dimensions)
