"""VectorizedBaseline — BaselineSeq with NumPy tuple-at-a-time sharing.

The paper shares computation *across measure subspaces* (Prop. 4).  An
orthogonal axis, natural in Python, is sharing *across tuples*: one
vectorised pass over the whole history computes, for the new tuple
``t`` against every historical ``t'`` simultaneously,

* the ``M<`` / ``M>`` partition bitmasks (so Prop. 4 answers dominance
  in every subspace with two integer ops per tuple), and
* the dimension agreement bitmask (so ``C^{t,t'}`` is one closure-table
  lookup).

Per subspace, the surviving constraint set is then the complement of a
union of submask closures — pure integer arithmetic.  Output-equivalent
to BaselineSeq/BruteForce; the ablation bench quantifies the win.

Arrays grow geometrically; dimension values are interned to int32 ids.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.config import DiscoveryConfig
from ..core.constraint import constraint_for_record
from ..core.facts import FactSet
from ..core.lattice import submask_closure_table
from ..core.record import Record
from ..core.schema import TableSchema
from ..metrics.counters import OpCounters
from .base import DiscoveryAlgorithm

_INITIAL_CAPACITY = 256


class VectorizedBaseline(DiscoveryAlgorithm):
    """NumPy-accelerated baseline (tuple-at-a-time sharing)."""

    name = "baselinevec"

    def __init__(
        self,
        schema: TableSchema,
        config: Optional[DiscoveryConfig] = None,
        counters: Optional[OpCounters] = None,
    ) -> None:
        super().__init__(schema, config, counters)
        self._closure = submask_closure_table(schema.n_dimensions)
        self._capacity = _INITIAL_CAPACITY
        self._size = 0
        self._values = np.empty((self._capacity, schema.n_measures), dtype=np.float64)
        self._dims = np.empty((self._capacity, schema.n_dimensions), dtype=np.int32)
        self._interners: List[Dict[object, int]] = [
            {} for _ in range(schema.n_dimensions)
        ]
        #: Bit weights for measure positions (column -> bit).
        self._measure_bits = (1 << np.arange(schema.n_measures)).astype(np.int64)
        self._dim_bits = (1 << np.arange(schema.n_dimensions)).astype(np.int64)

    # ------------------------------------------------------------------
    # Array maintenance
    # ------------------------------------------------------------------
    def _intern_dims(self, record: Record) -> np.ndarray:
        out = np.empty(self.schema.n_dimensions, dtype=np.int32)
        for i, value in enumerate(record.dims):
            table = self._interners[i]
            vid = table.get(value)
            if vid is None:
                vid = len(table)
                table[value] = vid
            out[i] = vid
        return out

    def _grow(self) -> None:
        self._capacity *= 2
        new_values = np.empty(
            (self._capacity, self.schema.n_measures), dtype=np.float64
        )
        new_values[: self._size] = self._values[: self._size]
        self._values = new_values
        new_dims = np.empty(
            (self._capacity, self.schema.n_dimensions), dtype=np.int32
        )
        new_dims[: self._size] = self._dims[: self._size]
        self._dims = new_dims

    def _after_append(self, record: Record) -> None:
        if self._size == self._capacity:
            self._grow()
        self._values[self._size] = record.values
        self._dims[self._size] = self._intern_dims(record)
        self._size += 1

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def _discover(self, record: Record) -> FactSet:
        facts = FactSet(record)
        n = self._size
        allowed = self.masks_top_down
        if n == 0:
            for subspace in self.subspaces:
                for mask in allowed:
                    facts.add_pair(constraint_for_record(record, mask), subspace)
            return facts

        probe_values = np.asarray(record.values, dtype=np.float64)
        probe_dims = self._intern_dims(record)

        values = self._values[:n]
        dims = self._dims[:n]
        # One vectorised pass: M< / M> partitions and dim agreement, as
        # per-tuple integer bitmasks.
        lt = ((values > probe_values) @ self._measure_bits).astype(np.int64)
        gt = ((values < probe_values) @ self._measure_bits).astype(np.int64)
        agree = ((dims == probe_dims) @ self._dim_bits).astype(np.int64)
        self.counters.comparisons += n

        full_universe_bits = (1 << (1 << self.schema.n_dimensions)) - 1
        allowed_bits = 0
        for mask in allowed:
            allowed_bits |= 1 << mask

        for subspace in self.subspaces:
            # Prop. 4 vectorised: t dominated by row i in `subspace` iff
            # lt[i] hits the subspace and gt[i] misses it entirely.
            dominators = np.nonzero((lt & subspace != 0) & (gt & subspace == 0))[0]
            pruned_bits = 0
            for i in dominators:
                pruned_bits |= self._closure[int(agree[i])]
                if pruned_bits & allowed_bits == allowed_bits:
                    break  # everything allowed is already pruned
            surviving = allowed_bits & ~pruned_bits & full_universe_bits
            if not surviving:
                continue
            for mask in allowed:
                if (surviving >> mask) & 1:
                    self.counters.traversed_constraints += 1
                    facts.add_pair(constraint_for_record(record, mask), subspace)
        return facts

    def reset(self) -> None:
        super().reset()
        self._size = 0
        self._interners = [{} for _ in range(self.schema.n_dimensions)]
