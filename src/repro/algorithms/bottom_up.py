"""BottomUp — Algorithm 4 of the paper.

Maintains Invariant 1: ``µ_{C,M}`` stores **all** contextual skyline
tuples ``λ_M(σ_C(R))`` for every (allowed) constraint–measure pair.  On
arrival of ``t`` it traverses the lattice ``C^t`` bottom-up (most
specific constraints first), comparing ``t`` only against current
skyline tuples (tuple reduction, Prop. 1) and pruning all ancestors of
any constraint where ``t`` is dominated (constraint pruning,
Props. 2–3).

Traversal note: the paper's breadth-first queue visits constraints level
by level and enqueues every not-yet-pruned parent.  Because the set of
constraints where ``t`` is dominated is *up-closed* toward ``⊤``
(Prop. 2) — equivalently, pruned masks are closed under taking submasks
— that queue order is exactly "iterate allowed masks by descending
popcount, skipping pruned ones".  We use the level-order loop directly:
identical visit set and comparisons, no queue bookkeeping.

With the ``d̂`` cap (§VI-A) the lattice is truncated to constraints with
at most ``d̂`` bound attributes; level order then starts at popcount
``min(d̂, n)``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.config import DiscoveryConfig
from ..core.constraint import Constraint
from ..core.dominance import dominates
from ..core.facts import FactSet
from ..core.lattice import iter_submasks
from ..core.record import Record
from ..core.schema import TableSchema
from ..metrics.counters import OpCounters
from ..storage.base import SkylineStore
from ..storage.memory_store import MemorySkylineStore
from .base import DiscoveryAlgorithm


class BottomUp(DiscoveryAlgorithm):
    """Bottom-up lattice traversal with full skyline materialisation
    (Alg. 4; Invariant 1)."""

    name = "bottomup"

    def __init__(
        self,
        schema: TableSchema,
        config: Optional[DiscoveryConfig] = None,
        counters: Optional[OpCounters] = None,
        store: Optional[SkylineStore] = None,
    ) -> None:
        super().__init__(schema, config, counters)
        self.store = store if store is not None else MemorySkylineStore(self.counters)

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def _discover(self, record: Record) -> FactSet:
        facts = FactSet(record)
        constraints = self.constraint_cache(record)
        for subspace in self.subspaces:
            self._discover_subspace(record, subspace, facts, constraints)
        return facts

    def _discover_subspace(
        self,
        record: Record,
        subspace: int,
        facts: FactSet,
        constraints: Dict[int, Constraint],
    ) -> None:
        """One bottom-up sweep of ``C^t`` for one measure subspace (no
        cross-subspace sharing — that is SBottomUp's job)."""
        store = self.store
        counters = self.counters
        pruned = bytearray(1 << self.schema.n_dimensions)
        for mask in self.masks_bottom_up:
            if pruned[mask]:
                continue
            constraint = constraints[mask]
            counters.traversed_constraints += 1
            dominated = False
            for other in store.get(constraint, subspace):
                counters.comparisons += 1
                if dominates(other, record, subspace):
                    dominated = True
                    # Prop. 3: t is out at every constraint both tuples
                    # satisfy; all ancestors of C (the submasks of its
                    # bound mask) are among them.
                    for sub in iter_submasks(mask):
                        pruned[sub] = True
                    break
                if dominates(record, other, subspace):
                    store.delete(constraint, subspace, other)
            if not dominated:
                facts.add_pair(constraint, subspace)
                store.insert(constraint, subspace, record)

    # ------------------------------------------------------------------
    # Prominence / accounting
    # ------------------------------------------------------------------
    def skyline_size(self, constraint: Constraint, subspace: int) -> int:
        """Invariant 1 makes this a single store lookup."""
        return len(self.store.get(constraint, subspace))

    def skyline_sizes(self, facts: FactSet) -> Dict[Tuple[Constraint, int], int]:
        return {
            (constraint, subspace): len(self.store.get(constraint, subspace))
            for constraint, subspace in facts.iter_pairs()
        }

    def _repair_after_retract(self, removed: Record) -> None:
        from .retraction import retract_bottom_up

        retract_bottom_up(
            self.store,
            self.table,
            removed,
            self.masks_top_down,
            self.maintained_subspaces(),
        )

    def stored_tuple_count(self) -> int:
        return self.store.stored_tuple_count()

    def approx_bytes(self) -> int:
        return self.store.approx_bytes()

    def reset(self) -> None:
        super().reset()
        self.store.clear()
