"""SVectorized — STopDown with batched NumPy tuple comparisons ("svec").

STopDown (Alg. 6) already shares work *across measure subspaces*: one
full-space partition ``(M>, M<, M=)`` per historical tuple answers
dominance in every subspace via Proposition 4.  This algorithm adds the
orthogonal sharing axis of :class:`~repro.algorithms.vectorized.\
VectorizedBaseline` — *across tuples* — while keeping STopDown's
materialised stores and output semantics:

* the whole history lives column-wise in a
  :class:`~repro.storage.columnar_store.ColumnarSkylineStore`, so the
  per-arrival ``(M<, M>, agreement)`` partition against **every**
  historical tuple is three NumPy matrix expressions;
* the Prop. 4 pruned matrix is assembled per subspace from the
  vectorized dominator set, OR-ing submask closures over the *distinct*
  agreement masks only (at most ``2^n`` of them, however long the
  history);
* the lattice passes then run on integer bitsets exactly like scalar
  STopDown — same facts, same store mutations — with demotion repair
  batched per pass (candidate children and ancestor-anchored checks
  answered from the sweep's agreement bitmasks and the anchor-mask
  reverse index), so ``svec`` is output-equivalent to ``stopdown``
  *including* the Invariant-2 store contents and the operation
  counters — except on streams whose dimension values equal the
  unbound marker, where scalar topdown/stopdown carry a known
  level-order pruning gap and ``svec``'s exact sweep sides with
  ``bruteforce``/``bottomup`` instead (see ROADMAP open items);
* prominence scoring rides the store's incremental skyline-cardinality
  index (see :meth:`ColumnarSkylineStore.scoring_index`), so scored
  batch ingestion — the engine's default — keeps columnar speed:
  ``skyline_sizes`` is one dict probe per fact, whatever the history
  size.

Why precomputing the pruned matrix is sound: STopDown's node passes
already rely on the root-pass bits being *exact* — a constraint survives
iff the new tuple is undominated there (the paper's covering argument:
any dominator in a context is covered by a full-space skyline tuple
anchored at an ancestor, which the root pass meets in level order).  The
vectorized sweep computes those exact bits directly from the full
history, so per-mask decisions come out identical.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.config import DiscoveryConfig
from ..core.constraint import UNBOUND, Constraint
from ..core.facts import FactSet
from ..core.record import Record
from ..core.schema import TableSchema
from ..metrics.counters import OpCounters
from ..storage.columnar_store import ColumnarSkylineStore
from .s_top_down import STopDown
from .top_down import repair_demoted_tuple


class SVectorized(STopDown):
    """STopDown with the tuple axis vectorized over columnar storage."""

    name = "svec"

    def __init__(
        self,
        schema: TableSchema,
        config: Optional[DiscoveryConfig] = None,
        counters: Optional[OpCounters] = None,
        store: Optional[ColumnarSkylineStore] = None,
    ) -> None:
        if store is not None and not isinstance(store, ColumnarSkylineStore):
            raise TypeError(
                "svec needs a ColumnarSkylineStore; got "
                f"{type(store).__name__}"
            )
        super().__init__(schema, config, counters, store)
        if store is None:
            self.store = ColumnarSkylineStore(
                self.counters,
                n_dimensions=schema.n_dimensions,
                n_measures=schema.n_measures,
            )
        #: Bit weights turning boolean comparison columns into bitmasks.
        self._measure_bits = (1 << np.arange(schema.n_measures)).astype(np.int64)
        self._dim_bits = (1 << np.arange(schema.n_dimensions)).astype(np.int64)
        allowed_bits = 0
        for mask in self.masks_top_down:
            allowed_bits |= 1 << mask
        #: Bitset (over constraint masks) of the d̂-allowed lattice.
        self._allowed_bits = allowed_bits
        #: Maintained subspace keys, full space (sharing substrate) first.
        self._subspace_keys = [self.full_space] + [
            s for s in self.subspaces if s != self.full_space
        ]
        #: Column vector of the keys, for one broadcast Prop. 4 test.
        self._keys_column = np.asarray(self._subspace_keys, dtype=np.int64)[:, None]
        #: One-hot agreement histogram is worth it only while 2^n stays
        #: a narrow matrix; beyond that fall back to per-key sets.
        self._use_one_hot = (1 << schema.n_dimensions) <= 256
        self._arange = np.arange(0, dtype=np.int64)
        #: Lazily-built ancestor tables for batched demotion repair:
        #: ``_anc_tbl[child][j]`` is the bitset of masks that are proper
        #: ancestors of ``child`` binding attribute ``j`` — "is the
        #: demoted tuple already anchored above this candidate child?"
        #: becomes one AND against the anchor-mask bitset.
        self._anc_tbl: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Streaming hooks
    # ------------------------------------------------------------------
    def _after_append(self, record: Record) -> None:
        # Every arrival enters the columns, stored or not: the next
        # arrival's sweep runs against the full history.
        self.store.register(record)

    def reserve(self, extra: int) -> None:
        self.store.reserve(extra)

    def _repair_after_retract(self, record: Record) -> None:
        # Standard Invariant-2 repair first, then drop the row from the
        # columns — the sweep must no longer see the retracted tuple.
        super()._repair_after_retract(record)
        self.store.unregister(record.tid)

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def _discover(self, record: Record) -> FactSet:
        facts = FactSet(record)
        store = self.store
        full = self.full_space
        constraints = self.constraint_cache(record)
        n = store.n_rows
        allowed_bits = self._allowed_bits
        closure = self._closure

        # Subspace keys, full space (the sharing substrate) first.
        keys = self._subspace_keys
        pruned: Dict[int, int] = dict.fromkeys(keys, 0)
        has_demote = dict.fromkeys(keys, False)
        lt_list = gt_list = agree_list = None

        if n:
            # --- One batched sweep: partition bitmasks vs the whole
            # history.  lt/gt follow core.dominance.compare's orientation
            # for compare(record, other): bit i of lt[r] set iff row r
            # beats the probe on measure i.
            probe_values = np.asarray(record.values, dtype=np.float64)
            probe_dims = store.intern_dims(record.dims)
            values = store.values_matrix()
            dims = store.dims_matrix()
            lt = (values > probe_values) @ self._measure_bits
            gt = (values < probe_values) @ self._measure_bits
            agree = (dims == probe_dims) @ self._dim_bits
            # Prop. 4 broadcast over every maintained subspace at once:
            # row r dominates the probe in key k iff lt[r] hits the
            # subspace and gt[r] misses it (and vice versa for rows the
            # probe dominates — the demotion candidates).
            keys_col = self._keys_column
            lt_hit = (lt & keys_col) != 0
            gt_hit = (gt & keys_col) != 0
            dominated = lt_hit & ~gt_hit
            demotable_any = (gt_hit & ~lt_hit).any(axis=1)
            # Distinct agreement masks bound the per-key closure loop at
            # 2^n regardless of history length.  One bool matmul against
            # a one-hot agreement matrix yields, per key, exactly which
            # agreement masks occur among its dominators.
            present = None
            if self._use_one_hot:
                if self._arange.shape[0] < n:
                    self._arange = np.arange(
                        max(n, 2 * self._arange.shape[0]), dtype=np.int64
                    )
                one_hot = np.zeros(
                    (n, 1 << self.schema.n_dimensions), dtype=bool
                )
                one_hot[self._arange[:n], agree] = True
                present = dominated @ one_hot
            for k, subspace in enumerate(keys):
                has_demote[subspace] = bool(demotable_any[k])
                if present is not None:
                    agree_masks = np.nonzero(present[k])[0].tolist()
                else:
                    row_mask = dominated[k]
                    if not row_mask.any():
                        continue
                    agree_masks = set(agree[row_mask].tolist())
                bits = 0
                for agree_mask in agree_masks:
                    bits |= closure[agree_mask]
                    if bits & allowed_bits == allowed_bits:
                        break
                pruned[subspace] = bits
            # Plain-int views for the O(1) per-bucket-row demotion test
            # in the lattice passes (scalar indexing into numpy arrays
            # is an order of magnitude slower).  The agreement view
            # feeds the batched demotion repair (candidate children are
            # exactly the free disagreeing positions).
            lt_list = lt.tolist()
            gt_list = gt.tolist()
            agree_list = agree.tolist()

        # C^t as a flat sequence, zipped against masks in every pass.
        cons_seq = tuple(constraints[m] for m in self.masks_top_down)

        # --- Full-space pass (STopDownRoot), then per-subspace passes
        # (STopDownNode) that skip pruned constraints.  A dimension
        # value equal to the unbound marker collapses distinct C^t masks
        # onto one constraint, whose bucket is then scanned twice per
        # pass — only then must repairs run inline (scalar order) so the
        # second scan sees the first repair's deletions.
        defer_repairs = UNBOUND not in record.dims
        for subspace in keys:
            self._lattice_pass(
                record,
                subspace,
                facts,
                pruned[subspace],
                cons_seq,
                lt_list,
                gt_list,
                agree_list,
                has_demote[subspace],
                is_root=subspace == full,
                defer_repairs=defer_repairs,
            )
        return facts

    def _lattice_pass(
        self,
        record: Record,
        subspace: int,
        facts: FactSet,
        pruned_bits: int,
        cons_seq,
        lt_list,
        gt_list,
        agree_list,
        has_demote: bool,
        is_root: bool,
        defer_repairs: bool = True,
    ) -> None:
        """One top-down sweep of ``C^t`` in ``subspace``.

        ``lt_list``/``gt_list`` are the per-row partition bitmasks of the
        arrival sweep (``None`` for an empty history); a stored row is
        demoted iff the new tuple dominates it there — ``gt`` hits the
        subspace, ``lt`` misses it.  ``has_demote`` is the sweep's
        verdict on whether *any* row qualifies, letting demote-free
        arrivals (the common case) skip every bucket scan.  Demotions
        are collected and repaired in one batch after the sweep (see
        :meth:`_flush_repairs`) — safe because a repair only deletes
        from the just-visited bucket and re-anchors at children outside
        ``C^t``, neither of which a later visit of this pass reads —
        unless ``defer_repairs`` is off (degenerate ``C^t`` with
        duplicate constraints).  The root pass visits every constraint
        (counting and demoting like STopDownRoot); node passes skip
        pruned ones.  Counter conventions match scalar STopDown exactly
        — see :mod:`repro.metrics.counters`.
        """
        store = self.store
        counters = self.counters
        parents = self._parents
        record_at = store.record_at
        allowed_mask = self.allowed_mask
        report = not is_root or self.config.allows_subspace(subspace)
        submap = store.submap(subspace)
        insert = store.insert
        add_pair = facts.add_pair
        comparisons = 0
        traversed = 0
        repairs = []
        # Rows at or beyond the sweep length are this very arrival
        # (met again only when two C^t masks yield *equal* constraints,
        # e.g. a None dimension value): a self-comparison, never a
        # demotion — exactly like the scalar pass.
        swept = len(lt_list) if lt_list is not None else 0
        for mask, constraint in zip(self.masks_top_down, cons_seq):
            shifted = pruned_bits >> mask
            if not is_root and shifted & 1:
                continue
            traversed += 1
            bucket = submap.get(constraint) if submap else None
            if bucket:
                comparisons += len(bucket)
                if has_demote:
                    # Snapshot before repairing: repair deletes from
                    # this very bucket.
                    demoted = [
                        r
                        for r in bucket.values()
                        if r < swept
                        and gt_list[r] & subspace
                        and not lt_list[r] & subspace
                    ]
                    if defer_repairs:
                        for row in demoted:
                            repairs.append((row, constraint))
                    else:
                        for row in demoted:
                            repair_demoted_tuple(
                                store,
                                record,
                                record_at(row),
                                constraint,
                                subspace,
                                allowed_mask,
                            )
            if not shifted & 1:
                if report:
                    add_pair(constraint, subspace)
                # Maximal (all parents pruned): with no pruning at all,
                # only ⊤ qualifies — skip the per-parent scan.
                if pruned_bits:
                    if all((pruned_bits >> p) & 1 for p in parents[mask]):
                        insert(constraint, subspace, record)
                elif not mask:
                    insert(constraint, subspace, record)
        if repairs:
            self._flush_repairs(record, subspace, repairs, agree_list)
        counters.comparisons += comparisons
        counters.traversed_constraints += traversed

    def _make_anc_row(self, child: int) -> Tuple[int, ...]:
        closure = self._closure
        row = tuple(
            ((closure[child] & ~closure[child & ~(1 << j)]) & ~(1 << child))
            if child & (1 << j)
            else 0
            for j in range(self.schema.n_dimensions)
        )
        self._anc_tbl[child] = row
        return row

    def _flush_repairs(self, record, subspace, repairs, agree_list) -> None:
        """Procedure *Dominates* (Alg. 5) for a whole pass's demotions.

        Batched counterpart of :func:`repair_demoted_tuple`: the sweep's
        agreement bitmask already answers the per-attribute "do the two
        tuples disagree here?" probes, so the candidate children of each
        ``(row, constraint)`` pair are the set bits of one integer, and
        "ancestor already anchored?" is one AND of the row's anchor-mask
        bitset against a memoised ancestor table.  Processing stays in
        collection order with live anchor updates, so the resulting
        store state is identical to the inline scalar repairs.
        """
        store = self.store
        allowed = self.allowed_mask
        universe = self.dim_universe
        anc_tbl = self._anc_tbl
        record_at = store.record_at
        anchor_masks = store.anchor_masks
        for row, constraint in repairs:
            demoted = record_at(row)
            store.delete(constraint, subspace, demoted)
            mask = constraint.bound_mask
            cand = ~mask & ~agree_list[row] & universe
            if not cand:
                continue
            ab = 0
            for a in anchor_masks(demoted.tid, subspace):
                ab |= 1 << a
            dims = demoted.dims
            cvalues = constraint.values
            while cand:
                bit = cand & -cand
                cand ^= bit
                child = mask | bit
                if not allowed(child):
                    continue
                j = bit.bit_length() - 1
                if dims[j] is UNBOUND:
                    # A value equal to the unbound marker cannot be
                    # bound — there is no child on this attribute.
                    continue
                tbl = anc_tbl.get(child)
                if tbl is None:
                    tbl = self._make_anc_row(child)
                if ab & tbl[j]:
                    continue
                child_values = list(cvalues)
                child_values[j] = dims[j]
                store.insert(
                    Constraint.from_values_mask(tuple(child_values), child),
                    subspace,
                    demoted,
                )
                ab |= 1 << child

    # ------------------------------------------------------------------
    # Prominence: columnar skyline_sizes
    # ------------------------------------------------------------------
    def make_context_counter(self, max_bound_dims: Optional[int] = None):
        """Interned-key counter — keeps scored ingestion columnar."""
        from ..core.prominence import ColumnarContextCounter

        return ColumnarContextCounter(self.schema.n_dimensions, max_bound_dims)

    def skyline_sizes(self, facts: FactSet) -> Dict[Tuple[Constraint, int], int]:
        """``|λ_M(σ_C(R))|`` for all of ``S_t`` from the scoring index.

        The columnar store maintains (lazily at first, incrementally
        thereafter) per ``(subspace, fact mask)`` the skyline
        cardinality of every value combination, keyed by the anchored
        tuples' dimension values — anchor-bitset flips on insert/delete
        keep it exact.  Scoring an arrival is then one dict probe per
        fact, independent of history size, instead of the scalar
        per-(tuple, anchor, supermask) sweep.
        """
        index = self.store.scoring_index()
        if index is None:  # dimensionality beyond the mask-lattice cap
            return super().skyline_sizes(facts)
        dims = facts.record.dims
        mask_keys = self.store.mask_keys
        sizes: Dict[Tuple[Constraint, int], int] = {}
        key_cache: Dict[int, tuple] = {}
        for fact in facts:
            constraint = fact.constraint
            subspace = fact.subspace
            space = index.get(subspace)
            if not space:
                sizes[(constraint, subspace)] = 0
                continue
            fact_mask = constraint.bound_mask
            table = space.get(fact_mask)
            if not table:
                sizes[(constraint, subspace)] = 0
                continue
            key = key_cache.get(fact_mask)
            if key is None:
                key = mask_keys[fact_mask](dims)
                key_cache[fact_mask] = key
            sizes[(constraint, subspace)] = table.get(key, 0)
        return sizes
