"""SVectorized — STopDown with batched NumPy tuple comparisons ("svec").

STopDown (Alg. 6) already shares work *across measure subspaces*: one
full-space partition ``(M>, M<, M=)`` per historical tuple answers
dominance in every subspace via Proposition 4.  This algorithm adds the
orthogonal sharing axis of :class:`~repro.algorithms.vectorized.\
VectorizedBaseline` — *across tuples* — while keeping STopDown's
materialised stores and output semantics:

* the whole history lives column-wise in a
  :class:`~repro.storage.columnar_store.ColumnarSkylineStore`, so the
  per-arrival ``(M<, M>, agreement)`` partition against **every**
  historical tuple is three NumPy matrix expressions;
* the Prop. 4 pruned matrix is assembled for every subspace at once
  from the vectorized dominator set, OR-ing submask closures over the
  *distinct* agreement masks only (at most ``2^n`` of them, however
  long the history);
* the lattice passes themselves run as one **bitset-matrix walk**: the
  per-subspace pruned bitsets form a ``(subspaces × constraints)``
  visit/survive matrix, fact emission and maximal-constraint promotion
  are batched matrix reductions, ``µ`` bucket occupancy along ``C^t``
  is answered per stored row with one AND of its anchor bitset against
  the agreement submask closure (so the comparison counters and the
  demotion candidates come out of popcounts, not bucket loops), and
  store mutations go through grouped
  :meth:`ColumnarSkylineStore.insert_new_many` / batched demotion
  repair.  The walk is output-equivalent to scalar ``stopdown`` —
  facts, Invariant-2 store contents, *and* operation counters.
  Arrivals carrying an unbindable (None) dimension value, and schemas
  beyond the anchor-bitset dimensionality cap, take the scalar
  per-visit pass instead (same outputs, Python speed);
* prominence scoring rides the store's incremental skyline-cardinality
  index (see :meth:`ColumnarSkylineStore.scoring_index`) and annotates
  the fact set's score *columns* in one bulk pass
  (:meth:`score_facts_inplace`), so scored batch ingestion — the
  engine's default — keeps columnar speed without materialising a
  single fact object;
* retraction repair is columnar too (see
  :func:`~repro.algorithms.retraction.retract_top_down_columnar`):
  re-anchor candidates come from the anchor-bitset reverse index and
  one dominance sweep over the columns, instead of per-mask skyline
  recomputation from the full table.

Why precomputing the pruned matrix is sound: STopDown's node passes
already rely on the root-pass bits being *exact* — a constraint survives
iff the new tuple is undominated there (the paper's covering argument:
any dominator in a context is covered by a full-space skyline tuple
anchored at an ancestor, which the root pass meets in level order).  The
vectorized sweep computes those exact bits directly from the full
history, so per-mask decisions come out identical.

Why the walker's bucket arithmetic is exact: a stored row ``r`` sits in
the walk's bucket at ``(C^t_m, M)`` iff ``r`` is anchored in ``M`` at a
constraint with bound mask ``m`` *and* ``r`` agrees with the arrival on
every position of ``m`` (the anchor's values then coincide with
``C^t_m``'s).  With per-row anchor bitsets that membership is
``anchor_bits[r] & closure[agree[r]]`` — one gather and one AND for the
whole history.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import DiscoveryConfig
from ..core.constraint import UNBOUND, Constraint, bindable_positions
from ..core.facts import FactSet
from ..core.lattice import popcount_array
from ..core.record import Record
from ..core.schema import TableSchema
from ..metrics.counters import OpCounters
from ..storage.columnar_store import ColumnarSkylineStore, lattice_bitset_dtype
from .s_top_down import STopDown
from .top_down import repair_demoted_tuple


class SVectorized(STopDown):
    """STopDown with the tuple axis vectorized over columnar storage."""

    name = "svec"

    #: Toggles for the pinned-baseline benches and the equivalence
    #: tests: turning either off replays the pre-walker (PR-2) code
    #: path / the scalar retraction path with identical outputs.
    use_bitset_walker = True
    use_columnar_retraction = True

    def __init__(
        self,
        schema: TableSchema,
        config: Optional[DiscoveryConfig] = None,
        counters: Optional[OpCounters] = None,
        store: Optional[ColumnarSkylineStore] = None,
        shard_subspaces: Optional[Sequence[int]] = None,
        sweep_index: str = "auto",
    ) -> None:
        if store is not None and not isinstance(store, ColumnarSkylineStore):
            raise TypeError(
                "svec needs a ColumnarSkylineStore; got "
                f"{type(store).__name__}"
            )
        if sweep_index not in ("auto", "on", "off"):
            raise ValueError(
                f"sweep_index must be 'auto', 'on' or 'off'; got "
                f"{sweep_index!r}"
            )
        super().__init__(schema, config, counters, store)
        if store is None:
            self.store = ColumnarSkylineStore(
                self.counters,
                n_dimensions=schema.n_dimensions,
                n_measures=schema.n_measures,
            )
        #: ``auto``/``on`` arm the store's incremental sweep index (PR
        #: 7): probes against the stable prefix become packed-bitset
        #: lookups once a fold batch of history accumulates; ``off``
        #: pins every sweep to the dense elementwise path.  ``auto``
        #: currently behaves like ``on`` (the index activation threshold
        #: is its fold batch); the distinct value is reserved for
        #: workload-adaptive heuristics.
        self.sweep_index_mode = sweep_index
        self.store.set_sweep_mode("off" if sweep_index == "off" else "on")
        # Subspace-axis sharding (the service layer's parallel unit):
        # when ``shard_subspaces`` is given, this instance maintains only
        # that subset of the measure-subspace keys.  Sound because every
        # per-subspace decision — Prop. 4 pruning, fact emission, maximal
        # promotion, demotion repair, the scoring index — is derived
        # from the arrival sweep over the *registered* history (which
        # every shard keeps in full), never from another subspace's
        # store.  The shard holding the full measure space runs it as
        # the root pass (visit-all semantics); shards without it run
        # pure node passes, so op-counter totals across a partition sum
        # to the unsharded engine's exactly.
        self._shard: Optional[Tuple[int, ...]] = None
        self._has_root = True
        if shard_subspaces is not None:
            shard = list(dict.fromkeys(shard_subspaces))
            valid = set(self.subspaces)
            valid.add(self.full_space)
            unknown = [s for s in shard if s not in valid]
            if unknown:
                raise ValueError(
                    f"shard subspaces {unknown} are not maintained keys "
                    f"of this schema/config"
                )
            self._shard = tuple(shard)
            shard_set = set(shard)
            self._has_root = self.full_space in shard_set
            self.subspaces = [s for s in self.subspaces if s in shard_set]
        # The raw dominance sweep lives on the store
        # (ColumnarSkylineStore.partition_bitmasks); the algorithm only
        # keeps the subspace-key column used to broadcast Prop. 4.
        measure_dtype = np.int32 if schema.n_measures <= 30 else np.int64
        allowed_bits = 0
        for mask in self.masks_top_down:
            allowed_bits |= 1 << mask
        #: Bitset (over constraint masks) of the d̂-allowed lattice.
        self._allowed_bits = allowed_bits
        #: Maintained subspace keys; the full space (sharing substrate)
        #: comes first when this shard owns it.
        if self._has_root:
            self._subspace_keys = [self.full_space] + [
                s for s in self.subspaces if s != self.full_space
            ]
        else:
            self._subspace_keys = list(self.subspaces)
        #: Column vector of the keys, for one broadcast Prop. 4 test.
        self._keys_column = np.asarray(self._subspace_keys, dtype=measure_dtype)[
            :, None
        ]
        #: One-hot agreement histogram is worth it only while 2^n stays
        #: a narrow matrix; beyond that fall back to per-key sets.
        self._use_one_hot = (1 << schema.n_dimensions) <= 256
        self._arange = np.arange(0, dtype=np.int64)
        #: Lazily-built ancestor tables for batched demotion repair:
        #: ``_anc_tbl[child][j]`` is the bitset of masks that are proper
        #: ancestors of ``child`` binding attribute ``j`` — "is the
        #: demoted tuple already anchored above this candidate child?"
        #: becomes one AND against the anchor-mask bitset.
        self._anc_tbl: Dict[int, Tuple[int, ...]] = {}
        #: Bitset-matrix walker tables (anchor bitsets need 2^n ≤ 64;
        #: same dtype rule as the store's anchor-bit columns).
        bitset_dtype = lattice_bitset_dtype(schema.n_dimensions)
        self._walker_ok = bitset_dtype is not None
        if self._walker_ok:
            self._masks_arr = np.asarray(self.masks_top_down, dtype=bitset_dtype)
            #: parent_bits[i]: bitset of the parent masks of masks_arr[i]
            #: — "all parents pruned" is one AND+compare per cell.
            self._parent_bits = np.asarray(
                [
                    sum(1 << p for p in self._parents[m])
                    for m in self.masks_top_down
                ],
                dtype=bitset_dtype,
            )
            self._closure_arr = np.asarray(self._closure, dtype=bitset_dtype)
            #: mask → position in masks_top_down (repair ordering).
            order = np.full(1 << schema.n_dimensions, -1, dtype=np.int64)
            order[self._masks_arr] = np.arange(
                len(self.masks_top_down), dtype=np.int64
            )
            self._mask_order = order
            self._bitset_dtype = bitset_dtype
            report = np.ones((len(self._subspace_keys), 1), dtype=bool)
            if self._has_root:
                report[0, 0] = self.config.allows_subspace(self.full_space)
            self._report_col = report
            #: Indexed-walker tables: constraint-mask bit weights (the
            #: packed pruned matrix folds back into per-key bitsets) and
            #: the subspace keys as a gather index into the measure-mask
            #: subset DP.
            self._mask_weights = 1 << np.arange(
                1 << schema.n_dimensions, dtype=np.int64
            )
            self._keys_index = np.asarray(self._subspace_keys, dtype=np.int64)

    def maintained_subspaces(self):
        """Shard-restricted instances maintain exactly their keys; the
        full space is among them only for the shard that owns the root
        pass (other shards never touch full-space stores)."""
        if self._shard is not None:
            return list(self._subspace_keys)
        return super().maintained_subspaces()

    # ------------------------------------------------------------------
    # Streaming hooks
    # ------------------------------------------------------------------
    def _after_append(self, record: Record) -> None:
        # Every arrival enters the columns, stored or not: the next
        # arrival's sweep runs against the full history.
        self.store.register(record)

    def reserve(self, extra: int) -> None:
        self.store.reserve(extra)

    def _repair_after_retract(self, record: Record) -> None:
        # Invariant-2 repair first (columnar when the store supports it,
        # scalar otherwise), then drop the row from the columns — the
        # sweep must no longer see the retracted tuple.
        from .retraction import retract_top_down, retract_top_down_columnar

        repaired = self.use_columnar_retraction and retract_top_down_columnar(
            self.store,
            record,
            self.masks_top_down,
            self.maintained_subspaces(),
        )
        if not repaired:
            retract_top_down(
                self.store,
                self.table,
                record,
                self.masks_top_down,
                self.maintained_subspaces(),
                self.allowed_mask,
                self.dim_universe,
            )
        self.store.unregister(record.tid)

    def retract_many(self, tids) -> List[Record]:
        # Repair stays sequential (each retraction must see the state
        # the previous one left) but the store's tombstone compaction is
        # deferred to one grouped pass at the end.
        with self.store.deferred_compaction():
            return [self.retract(tid) for tid in tids]

    # ------------------------------------------------------------------
    # Discovery — bitset-matrix walker
    # ------------------------------------------------------------------
    def _discover(self, record: Record) -> FactSet:
        store = self.store
        if (
            not self._walker_ok
            or not self.use_bitset_walker
            or UNBOUND in record.dims
            or (store.n_rows and not store.anchor_bits_supported)
        ):
            return self._discover_scalar_passes(record)
        if self.sweep_index_mode != "off":
            sweep = store.sweep_index(create=True)
            if sweep is not None:
                sweep.ensure_folded()
                if sweep.active:
                    return self._discover_indexed(record, sweep)
        facts = FactSet(record)
        constraints = self.constraint_cache(record)
        n = store.n_rows
        keys = self._subspace_keys
        n_keys = len(keys)
        cons_seq = tuple(constraints[m] for m in self.masks_top_down)

        demote_mat = closure_of_agree = None
        if n:
            # --- One batched sweep: partition bitmasks vs the whole
            # history (see ColumnarSkylineStore.partition_bitmasks for
            # the orientation contract).
            lt, gt, agree = store.partition_bitmasks(record)
            # Prop. 4 broadcast over every maintained subspace at once:
            # row r dominates the probe in key k iff lt[r] hits the
            # subspace and gt[r] misses it (and vice versa for rows the
            # probe dominates — the demotion candidates).
            keys_col = self._keys_column
            lt_hit = (lt & keys_col) != 0
            gt_hit = (gt & keys_col) != 0
            dominated = lt_hit & ~gt_hit
            demote_mat = gt_hit & ~lt_hit
            # pruned[M] = ⋃ closure(C^{t,t'}) over t' dominating t in M.
            # The submask closures live in an int64 array, so the union
            # is one masked bitwise-or reduction over the dominator
            # rows; the per-row closure gather is shared with the µ
            # -occupancy arithmetic below.
            closure_of_agree = self._closure_arr[agree]
            # (closure · dominated) zeroes non-dominator cells, so one
            # plain bitwise-or reduction yields every subspace's pruned
            # bitset (masked reductions are an order of magnitude
            # slower than this multiply).
            pruned_vec = np.bitwise_or.reduce(
                closure_of_agree * dominated, axis=1
            )
        else:
            pruned_vec = np.zeros(n_keys, dtype=self._bitset_dtype)

        masks_arr = self._masks_arr
        pruned_bit = ((pruned_vec[:, None] >> masks_arr[None, :]) & 1) != 0
        survive = ~pruned_bit
        # The root pass visits every constraint; node passes skip pruned
        # ones outright (Fig. 11b counts them as not traversed).  A
        # shard without the full space runs node passes only.
        if self._has_root:
            traversed = masks_arr.shape[0] + survive[1:].sum()
        else:
            traversed = survive.sum()
        self.counters.traversed_constraints += int(traversed)

        # Fact emission: surviving cells, subspace-major / level-minor —
        # np.nonzero's row-major order reproduces the scalar pass order.
        emit = survive & self._report_col
        ks, cs = np.nonzero(emit)
        if ks.size:
            facts.add_pairs(
                [cons_seq[i] for i in cs.tolist()],
                [keys[k] for k in ks.tolist()],
            )

        # Demotions and the comparison counter come from the anchor
        # bitsets: row r occupies the walk's bucket at mask m iff bit m
        # of its anchor bitset is set and m ⊆ agree[r].  All subspaces
        # are answered by one stacked matrix, snapshotted *before* this
        # arrival's own store mutations.
        repairs_by_key: List[Optional[List[Tuple[int, int]]]] = [None] * n_keys
        if n:
            anchor_bits = store.anchor_bits
            met_mat = np.zeros((n_keys, n), dtype=self._bitset_dtype)
            occupied = False
            for k in range(n_keys):
                bits = anchor_bits(keys[k], n)
                if bits is not None:
                    met_mat[k] = bits[:n]
                    occupied = True
            if occupied:
                met_mat &= closure_of_agree[None, :]
                # Node passes skip pruned masks outright; the root pass
                # scans every bucket along C^t.
                visited = ~pruned_vec
                if self._has_root:
                    visited[0] = -1
                met_mat &= visited[:, None]
                self.counters.comparisons += int(
                    popcount_array(met_mat).sum()
                )
                # Demotion candidates: cells whose bucket bitset meets a
                # row the arrival dominates there.  Both masks are dense
                # on their own; only their conjunction is sparse — one
                # flat boolean AND + flatnonzero (an order of magnitude
                # faster than 2-D nonzero) finds the handful of hits.
                met_flat = met_mat.reshape(-1)
                hits = np.flatnonzero(
                    (met_flat != 0) & demote_mat.reshape(-1)
                )
                if hits.size:
                    order = self._mask_order
                    for index in hits.tolist():
                        k, r = divmod(index, n)
                        remaining = int(met_flat[index])
                        pairs = repairs_by_key[k]
                        if pairs is None:
                            pairs = repairs_by_key[k] = []
                        while remaining:
                            bit = remaining & -remaining
                            remaining ^= bit
                            pairs.append(
                                (int(order[bit.bit_length() - 1]), r)
                            )

        # Maximal-constraint promotion (Invariant 2): insert where the
        # constraint survives and every parent is pruned — with no
        # pruning at all only ⊤ qualifies (parent_bits 0).
        maximal = survive & (
            (pruned_vec[:, None] & self._parent_bits[None, :])
            == self._parent_bits[None, :]
        )
        mk, mc = np.nonzero(maximal)
        if mk.size:
            store.insert_new_many(
                record,
                [
                    (cons_seq[i], keys[k])
                    for k, i in zip(mk.tolist(), mc.tolist())
                ],
            )

        # Demotion repair, batched per subspace in pass order (identical
        # final state to the scalar inline repairs — see _flush_repairs;
        # sorted level-major to mirror the scalar collection order).
        for k, pairs in enumerate(repairs_by_key):
            if pairs:
                pairs.sort()
                self._flush_repairs(
                    record,
                    keys[k],
                    [(r, cons_seq[oi]) for oi, r in pairs],
                    agree,
                )
        return facts

    # ------------------------------------------------------------------
    # Discovery — sweep-indexed walker (O(Δ) prefix probes)
    # ------------------------------------------------------------------
    def _discover_indexed(self, record: Record, sweep) -> FactSet:
        """The bitset-matrix walk over the sweep index's packed prefix.

        Output-identical to :meth:`_discover` (facts, store state, op
        counters), with every O(n) dense stage replaced by packed-bitset
        arithmetic over the rows below the index watermark plus a dense
        pass over the short un-indexed suffix:

        * per-subspace dominator/demotable row bitsets come from a
          subset-DP union of the per-measure rank partitions;
        * Prop. 4 pruning intersects those with the per-(subspace, mask)
          anchor planes — exact by the Invariant-2 covering argument:
          a dominator ``r`` in context ``C^t_m`` is dominated-or-
          equalled by a tuple ``s`` of that context's skyline, and ``s``
          is anchored at an ancestor constraint along ``C^t`` (its
          anchor binds a submask of ``m``, where its values coincide
          with the probe's), so a dominator exists iff an *anchored*
          dominator with agreement ⊇ ``m`` does;
        * the comparison counter reads µ bucket sizes along ``C^t``
          directly (bucket membership at ``(C^t_m, M)`` ⟺ anchored at
          ``m`` with ``m ⊆ agree`` — the identity behind the dense
          met-matrix popcounts), and the demotion candidates are the
          nonzero words of (anchor planes ∩ agreement ∩ demotable).
        """
        store = self.store
        facts = FactSet(record)
        constraints = self.constraint_cache(record)
        keys = self._subspace_keys
        n_keys = len(keys)
        cons_seq = tuple(constraints[m] for m in self.masks_top_down)
        n = store.n_rows
        w = sweep.watermark
        probe_values = np.asarray(record.values, dtype=np.float64)
        probe_dims = store.intern_dims(record.dims)

        sweep.ensure_planes(keys)
        packed_lt, packed_gt = sweep.measure_partitions(probe_values)
        dom, dem = self._packed_dominators(packed_lt, packed_gt)
        agreement = self._packed_agreement(sweep, probe_dims)
        planes = sweep.anchor_planes(keys)
        # met_any[k] = OR_mask(planes[k, mask] & agreement[mask]),
        # reduced one subspace at a time so the full
        # (keys × masks × words) tensor is never materialised — at
        # n = 30k it is ~1 MB and streaming it through memory several
        # times per arrival was the last O(n) term with a visible
        # constant.  The per-k temporary stays cache-resident.
        cap = planes.shape[2]
        met_any = np.empty((n_keys, cap), dtype=np.uint64)
        for k in range(n_keys):
            np.bitwise_or.reduce(
                planes[k] & agreement, axis=0, out=met_any[k]
            )
        # Prop. 4 pruning from the met dominators.  met_dom is genuinely
        # dense under anticorrelated streams (hundreds of occupied words
        # per arrival), so this reduction stays vectorised — only the
        # (keys × masks × words) tensor above was worth breaking up.
        met_dom = met_any & dom
        pruned_cell = (
            np.bitwise_or.reduce(
                met_dom[:, None, :] & agreement[None, :, :], axis=2
            )
            != 0
        )
        pruned_vec = (pruned_cell @ self._mask_weights).astype(
            self._bitset_dtype
        )

        # Dense pass over the un-indexed suffix [w, n): a suffix
        # dominator prunes its own agreement closure directly, so the
        # prefix/suffix union reproduces the dense pruned bits exactly.
        delta = n - w
        closure_s = demote_s = None
        if delta:
            lt_s, gt_s, agree_s = store.partition_suffix(
                probe_values, probe_dims, w, n
            )
            keys_col = self._keys_column
            lt_hit = (lt_s & keys_col) != 0
            gt_hit = (gt_s & keys_col) != 0
            dominated_s = lt_hit & ~gt_hit
            demote_s = gt_hit & ~lt_hit
            closure_s = self._closure_arr[agree_s]
            pruned_vec |= np.bitwise_or.reduce(
                closure_s * dominated_s, axis=1
            )

        masks_arr = self._masks_arr
        pruned_bit = ((pruned_vec[:, None] >> masks_arr[None, :]) & 1) != 0
        survive = ~pruned_bit
        if self._has_root:
            traversed = masks_arr.shape[0] + survive[1:].sum()
        else:
            traversed = survive.sum()
        self.counters.traversed_constraints += int(traversed)

        emit = survive & self._report_col
        ks, cs = np.nonzero(emit)
        if ks.size:
            facts.add_pairs(
                [cons_seq[i] for i in cs.tolist()],
                [keys[k] for k in ks.tolist()],
            )

        visited = ~pruned_vec
        if self._has_root:
            visited[0] = -1

        # Comparisons: µ bucket sizes along C^t over the visited cells,
        # snapshotted before this arrival's own store mutations.
        comparisons = 0
        td = self.masks_top_down
        for k in range(n_keys):
            submap = store.submap(keys[k])
            if not submap:
                continue
            vis = int(visited[k])
            for i, mask in enumerate(td):
                if (vis >> mask) & 1:
                    bucket = submap.get(cons_seq[i])
                    if bucket:
                        comparisons += len(bucket)
        self.counters.comparisons += comparisons

        # Demotion candidates — prefix from the packed planes, suffix
        # from the dense met-matrix over the delta rows.
        repairs_by_key: List[Optional[List[Tuple[int, int]]]] = [None] * n_keys
        order = self._mask_order
        met_dem = met_any & dem
        dk, dw = np.nonzero(met_dem)
        if dk.size > 512:
            met_cell = (planes & agreement[None, :, :]) & dem[:, None, :]
            hit_k, hit_m, hit_w = np.nonzero(met_cell)
            for k, mask, word_at in zip(
                hit_k.tolist(), hit_m.tolist(), hit_w.tolist()
            ):
                if not (int(visited[k]) >> mask) & 1:
                    continue
                pairs = repairs_by_key[k]
                if pairs is None:
                    pairs = repairs_by_key[k] = []
                word = int(met_cell[k, mask, word_at])
                base_row = word_at << 6
                position = int(order[mask])
                while word:
                    bit = word & -word
                    word ^= bit
                    pairs.append(
                        (position, base_row + bit.bit_length() - 1)
                    )
        else:
            for k, word_at in zip(dk.tolist(), dw.tolist()):
                vis = int(visited[k])
                cell = planes[k, :, word_at] & agreement[:, word_at]
                cell &= met_dem[k, word_at]
                base_row = word_at << 6
                for mask in np.flatnonzero(cell).tolist():
                    if not (vis >> mask) & 1:
                        continue
                    pairs = repairs_by_key[k]
                    if pairs is None:
                        pairs = repairs_by_key[k] = []
                    word = int(cell[mask])
                    position = int(order[mask])
                    while word:
                        bit = word & -word
                        word ^= bit
                        pairs.append(
                            (position, base_row + bit.bit_length() - 1)
                        )
        if delta and demote_s.any():
            anchor_bits = store.anchor_bits
            met_suffix = np.zeros((n_keys, delta), dtype=self._bitset_dtype)
            occupied = False
            for k in range(n_keys):
                bits = anchor_bits(keys[k], n)
                if bits is not None:
                    met_suffix[k] = bits[w:n]
                    occupied = True
            if occupied:
                met_suffix &= closure_s[None, :]
                met_suffix &= visited[:, None]
                met_flat = met_suffix.reshape(-1)
                hits = np.flatnonzero(
                    (met_flat != 0) & demote_s.reshape(-1)
                )
                for index in hits.tolist():
                    k, r = divmod(index, delta)
                    remaining = int(met_flat[index])
                    pairs = repairs_by_key[k]
                    if pairs is None:
                        pairs = repairs_by_key[k] = []
                    while remaining:
                        bit = remaining & -remaining
                        remaining ^= bit
                        pairs.append(
                            (int(order[bit.bit_length() - 1]), w + r)
                        )

        maximal = survive & (
            (pruned_vec[:, None] & self._parent_bits[None, :])
            == self._parent_bits[None, :]
        )
        mk, mc = np.nonzero(maximal)
        if mk.size:
            store.insert_new_many(
                record,
                [
                    (cons_seq[i], keys[k])
                    for k, i in zip(mk.tolist(), mc.tolist())
                ],
            )

        # Agreement bitmasks only for the handful of repair rows (the
        # dense walker has the whole agree column; here it would cost
        # the O(n) pass the index exists to avoid).
        agree_of: Dict[int, int] = {}
        for pairs in repairs_by_key:
            if pairs:
                for _, row in pairs:
                    agree_of[row] = 0
        if agree_of:
            rows_arr = np.fromiter(
                agree_of.keys(), dtype=np.int64, count=len(agree_of)
            )
            agree_vals = store.agree_bits_rows(rows_arr, probe_dims)
            agree_of = dict(zip(rows_arr.tolist(), agree_vals.tolist()))
        for k, pairs in enumerate(repairs_by_key):
            if pairs:
                pairs.sort()
                self._flush_repairs(
                    record,
                    keys[k],
                    [(r, cons_seq[oi]) for oi, r in pairs],
                    agree_of,
                )
        return facts

    def _packed_dominators(self, packed_lt, packed_gt):
        """Per-subspace packed dominator/demotable row bitsets: with
        ``U_k = ∪_{i∈k} lt_i`` and ``V_k = ∪_{i∈k} gt_i``, a row
        dominates the probe in subspace ``k`` iff it wins some measure
        of ``k`` and loses none (``U & ~V``) — and the probe dominates
        it under the converse.  Subset DP over the measure masks, then
        one gather into walker key order."""
        n_measures = self.schema.n_measures
        cap = packed_lt.shape[1]
        if n_measures <= 6:
            size = 1 << n_measures
            wins = np.zeros((size, cap), dtype=np.uint64)
            loses = np.zeros((size, cap), dtype=np.uint64)
            for mask in range(1, size):
                j = (mask & -mask).bit_length() - 1
                wins[mask] = wins[mask & (mask - 1)] | packed_lt[j]
                loses[mask] = loses[mask & (mask - 1)] | packed_gt[j]
            wins = wins[self._keys_index]
            loses = loses[self._keys_index]
        else:
            n_keys = len(self._subspace_keys)
            wins = np.zeros((n_keys, cap), dtype=np.uint64)
            loses = np.zeros((n_keys, cap), dtype=np.uint64)
            for k, key in enumerate(self._subspace_keys):
                bits = key
                while bits:
                    low = bits & -bits
                    bits ^= low
                    j = low.bit_length() - 1
                    wins[k] |= packed_lt[j]
                    loses[k] |= packed_gt[j]
        return wins & ~loses, loses & ~wins

    def _packed_agreement(self, sweep, probe_dims):
        """``A[m]`` = packed prefix rows agreeing with the probe on every
        position of constraint mask ``m``: subset DP down the walked
        lattice over the index's posting bitsets (masks outside the
        walk stay zero — no anchors exist there, so every consumer
        intersects them away)."""
        agreement = np.zeros((sweep.n_masks, sweep.cap_words), dtype=np.uint64)
        agreement[0] = ~np.uint64(0)
        for mask in self.masks_top_down:
            if mask:
                j = (mask & -mask).bit_length() - 1
                agreement[mask] = agreement[mask & (mask - 1)] & sweep.posting(
                    j, int(probe_dims[j])
                )
        return agreement

    # ------------------------------------------------------------------
    # Discovery — scalar per-visit passes (fallback: unbindable arrival
    # dimension values, or schemas beyond the anchor-bitset cap)
    # ------------------------------------------------------------------
    def _discover_scalar_passes(self, record: Record) -> FactSet:
        facts = FactSet(record)
        store = self.store
        full = self.full_space
        constraints = self.constraint_cache(record)
        n = store.n_rows
        allowed_bits = self._allowed_bits
        closure = self._closure

        # Subspace keys, full space (the sharing substrate) first.
        keys = self._subspace_keys
        pruned: Dict[int, int] = dict.fromkeys(keys, 0)
        has_demote = dict.fromkeys(keys, False)
        lt_list = gt_list = agree_list = None

        if n:
            lt, gt, agree = store.partition_bitmasks(record)
            keys_col = self._keys_column
            lt_hit = (lt & keys_col) != 0
            gt_hit = (gt & keys_col) != 0
            dominated = lt_hit & ~gt_hit
            demotable_any = (gt_hit & ~lt_hit).any(axis=1)
            # Distinct agreement masks bound the per-key closure loop at
            # 2^n regardless of history length.  One bool matmul against
            # a one-hot agreement matrix yields, per key, exactly which
            # agreement masks occur among its dominators.
            present = None
            if self._use_one_hot:
                if self._arange.shape[0] < n:
                    self._arange = np.arange(
                        max(n, 2 * self._arange.shape[0]), dtype=np.int64
                    )
                one_hot = np.zeros(
                    (n, 1 << self.schema.n_dimensions), dtype=bool
                )
                one_hot[self._arange[:n], agree] = True
                present = dominated @ one_hot
            for k, subspace in enumerate(keys):
                has_demote[subspace] = bool(demotable_any[k])
                if present is not None:
                    agree_masks = np.nonzero(present[k])[0].tolist()
                else:
                    row_mask = dominated[k]
                    if not row_mask.any():
                        continue
                    agree_masks = set(agree[row_mask].tolist())
                bits = 0
                for agree_mask in agree_masks:
                    bits |= closure[agree_mask]
                    if bits & allowed_bits == allowed_bits:
                        break
                pruned[subspace] = bits
            # Plain-int views for the O(1) per-bucket-row demotion test
            # in the lattice passes (scalar indexing into numpy arrays
            # is an order of magnitude slower).  The agreement view
            # feeds the batched demotion repair (candidate children are
            # exactly the free disagreeing positions).
            lt_list = lt.tolist()
            gt_list = gt.tolist()
            agree_list = agree.tolist()

        # C^t as a flat sequence, zipped against masks in every pass.
        cons_seq = tuple(constraints[m] for m in self.masks_top_down)

        # --- Full-space pass (STopDownRoot), then per-subspace passes
        # (STopDownNode) that skip pruned constraints.  A dimension
        # value equal to the unbound marker collapses distinct C^t masks
        # onto one constraint, whose bucket is then scanned twice per
        # pass — only then must repairs run inline (scalar order) so the
        # second scan sees the first repair's deletions.
        defer_repairs = UNBOUND not in record.dims
        for subspace in keys:
            self._lattice_pass(
                record,
                subspace,
                facts,
                pruned[subspace],
                cons_seq,
                lt_list,
                gt_list,
                agree_list,
                has_demote[subspace],
                is_root=subspace == full,
                defer_repairs=defer_repairs,
            )
        return facts

    def _lattice_pass(
        self,
        record: Record,
        subspace: int,
        facts: FactSet,
        pruned_bits: int,
        cons_seq,
        lt_list,
        gt_list,
        agree_list,
        has_demote: bool,
        is_root: bool,
        defer_repairs: bool = True,
    ) -> None:
        """One top-down sweep of ``C^t`` in ``subspace``.

        ``lt_list``/``gt_list`` are the per-row partition bitmasks of the
        arrival sweep (``None`` for an empty history); a stored row is
        demoted iff the new tuple dominates it there — ``gt`` hits the
        subspace, ``lt`` misses it.  ``has_demote`` is the sweep's
        verdict on whether *any* row qualifies, letting demote-free
        arrivals (the common case) skip every bucket scan.  Demotions
        are collected and repaired in one batch after the sweep (see
        :meth:`_flush_repairs`) — safe because a repair only deletes
        from the just-visited bucket and re-anchors at children outside
        ``C^t``, neither of which a later visit of this pass reads —
        unless ``defer_repairs`` is off (degenerate ``C^t`` with
        duplicate constraints).  The root pass visits every constraint
        (counting and demoting like STopDownRoot); node passes skip
        pruned ones.  Pruning is tested on the *collapsed canonical
        mask* (``mask & bindable``) so duplicate raw masks share their
        constraint's pruning state (the unbindable-value fix shared
        with scalar topdown/stopdown).  Counter conventions match
        scalar STopDown exactly — see :mod:`repro.metrics.counters`.
        """
        store = self.store
        counters = self.counters
        parents = self._parents
        record_at = store.record_at
        allowed_mask = self.allowed_mask
        report = not is_root or self.config.allows_subspace(subspace)
        submap = store.submap(subspace)
        insert = store.insert
        add_pair = facts.add_pair
        bindable = bindable_positions(record.dims)
        comparisons = 0
        traversed = 0
        repairs = []
        # Rows at or beyond the sweep length are this very arrival
        # (met again only when two C^t masks yield *equal* constraints,
        # e.g. a None dimension value): a self-comparison, never a
        # demotion — exactly like the scalar pass.
        swept = len(lt_list) if lt_list is not None else 0
        for mask, constraint in zip(self.masks_top_down, cons_seq):
            shifted = pruned_bits >> (mask & bindable)
            if not is_root and shifted & 1:
                continue
            traversed += 1
            if submap is None:
                # The subspace may gain its first bucket mid-pass (this
                # very arrival's ⊤ insert); re-probe until it exists so
                # collapsed duplicate masks meet the arrival exactly
                # like scalar stopdown's per-visit store.get does.
                submap = store.submap(subspace)
            bucket = submap.get(constraint) if submap else None
            if not bucket and not defer_repairs:
                # Inline repairs may delete a pass-start bucket empty —
                # the store then drops it (and possibly the whole space
                # dict), so a later insert recreates fresh objects the
                # snapshot cannot see.  Re-fetch to match the scalar
                # per-visit store.get semantics.
                submap = store.submap(subspace)
                bucket = submap.get(constraint) if submap else None
            if bucket:
                comparisons += len(bucket)
                if has_demote:
                    # Snapshot before repairing: repair deletes from
                    # this very bucket.
                    demoted = [
                        r
                        for r in bucket.values()
                        if r < swept
                        and gt_list[r] & subspace
                        and not lt_list[r] & subspace
                    ]
                    if defer_repairs:
                        for row in demoted:
                            repairs.append((row, constraint))
                    else:
                        for row in demoted:
                            repair_demoted_tuple(
                                store,
                                record,
                                record_at(row),
                                constraint,
                                subspace,
                                allowed_mask,
                            )
            if not shifted & 1:
                if report:
                    add_pair(constraint, subspace)
                # Maximal (all parents pruned): with no pruning at all,
                # only ⊤ qualifies — skip the per-parent scan.  Parents
                # are read at their canonical masks; a raw duplicate has
                # a parent collapsing onto the (surviving) constraint
                # itself, so only the canonical visit anchors.
                if pruned_bits:
                    if all(
                        (pruned_bits >> (p & bindable)) & 1
                        for p in parents[mask]
                    ):
                        insert(constraint, subspace, record)
                elif not mask:
                    insert(constraint, subspace, record)
        if repairs:
            self._flush_repairs(record, subspace, repairs, agree_list)
        counters.comparisons += comparisons
        counters.traversed_constraints += traversed

    def _make_anc_row(self, child: int) -> Tuple[int, ...]:
        closure = self._closure
        row = tuple(
            ((closure[child] & ~closure[child & ~(1 << j)]) & ~(1 << child))
            if child & (1 << j)
            else 0
            for j in range(self.schema.n_dimensions)
        )
        self._anc_tbl[child] = row
        return row

    def _flush_repairs(self, record, subspace, repairs, agree_list) -> None:
        """Procedure *Dominates* (Alg. 5) for a whole pass's demotions.

        Batched counterpart of :func:`repair_demoted_tuple`: the sweep's
        agreement bitmask already answers the per-attribute "do the two
        tuples disagree here?" probes, so the candidate children of each
        ``(row, constraint)`` pair are the set bits of one integer, and
        "ancestor already anchored?" is one AND of the row's anchor-mask
        bitset against a memoised ancestor table.  Processing stays in
        collection order with live anchor updates, so the resulting
        store state is identical to the inline scalar repairs.
        """
        store = self.store
        allowed_bits = self._allowed_bits
        universe = self.dim_universe
        anc_tbl = self._anc_tbl
        record_at = store.record_at
        anchor_masks = store.anchor_masks
        reanchor = store.reanchor_demoted
        bits = store.anchor_bits(subspace, store.n_rows)
        for row, constraint in repairs:
            demoted = record_at(row)
            mask = constraint.bound_mask
            cand = ~mask & ~int(agree_list[row]) & universe
            children = []
            if cand:
                if bits is not None:
                    ab = int(bits[row]) & ~(1 << mask)
                else:
                    ab = 0
                    for a in anchor_masks(demoted.tid, subspace):
                        if a != mask:
                            ab |= 1 << a
                dims = demoted.dims
                cvalues = constraint.values
                while cand:
                    bit = cand & -cand
                    cand ^= bit
                    child = mask | bit
                    if not (allowed_bits >> child) & 1:
                        continue
                    j = bit.bit_length() - 1
                    if dims[j] is UNBOUND:
                        # A value equal to the unbound marker cannot be
                        # bound — there is no child on this attribute.
                        continue
                    tbl = anc_tbl.get(child)
                    if tbl is None:
                        tbl = self._make_anc_row(child)
                    if ab & tbl[j]:
                        continue
                    child_values = list(cvalues)
                    child_values[j] = dims[j]
                    children.append(
                        Constraint.from_values_mask(tuple(child_values), child)
                    )
                    ab |= 1 << child
            reanchor(subspace, demoted, row, constraint, children)

    # ------------------------------------------------------------------
    # Prominence: columnar skyline_sizes and bulk score annotation
    # ------------------------------------------------------------------
    def make_context_counter(self, max_bound_dims: Optional[int] = None):
        """Interned-key counter — keeps scored ingestion columnar."""
        from ..core.prominence import ColumnarContextCounter

        return ColumnarContextCounter(self.schema.n_dimensions, max_bound_dims)

    def score_facts_inplace(self, facts: FactSet, counter) -> bool:
        """Annotate the whole fact set's score columns in one pass.

        Context cardinalities come from the interned-key counter's bulk
        :meth:`ColumnarContextCounter.counts_for_dims` probe (one per
        mask of ``C^t``, not one per fact), skyline cardinalities from
        the store's incremental index — and both land directly in the
        :class:`FactSet` columns, so no fact objects are materialised.
        Falls back (returns False) for foreign counters, schemas beyond
        the index cap, and unbindable dimension values.
        """
        from ..core.prominence import ColumnarContextCounter

        if not isinstance(counter, ColumnarContextCounter):
            return False
        record = facts.record
        if UNBOUND in record.dims:
            return False
        index = self.store.scoring_index()
        if index is None:  # dimensionality beyond the mask-lattice cap
            return False
        dims = record.dims
        ctx_by_mask = counter.counts_for_dims(dims)
        mask_keys = self.store.mask_keys
        shift = self.store.score_shift
        context_col: List[int] = []
        skyline_col: List[int] = []
        ctx_append = context_col.append
        sky_append = skyline_col.append
        key_cache: Dict[int, tuple] = {}
        # Facts arrive subspace-major, so one packed-key base per run of
        # equal subspaces (and one flat index probe per mask within it)
        # covers the whole fact set.
        last_subspace: Optional[int] = None
        base = 0
        tables: Dict[int, Optional[dict]] = {}
        for constraint, subspace in facts.iter_pairs():
            fact_mask = constraint._mask
            ctx_append(ctx_by_mask.get(fact_mask, 0))
            if subspace != last_subspace:
                last_subspace = subspace
                base = subspace << shift
                tables = {}
            if fact_mask in tables:
                table = tables[fact_mask]
            else:
                table = tables[fact_mask] = index.get(base | fact_mask)
            if not table:
                sky_append(0)
                continue
            key = key_cache.get(fact_mask)
            if key is None:
                key = mask_keys[fact_mask](dims)
                key_cache[fact_mask] = key
            sky_append(table.get(key, 0))
        facts.set_scores(context_col, skyline_col)
        return True

    def skyline_sizes(self, facts: FactSet) -> Dict[Tuple[Constraint, int], int]:
        """``|λ_M(σ_C(R))|`` for all of ``S_t`` from the scoring index.

        The columnar store maintains (lazily at first, incrementally
        thereafter) per ``(subspace, fact mask)`` the skyline
        cardinality of every value combination, keyed by the anchored
        tuples' dimension values — anchor-bitset flips on insert/delete
        keep it exact.  Scoring an arrival is then one dict probe per
        fact, independent of history size, instead of the scalar
        per-(tuple, anchor, supermask) sweep.
        """
        index = self.store.scoring_index()
        if index is None:  # dimensionality beyond the mask-lattice cap
            return super().skyline_sizes(facts)
        dims = facts.record.dims
        mask_keys = self.store.mask_keys
        shift = self.store.score_shift
        sizes: Dict[Tuple[Constraint, int], int] = {}
        key_cache: Dict[int, tuple] = {}
        for constraint, subspace in facts.iter_pairs():
            fact_mask = constraint.bound_mask
            table = index.get((subspace << shift) | fact_mask)
            if not table:
                sizes[(constraint, subspace)] = 0
                continue
            key = key_cache.get(fact_mask)
            if key is None:
                key = mask_keys[fact_mask](dims)
                key_cache[fact_mask] = key
            sizes[(constraint, subspace)] = table.get(key, 0)
        return sizes
