"""BruteForce — Algorithm 2 of the paper.

For every measure subspace and every constraint satisfied by the new
tuple, scan the *entire* historical table looking for a dominating tuple
inside the context.  Exists purely as the correctness yardstick and the
worst-case baseline the three optimisation ideas are measured against.
"""

from __future__ import annotations

from ..core.constraint import constraint_for_record
from ..core.dominance import dominates
from ..core.facts import FactSet
from ..core.record import Record
from .base import DiscoveryAlgorithm


class BruteForce(DiscoveryAlgorithm):
    """Exhaustive comparison: every tuple × every constraint × every
    subspace (Alg. 2)."""

    name = "bruteforce"

    def _discover(self, record: Record) -> FactSet:
        facts = FactSet(record)
        for subspace in self.subspaces:
            for mask in self.constraint_masks():
                constraint = constraint_for_record(record, mask)
                self.counters.traversed_constraints += 1
                pruned = False
                for other in self.table:
                    self.counters.comparisons += 1
                    if dominates(other, record, subspace) and constraint.satisfied_by(
                        other
                    ):
                        pruned = True
                        break
                if not pruned:
                    facts.add_pair(constraint, subspace)
        return facts
