"""BaselineIdx — the indexed baseline of §IV.

Identical to BaselineSeq except that the tuples dominating ``t`` are
found through a one-sided range query ``∧_{mi∈M}(mi ≥ t.mi)`` on a k-d
tree over the full measure space [3], instead of a sequential scan.
"""

from __future__ import annotations

from typing import Set

from ..core.constraint import constraint_for_record
from ..core.dominance import dominates
from ..core.facts import FactSet
from ..core.lattice import agreement_mask, iter_submasks
from ..core.record import Record
from ..index.kdtree import KDTree
from .base import DiscoveryAlgorithm


class BaselineIdx(DiscoveryAlgorithm):
    """k-d-tree-indexed baseline (§IV, "BaselineIdx")."""

    name = "baselineidx"

    def __init__(self, schema, config=None, counters=None) -> None:
        super().__init__(schema, config, counters)
        self._tree = KDTree(schema.n_measures)

    def _discover(self, record: Record) -> FactSet:
        facts = FactSet(record)
        allowed = self.constraint_masks()
        for subspace in self.subspaces:
            surviving: Set[int] = set(allowed)
            # Weak-dominance candidates straight from the index; strict
            # dominance still needs one per-candidate check.
            for other in self._tree.dominating_candidates(record.values, subspace):
                self.counters.comparisons += 1
                if dominates(other, record, subspace):
                    agree = agreement_mask(record.dims, other.dims)
                    for sub in iter_submasks(agree):
                        surviving.discard(sub)
                    if not surviving:
                        break
            for mask in surviving:
                self.counters.traversed_constraints += 1
                facts.add_pair(constraint_for_record(record, mask), subspace)
        return facts

    def _after_append(self, record: Record) -> None:
        self._tree.insert(record)

    def _repair_after_retract(self, record: Record) -> None:
        # The k-d tree has no single-point delete; rebuild from the
        # table (retraction is an extension path, not the hot loop).
        self._tree = KDTree(self.schema.n_measures)
        for rec in self.table:
            self._tree.insert(rec)

    def reset(self) -> None:
        super().reset()
        self._tree = KDTree(self.schema.n_measures)
