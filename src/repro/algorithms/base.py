"""Shared machinery for the seven discovery algorithms (§IV–V).

Every algorithm consumes a stream of rows and, per arrival, returns
``S_t`` — the set of constraint–measure pairs qualifying the new tuple as
a contextual skyline tuple.  The uniform entry point is
:meth:`DiscoveryAlgorithm.process`; subclasses implement
:meth:`DiscoveryAlgorithm._discover` against the *historical* table (the
new tuple is appended afterwards, exactly as Algs. 2–6 do on their last
line).

The base class also owns:

* the append-only :class:`~repro.core.record.Table`;
* the measure-subspace list (full space first, respecting ``m̂``);
* the per-algorithm :class:`~repro.metrics.counters.OpCounters` sink;
* a from-scratch ``skyline_size`` fallback used for prominence scoring
  by algorithms that do not materialise ``µ`` stores.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..core.config import DiscoveryConfig
from ..core.constraint import Constraint, constraint_for_record
from ..core.facts import FactSet
from ..core.lattice import masks_by_level, nonempty_subspaces
from ..core.record import Record, Table
from ..core.schema import TableSchema
from ..core.skyline import contextual_skyline
from ..metrics.counters import OpCounters

Row = Union[Mapping[str, object], Record]


class DiscoveryAlgorithm(abc.ABC):
    """Base class of all situational-fact discovery algorithms.

    Parameters
    ----------
    schema:
        The relation schema ``R(D; M)``.
    config:
        ``d̂``/``m̂`` caps and reporting knobs; defaults to unrestricted.
    counters:
        Optional shared operation-counter sink.
    """

    #: Short name used by benches and the engine registry.
    name: str = "abstract"

    def __init__(
        self,
        schema: TableSchema,
        config: Optional[DiscoveryConfig] = None,
        counters: Optional[OpCounters] = None,
    ) -> None:
        self.schema = schema
        self.config = config or DiscoveryConfig()
        self.counters = counters if counters is not None else OpCounters()
        self.table = Table(schema)
        self.full_space = schema.full_measure_mask
        #: Non-empty measure subspaces to examine, largest (full space) first.
        self.subspaces: List[int] = nonempty_subspaces(
            self.full_space, self.config.max_measure_dims
        )
        #: Universe mask over dimension-attribute positions.
        self.dim_universe = (1 << schema.n_dimensions) - 1
        #: Max bound attributes actually allowed (``min(d̂, n)``).
        self.bound_cap = self.config.effective_bound_cap(schema.n_dimensions)
        cap = self.bound_cap
        levels = masks_by_level(schema.n_dimensions)
        #: Allowed constraint masks, most general first (``⊤`` → level d̂).
        self.masks_top_down: Tuple[int, ...] = tuple(
            m for level in levels[: cap + 1] for m in level
        )
        #: Allowed constraint masks, most specific first.
        self.masks_bottom_up: Tuple[int, ...] = tuple(
            m for level in reversed(levels[: cap + 1]) for m in level
        )
        #: Memo for :meth:`constraint_cache`, keyed by dims tuple.
        self._ct_by_dims: Dict[Tuple[object, ...], Dict[int, Constraint]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def process(self, row: Row) -> FactSet:
        """Handle one arriving tuple: discover ``S_t``, then append.

        Accepts a mapping keyed by attribute names or a pre-built
        :class:`Record` (tid is re-assigned to the arrival index).
        """
        if isinstance(row, Record):
            record = Record(len(self.table), row.dims, row.values, row.raw)
        else:
            record = self.table.make_record(row)
        facts = self._discover(record)
        self.table.append(record)
        self._after_append(record)
        return facts

    def process_stream(self, rows: Iterable[Row]) -> List[FactSet]:
        """Process many rows; returns one ``S_t`` per row, in order."""
        return [self.process(row) for row in rows]

    def process_many(self, rows: Iterable[Row]) -> List[FactSet]:
        """Batched ingestion: like :meth:`process_stream`, but the whole
        block is announced upfront via :meth:`reserve` so vectorized
        algorithms can intern/append in blocks (grow their column arrays
        once instead of geometrically along the way).

        Discovery itself stays per-arrival — each tuple is compared
        against the history *including* the earlier tuples of the same
        block, so the output is identical to a loop of :meth:`process`.
        """
        rows = list(rows)
        self.reserve(len(rows))
        return [self.process(row) for row in rows]

    def reserve(self, extra: int) -> None:
        """Capacity hint: ``extra`` more arrivals are imminent.

        Default is a no-op; algorithms with columnar state override it
        to pre-grow their arrays in one allocation.
        """

    # ------------------------------------------------------------------
    # Subclass contract
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _discover(self, record: Record) -> FactSet:
        """Compute ``S_t`` for ``record`` against the historical table.

        Must *not* append the record; :meth:`process` does that.
        """

    def _after_append(self, record: Record) -> None:
        """Hook for algorithms that maintain auxiliary indexes (k-d tree,
        CSCs) keyed on appended data.  Default: nothing."""

    # ------------------------------------------------------------------
    # Retraction (§VIII deletion extension)
    # ------------------------------------------------------------------
    def retract(self, tid: int) -> Record:
        """Remove the tuple with id ``tid`` and repair internal state.

        The base implementation only mutates the table — correct for the
        store-free baselines (BruteForce / BaselineSeq recompute from
        the table each arrival).  Store-maintaining algorithms override
        :meth:`_repair_after_retract`.
        """
        removed = self.table.delete(tid)
        self._repair_after_retract(removed)
        return removed

    def retract_many(self, tids) -> List[Record]:
        """Grouped :meth:`retract`: removed records in argument order.

        Repair is inherently sequential (each retraction must observe
        the state the previous one left), so the default loops;
        store-maintaining algorithms override to batch the physical
        reclamation around the loop.
        """
        return [self.retract(tid) for tid in tids]

    def _repair_after_retract(self, removed: Record) -> None:
        """Fix any materialised state after ``removed`` left the table."""

    # ------------------------------------------------------------------
    # Constraint-mask helpers (C^t in bitmask form)
    # ------------------------------------------------------------------
    def allowed_mask(self, mask: int) -> bool:
        """True iff a constraint with bound-position ``mask`` respects
        the ``d̂`` cap."""
        return self.config.allows_constraint_mask(mask)

    def constraint_masks(self) -> List[int]:
        """All bound-position masks allowed by ``d̂`` (the ``C^t``
        skeleton; identical for every tuple)."""
        return list(self.masks_top_down)

    def maintained_subspaces(self) -> List[int]:
        """Measure subspaces whose ``µ`` stores this algorithm maintains.

        Equals :attr:`subspaces` for the non-sharing algorithms; the
        sharing variants additionally always maintain the full space
        (their sharing substrate), even under an ``m̂`` cap.
        """
        return list(self.subspaces)

    def constraint_cache(self, record: Record) -> Dict[int, Constraint]:
        """The constraints of ``C^t`` keyed by bound mask.

        ``C^t`` depends only on the record's dimension values, which
        bounded-domain streams repeat constantly, so the per-arrival
        build is memoised by dims tuple (capped FIFO to bound memory on
        unbounded domains)."""
        cached = self._ct_by_dims.get(record.dims)
        if cached is not None:
            return cached
        cached = {
            mask: constraint_for_record(record, mask) for mask in self.masks_top_down
        }
        if len(self._ct_by_dims) >= 16384:
            self._ct_by_dims.pop(next(iter(self._ct_by_dims)))
        self._ct_by_dims[record.dims] = cached
        return cached

    # ------------------------------------------------------------------
    # Prominence support
    # ------------------------------------------------------------------
    def make_context_counter(self, max_bound_dims: Optional[int] = None):
        """The ``|σ_C(R)|`` counter best matched to this algorithm.

        The engine calls this once at construction.  Default: the scalar
        :class:`~repro.core.prominence.ContextCounter`; vectorized
        algorithms override it with the interned-key columnar counter so
        scored batch ingestion stays off the per-constraint object path.
        """
        from ..core.prominence import ContextCounter

        return ContextCounter(max_bound_dims)

    def skyline_size(self, constraint: Constraint, subspace: int) -> int:
        """``|λ_M(σ_C(R))|`` after the newest append.

        Base implementation recomputes from scratch; store-maintaining
        algorithms override this with O(stored) lookups.
        """
        return len(contextual_skyline(self.table, constraint, subspace))

    def skyline_sizes(self, facts: FactSet) -> Dict[Tuple[Constraint, int], int]:
        """``|λ_M(σ_C(R))|`` for every pair in ``S_t``, in bulk.

        The default loops over :meth:`skyline_size`; algorithms with
        materialised stores override it with one shared sweep (``S_t``
        routinely holds thousands of pairs per arrival, so this path is
        performance-critical for prominence scoring).
        """
        return {
            (constraint, subspace): self.skyline_size(constraint, subspace)
            for constraint, subspace in facts.iter_pairs()
        }

    def score_facts_inplace(self, facts: FactSet, counter) -> bool:
        """Algorithm-specific bulk scoring fast path.

        Returns True when the algorithm annotated ``facts`` with context
        and skyline cardinalities itself (columns attached via
        :meth:`FactSet.set_scores`); False when the engine must run the
        generic :meth:`skyline_sizes` + :func:`score_facts` path.  The
        default has no fast path.
        """
        return False

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def stored_tuple_count(self) -> int:
        """Stored skyline-tuple references (0 for store-free baselines)."""
        return 0

    def approx_bytes(self) -> int:
        """Approximate bytes of materialised skyline state."""
        return 0

    def reset(self) -> None:
        """Forget all state (fresh table, fresh counters)."""
        self.table = Table(self.schema)
        self.counters.reset()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={len(self.table)})"
