"""Tuple retraction — the paper's §VIII "deletion and update" extension.

The paper's model is append-only; deletions are named as future work.
This module adds them: :func:`retract_bottom_up` repairs an Invariant-1
store and :func:`retract_top_down` an Invariant-2 store after a tuple is
removed from the relation.

Key observation limiting the repair scope: removing ``u`` can only
change the skyline of a pair ``(C, M)`` where ``u`` itself was a skyline
tuple — if ``u`` was dominated at ``(C, M)`` by ``v``, then any tuple
``u`` dominated there is also dominated by ``v`` (transitivity), so the
skyline is unchanged.  For Invariant-1 stores that is exactly the set of
pairs storing ``u``; for Invariant-2 stores it is the up-set of ``u``'s
anchor masks (skyline constraints are down-closed from their maximal
elements — descendants of an anchor, not ancestors).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set

import numpy as np

from ..core.constraint import UNBOUND, Constraint, constraint_for_record
from ..core.dominance import dominates
from ..core.lattice import (
    iter_submasks,
    iter_supermasks,
    popcount,
    submask_closure_table,
    supermask_closure_table,
)
from ..core.record import Record
from ..core.skyline import contextual_skyline
from ..storage.base import SkylineStore


def retract_bottom_up(
    store: SkylineStore,
    table: Iterable[Record],
    removed: Record,
    constraint_masks: Sequence[int],
    subspaces: Sequence[int],
) -> None:
    """Repair an Invariant-1 store after ``removed`` left the table.

    ``table`` must already exclude the removed record.  For every pair
    that stored the record, the contextual skyline is recomputed from
    the table and tuples previously suppressed by the record are
    re-inserted.
    """
    records = list(table)
    for mask in constraint_masks:
        constraint = constraint_for_record(removed, mask)
        for subspace in subspaces:
            if not store.contains(constraint, subspace, removed):
                continue
            store.delete(constraint, subspace, removed)
            current = {r.tid for r in store.get(constraint, subspace)}
            for record in contextual_skyline(records, constraint, subspace):
                if record.tid not in current:
                    store.insert(constraint, subspace, record)


def retract_top_down(
    store: SkylineStore,
    table: Iterable[Record],
    removed: Record,
    constraint_masks: Sequence[int],
    subspaces: Sequence[int],
    allows_mask,
    dim_universe: int,
) -> None:
    """Repair an Invariant-2 store after ``removed`` left the table.

    For each subspace: find the removed tuple's anchor masks, walk the
    up-set of those masks (all more specific constraints, where the
    tuple was a skyline tuple), recompute each affected contextual
    skyline, and re-anchor tuples that re-enter — inserting them at the
    now-maximal constraints and deleting their demoted descendants.
    Masks are processed most-general-first so maximality checks can rely
    on already-repaired ancestors.
    """
    records = list(table)
    allowed = [m for m in constraint_masks if allows_mask(m)]
    for subspace in subspaces:
        anchor_masks = [
            mask
            for mask in allowed
            if store.contains(
                constraint_for_record(removed, mask), subspace, removed
            )
        ]
        if not anchor_masks:
            continue
        # Up-set of the anchors: every allowed mask containing an anchor.
        affected: Set[int] = set()
        for anchor in anchor_masks:
            for sup in iter_supermasks(anchor, dim_universe):
                if allows_mask(sup):
                    affected.add(sup)
        # Remove the tuple from its anchors first.
        for anchor in anchor_masks:
            store.delete(
                constraint_for_record(removed, anchor), subspace, removed
            )
        for mask in sorted(affected, key=popcount):
            constraint = constraint_for_record(removed, mask)
            for record in contextual_skyline(records, constraint, subspace):
                if not dominates(removed, record, subspace):
                    continue  # was in the skyline already; anchors fine
                _anchor_if_maximal(store, record, constraint, mask, subspace)


def retract_top_down_columnar(
    store,
    removed: Record,
    constraint_masks: Sequence[int],
    subspaces: Sequence[int],
) -> bool:
    """Columnar :func:`retract_top_down` over a ``ColumnarSkylineStore``.

    Same repair, answered from the columns instead of full-table
    rescans: the removed tuple's anchors come straight off the per-row
    anchor bitsets, candidate re-entrants are the rows the removed
    tuple dominated (one dominance sweep over the measure columns,
    shared by every subspace), and per affected mask the "is the
    candidate back in the skyline?" check runs as a batched comparison
    against the context rows only.  Re-anchoring replays
    :func:`_anchor_if_maximal` with bitset arithmetic — "ancestor
    already anchored?" / "which descendant anchors are shadowed?" are
    single ANDs against the submask / supermask closure tables.

    Returns False — leaving the store untouched — when the store cannot
    support the columnar path (no anchor bitsets, or the removed tuple
    carries an unbindable dimension value, which collapses its anchor
    masks); the caller then falls back to the scalar repair.
    """
    if UNBOUND in removed.dims:
        return False
    anchor_bits = getattr(store, "anchor_bits", None)
    if anchor_bits is None or not getattr(store, "anchor_bits_supported", False):
        return False
    row_u = store.row_of(removed.tid)
    if row_u is None:
        return False
    n = store.n_rows
    n_dims = len(removed.dims)
    closure = submask_closure_table(n_dims)
    up = supermask_closure_table(n_dims)
    values = store.values_matrix()
    n_measures = values.shape[1]
    # Orientation as in the arrival sweep: lt[r] bits where row r beats
    # the removed tuple, gt[r] bits where the removed tuple beats row r.
    lt, gt, agree = store.partition_bitmasks(removed)
    alive = np.ones(n, dtype=bool)
    alive[row_u] = False
    record_at = store.record_at
    for subspace in subspaces:
        bits = anchor_bits(subspace, n)
        ab_u = int(bits[row_u]) if bits is not None else 0
        if not ab_u:
            continue
        # Remove the tuple from its anchors first (scalar order).
        remaining = ab_u
        while remaining:
            bit = remaining & -remaining
            remaining ^= bit
            store.delete(
                constraint_for_record(removed, bit.bit_length() - 1),
                subspace,
                removed,
            )
        # Only tuples the removed one dominated there can re-enter.
        dominated_by_u = ((gt & subspace) != 0) & ((lt & subspace) == 0) & alive
        if not bool(dominated_by_u.any()):
            continue
        # Up-set of the anchors: every affected (more specific) mask.
        affected = 0
        remaining = ab_u
        while remaining:
            bit = remaining & -remaining
            remaining ^= bit
            affected |= up[bit.bit_length() - 1]
        positions = [i for i in range(n_measures) if (subspace >> i) & 1]
        # constraint_masks is popcount-ascending (and d̂-filtered), so
        # maximality checks see already-repaired ancestors, exactly like
        # the scalar most-general-first walk.
        for mask in constraint_masks:
            if not (affected >> mask) & 1:
                continue
            in_context = ((agree & mask) == mask) & alive
            candidates = np.nonzero(in_context & dominated_by_u)[0]
            if candidates.size == 0:
                continue
            context_values = values[np.nonzero(in_context)[0]][:, positions]
            constraint = constraint_for_record(removed, mask)
            for r in candidates.tolist():
                candidate_values = values[r, positions]
                ge_all = (context_values >= candidate_values).all(axis=1)
                gt_any = (context_values > candidate_values).any(axis=1)
                if bool((ge_all & gt_any).any()):
                    continue  # still dominated in this context
                _reanchor_if_maximal_bits(
                    store, record_at(r), r, constraint, mask, subspace,
                    closure, up,
                )
    return True


def _reanchor_if_maximal_bits(
    store,
    record: Record,
    row: int,
    constraint: Constraint,
    mask: int,
    subspace: int,
    closure: Sequence[int],
    up: Sequence[int],
) -> None:
    """Bitset replay of :func:`_anchor_if_maximal`: the record's anchor
    bitset answers both the ancestor-cover check and the shadowed
    -descendant sweep in one AND each."""
    bits = store.anchor_bits(subspace, row + 1)
    anchored = int(bits[row]) if bits is not None else 0
    self_bit = 1 << mask
    if anchored & closure[mask] & ~self_bit:
        return  # a more general anchor covers this constraint
    shadowed = anchored & up[mask] & ~self_bit
    while shadowed:
        bit = shadowed & -shadowed
        shadowed ^= bit
        store.delete(
            constraint_for_record(record, bit.bit_length() - 1),
            subspace,
            record,
        )
    store.insert(constraint, subspace, record)


def _anchor_if_maximal(
    store: SkylineStore,
    record: Record,
    constraint: Constraint,
    mask: int,
    subspace: int,
) -> None:
    """``constraint`` just became a skyline constraint of ``record``:
    anchor it there unless an ancestor already is one, and demote any
    descendant anchors it shadows."""
    n = constraint.arity
    for sub in iter_submasks(mask):
        if sub == mask:
            continue
        anc = Constraint(
            tuple(constraint.values[i] if sub & (1 << i) else UNBOUND for i in range(n))
        )
        if store.contains(anc, subspace, record):
            return  # a more general anchor covers this constraint
    # Demote shadowed descendant anchors (they are no longer maximal).
    for sup in iter_supermasks(mask, (1 << n) - 1):
        if sup == mask:
            continue
        desc = constraint_for_record(record, sup)
        if store.contains(desc, subspace, record):
            store.delete(desc, subspace, record)
    store.insert(constraint, subspace, record)
