"""Tuple retraction — the paper's §VIII "deletion and update" extension.

The paper's model is append-only; deletions are named as future work.
This module adds them: :func:`retract_bottom_up` repairs an Invariant-1
store and :func:`retract_top_down` an Invariant-2 store after a tuple is
removed from the relation.

Key observation limiting the repair scope: removing ``u`` can only
change the skyline of a pair ``(C, M)`` where ``u`` itself was a skyline
tuple — if ``u`` was dominated at ``(C, M)`` by ``v``, then any tuple
``u`` dominated there is also dominated by ``v`` (transitivity), so the
skyline is unchanged.  For Invariant-1 stores that is exactly the set of
pairs storing ``u``; for Invariant-2 stores it is the up-set of ``u``'s
anchor masks (skyline constraints are down-closed from their maximal
elements — descendants of an anchor, not ancestors).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set

from ..core.constraint import UNBOUND, Constraint, constraint_for_record
from ..core.dominance import dominates
from ..core.lattice import iter_submasks, iter_supermasks, popcount
from ..core.record import Record
from ..core.skyline import contextual_skyline
from ..storage.base import SkylineStore


def retract_bottom_up(
    store: SkylineStore,
    table: Iterable[Record],
    removed: Record,
    constraint_masks: Sequence[int],
    subspaces: Sequence[int],
) -> None:
    """Repair an Invariant-1 store after ``removed`` left the table.

    ``table`` must already exclude the removed record.  For every pair
    that stored the record, the contextual skyline is recomputed from
    the table and tuples previously suppressed by the record are
    re-inserted.
    """
    records = list(table)
    for mask in constraint_masks:
        constraint = constraint_for_record(removed, mask)
        for subspace in subspaces:
            if not store.contains(constraint, subspace, removed):
                continue
            store.delete(constraint, subspace, removed)
            current = {r.tid for r in store.get(constraint, subspace)}
            for record in contextual_skyline(records, constraint, subspace):
                if record.tid not in current:
                    store.insert(constraint, subspace, record)


def retract_top_down(
    store: SkylineStore,
    table: Iterable[Record],
    removed: Record,
    constraint_masks: Sequence[int],
    subspaces: Sequence[int],
    allows_mask,
    dim_universe: int,
) -> None:
    """Repair an Invariant-2 store after ``removed`` left the table.

    For each subspace: find the removed tuple's anchor masks, walk the
    up-set of those masks (all more specific constraints, where the
    tuple was a skyline tuple), recompute each affected contextual
    skyline, and re-anchor tuples that re-enter — inserting them at the
    now-maximal constraints and deleting their demoted descendants.
    Masks are processed most-general-first so maximality checks can rely
    on already-repaired ancestors.
    """
    records = list(table)
    allowed = [m for m in constraint_masks if allows_mask(m)]
    for subspace in subspaces:
        anchor_masks = [
            mask
            for mask in allowed
            if store.contains(
                constraint_for_record(removed, mask), subspace, removed
            )
        ]
        if not anchor_masks:
            continue
        # Up-set of the anchors: every allowed mask containing an anchor.
        affected: Set[int] = set()
        for anchor in anchor_masks:
            for sup in iter_supermasks(anchor, dim_universe):
                if allows_mask(sup):
                    affected.add(sup)
        # Remove the tuple from its anchors first.
        for anchor in anchor_masks:
            store.delete(
                constraint_for_record(removed, anchor), subspace, removed
            )
        for mask in sorted(affected, key=popcount):
            constraint = constraint_for_record(removed, mask)
            for record in contextual_skyline(records, constraint, subspace):
                if not dominates(removed, record, subspace):
                    continue  # was in the skyline already; anchors fine
                _anchor_if_maximal(store, record, constraint, mask, subspace)


def _anchor_if_maximal(
    store: SkylineStore,
    record: Record,
    constraint: Constraint,
    mask: int,
    subspace: int,
) -> None:
    """``constraint`` just became a skyline constraint of ``record``:
    anchor it there unless an ancestor already is one, and demote any
    descendant anchors it shadows."""
    n = constraint.arity
    for sub in iter_submasks(mask):
        if sub == mask:
            continue
        anc = Constraint(
            tuple(constraint.values[i] if sub & (1 << i) else UNBOUND for i in range(n))
        )
        if store.contains(anc, subspace, record):
            return  # a more general anchor covers this constraint
    # Demote shadowed descendant anchors (they are no longer maximal).
    for sup in iter_supermasks(mask, (1 << n) - 1):
        if sup == mask:
            continue
        desc = constraint_for_record(record, sup)
        if store.contains(desc, subspace, record):
            store.delete(desc, subspace, record)
    store.insert(constraint, subspace, record)
