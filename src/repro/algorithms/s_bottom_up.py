"""SBottomUp — BottomUp with computation shared across measure subspaces
(paper §V-C, sketched after Alg. 6).

The root pass sweeps the *full* measure space over all of ``C^t``
(level order, most specific first), comparing ``t`` with the full
contextual skylines materialised by Invariant 1.  Each comparison is
partitioned once into ``(M>, M<, M=)`` and Proposition 4 marks
``C^{t,t'}`` pruned in every subspace where ``t`` is dominated.

Because BottomUp stores a skyline tuple at *every* skyline constraint,
the full skyline of each visited context sits right at that constraint;
sweeping all of ``C^t`` in the root pass therefore yields a complete
pruned matrix (if anything dominates ``t`` in ``(C, M)``, some
full-space skyline tuple of ``σ_C(R)`` is stored at ``C`` itself and is
met during the root pass).  The per-subspace passes then *stop at* the
pruned frontier — they visit only skyline constraints, emit facts,
insert ``t``, and delete tuples ``t`` newly dominates ("SBottomUp skips
all non-skyline constraints", §VI-B).

The root pass always runs in the full measure space even when the ``m̂``
cap excludes it from reported subspaces.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..core.config import DiscoveryConfig
from ..core.constraint import Constraint, bindable_positions
from ..core.dominance import ComparisonOutcome, compare, dominates
from ..core.facts import FactSet
from ..core.lattice import agreement_mask, submask_closure_table
from ..core.record import Record
from ..core.schema import TableSchema
from ..metrics.counters import OpCounters
from ..storage.base import SkylineStore
from .bottom_up import BottomUp


class SBottomUp(BottomUp):
    """BottomUp sharing dominance comparisons across measure subspaces."""

    name = "sbottomup"

    def __init__(
        self,
        schema: TableSchema,
        config: Optional[DiscoveryConfig] = None,
        counters: Optional[OpCounters] = None,
        store: Optional[SkylineStore] = None,
    ) -> None:
        super().__init__(schema, config, counters, store)
        self._closure = submask_closure_table(schema.n_dimensions)

    def maintained_subspaces(self):
        """The full space is always maintained — it is the sharing
        substrate — even when the m̂ cap excludes it from reporting."""
        out = list(self.subspaces)
        if self.full_space not in out:
            out.insert(0, self.full_space)
        return out

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def _discover(self, record: Record) -> FactSet:
        facts = FactSet(record)
        constraints = self.constraint_cache(record)
        pruned_matrix: Dict[int, int] = {m: 0 for m in self.subspaces}
        pruned_matrix.setdefault(self.full_space, 0)
        self._root_pass(record, facts, pruned_matrix, constraints)
        for subspace in self.subspaces:
            if subspace == self.full_space:
                continue
            self._node_pass(
                record, subspace, facts, pruned_matrix[subspace], constraints
            )
        return facts

    def _root_pass(
        self,
        record: Record,
        facts: FactSet,
        pruned_matrix: Dict[int, int],
        constraints: Dict[int, Constraint],
    ) -> None:
        """Full-space sweep over *all* of ``C^t``.

        Unlike plain BottomUp, the sweep does not stop at the domination
        frontier: comparisons at full-space non-skyline constraints are
        precisely what fills the pruned matrix for the other subspaces.
        """
        full = self.full_space
        store = self.store
        counters = self.counters
        report_full = self.config.allows_subspace(full)
        outcomes: Dict[int, ComparisonOutcome] = {}
        subspace_keys = list(pruned_matrix)
        # Prune/test on the collapsed canonical mask: raw masks covering
        # an unbindable (None) dimension value collapse onto one
        # constraint and must share its pruning state (see TopDown).
        bindable = bindable_positions(record.dims)
        for mask in self.masks_bottom_up:
            constraint = constraints[mask]
            counters.traversed_constraints += 1
            for other in store.get(constraint, full):
                counters.comparisons += 1
                outcome = outcomes.get(other.tid)
                if outcome is None:
                    outcome = compare(record, other)
                    outcomes[other.tid] = outcome
                    agree_closure = self._closure[
                        agreement_mask(record.dims, other.dims)
                    ]
                    for sub in subspace_keys:
                        if outcome.dominated_in(sub):
                            pruned_matrix[sub] |= agree_closure
                if outcome.dominates_in(full):
                    store.delete(constraint, full, other)
            if not (pruned_matrix[full] >> (mask & bindable)) & 1:
                if report_full:
                    facts.add_pair(constraint, full)
                store.insert(constraint, full, record)

    def _node_pass(
        self,
        record: Record,
        subspace: int,
        facts: FactSet,
        pruned_bits: int,
        constraints: Dict[int, Constraint],
    ) -> None:
        """Per-subspace sweep that stops at the (pre-computed) pruned
        frontier; only skyline constraints are visited."""
        store = self.store
        counters = self.counters
        bindable = bindable_positions(record.dims)
        for mask in self.masks_bottom_up:
            if (pruned_bits >> (mask & bindable)) & 1:
                continue
            constraint = constraints[mask]
            counters.traversed_constraints += 1
            facts.add_pair(constraint, subspace)
            for other in store.get(constraint, subspace):
                counters.comparisons += 1
                if dominates(record, other, subspace):
                    store.delete(constraint, subspace, other)
            store.insert(constraint, subspace, record)
