"""Index substrates: k-d tree [3], skycube [9], compressed skycube [12]."""

from .kdtree import KDTree
from .skycube import CompressedSkycube, Skycube

__all__ = ["KDTree", "Skycube", "CompressedSkycube"]
