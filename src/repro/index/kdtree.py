"""k-d tree with one-sided dominance range queries (Bentley [3]).

``BaselineIdx`` (§IV) replaces BaselineSeq's sequential scan with a
one-sided range query ``∧_{mi∈M} (mi ≥ t.mi)`` over the full measure
space.  The tree indexes the *normalised* measure vectors of all
appended records; :meth:`KDTree.dominating_candidates` reports every
record at least as large as the probe on all constrained axes.

Points are inserted incrementally (the table is append-only), so the
tree is unbalanced in the worst case; the paper's implementation has the
same property and the experiments only require faithfulness, not an
optimal index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.record import Record


@dataclass
class _Node:
    record: Record
    axis: int
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None


class KDTree:
    """Incremental k-d tree over the full measure space.

    Examples
    --------
    >>> from repro.core.schema import TableSchema
    >>> from repro.core.record import Record
    >>> tree = KDTree(n_axes=2)
    >>> tree.insert(Record(0, ("a",), (3.0, 4.0), (3.0, 4.0)))
    >>> tree.insert(Record(1, ("b",), (5.0, 1.0), (5.0, 1.0)))
    >>> [r.tid for r in tree.dominating_candidates((2.0, 2.0), 0b11)]
    [0]
    """

    def __init__(self, n_axes: int) -> None:
        if n_axes < 1:
            raise ValueError("k-d tree needs at least one axis")
        self.n_axes = n_axes
        self._root: Optional[_Node] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, record: Record) -> None:
        """Insert one record keyed by its normalised measure vector."""
        if len(record.values) != self.n_axes:
            raise ValueError(
                f"record has {len(record.values)} measures, tree has {self.n_axes} axes"
            )
        self._size += 1
        if self._root is None:
            self._root = _Node(record, 0)
            return
        node = self._root
        while True:
            axis = node.axis
            go_left = record.values[axis] < node.record.values[axis]
            child = node.left if go_left else node.right
            if child is None:
                new_node = _Node(record, (axis + 1) % self.n_axes)
                if go_left:
                    node.left = new_node
                else:
                    node.right = new_node
                return
            node = child

    def dominating_candidates(
        self, probe: Sequence[float], subspace: int
    ) -> List[Record]:
        """Records with ``value[i] ≥ probe[i]`` for every axis ``i`` in
        bitmask ``subspace`` (weak dominance candidates).

        Axes outside ``subspace`` are unconstrained.  The left subtree of
        a node splitting on a constrained axis is pruned when the node's
        own value already falls below the probe (everything to the left
        is smaller still).
        """
        if self._root is None or subspace == 0:
            return []
        out: List[Record] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            values = node.record.values
            if self._weakly_dominates(values, probe, subspace):
                out.append(node.record)
            axis_bit = 1 << node.axis
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                # Left holds values strictly below this node on node.axis.
                if not (subspace & axis_bit) or values[node.axis] > probe[node.axis]:
                    stack.append(node.left)
                elif values[node.axis] == probe[node.axis]:
                    # Left values are < probe on a constrained axis: prune.
                    pass
                # values < probe on a constrained axis: prune as well.
        return out

    @staticmethod
    def _weakly_dominates(values: Sequence[float], probe: Sequence[float], subspace: int) -> bool:
        mask = subspace
        i = 0
        while mask:
            if mask & 1 and values[i] < probe[i]:
                return False
            mask >>= 1
            i += 1
        return True

    def items(self) -> List[Record]:
        """All records in the tree (traversal order unspecified)."""
        out: List[Record] = []
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            out.append(node.record)
            if node.left:
                stack.append(node.left)
            if node.right:
                stack.append(node.right)
        return out
