"""Skycube and Compressed Skycube (CSC) substrates.

The skycube (Pei et al. [9]) materialises the skyline of *every*
non-empty measure subspace.  The Compressed Skycube (Xia & Zhang [12])
stores each tuple only in its **minimum subspaces** — subspaces where the
tuple is a skyline tuple but is not in the skyline of any proper
sub-subspace — and answers "skyline of ``M``" queries by collecting
candidates from all subspaces ``M' ⊆ M`` and filtering.

Both structures support incremental insertion, which is what the paper's
C-CSC comparator (Sec. II adaptation) needs: one CSC per context, updated
on every arrival.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..core.dominance import dominates
from ..core.lattice import iter_submasks, nonempty_subspaces
from ..core.record import Record


class Skycube:
    """Uncompressed skycube: full skyline per subspace (Pei et al. [9]).

    Used as an oracle in tests; the CSC must answer every query
    identically.
    """

    def __init__(self, full_space: int) -> None:
        self.full_space = full_space
        self._subspaces = nonempty_subspaces(full_space)
        self._records: List[Record] = []
        self._skylines: Dict[int, Dict[int, Record]] = {m: {} for m in self._subspaces}

    def insert(self, record: Record) -> None:
        """Insert and update all ``2^m - 1`` subspace skylines."""
        for subspace, skyline in self._skylines.items():
            dominated = False
            evicted: List[int] = []
            for other in skyline.values():
                if dominates(other, record, subspace):
                    dominated = True
                    break
                if dominates(record, other, subspace):
                    evicted.append(other.tid)
            if not dominated:
                for tid in evicted:
                    del skyline[tid]
                skyline[record.tid] = record
        self._records.append(record)

    def skyline(self, subspace: int) -> List[Record]:
        """``λ_M(R)`` for bitmask ``subspace``."""
        return list(self._skylines[subspace].values())

    def is_skyline(self, record: Record, subspace: int) -> bool:
        return record.tid in self._skylines[subspace]


class CompressedSkycube:
    """CSC of Xia & Zhang [12] for one fixed context, with incremental
    insertion.

    Internal state per tuple ``u``: the bitset (over subspace masks) of
    subspaces where ``u`` is currently a skyline tuple (``_sky``).  The
    *stored* sets — ``u`` kept only at its minimal skyline subspaces —
    are derived and maintained incrementally, matching the CSC storage
    rule.
    """

    def __init__(self, full_space: int) -> None:
        self.full_space = full_space
        self._subspaces = nonempty_subspaces(full_space)  # big → small
        self._stored: Dict[int, Dict[int, Record]] = {}
        self._sky: Dict[int, int] = {}  # tid → bitset of subspace masks
        self._records: Dict[int, Record] = {}
        self._size = 0
        #: Dominance comparisons performed (read by the C-CSC adaptation).
        self.comparisons = 0

    # ------------------------------------------------------------------
    # Query (the paper's "query algorithm")
    # ------------------------------------------------------------------
    def candidates(self, subspace: int) -> List[Record]:
        """Union of stored sets over all ``M' ⊆ subspace`` — a superset
        of ``λ_M(R)`` by the CSC containment property."""
        seen: Dict[int, Record] = {}
        for sub in iter_submasks(subspace):
            bucket = self._stored.get(sub)
            if bucket:
                seen.update(bucket)
        return list(seen.values())

    def skyline(self, subspace: int) -> List[Record]:
        """``λ_M(R)``: filter the candidate union by dominance within
        ``subspace``."""
        cands = self.candidates(subspace)
        out: List[Record] = []
        for record in cands:
            dominated = False
            for other in cands:
                if other.tid == record.tid:
                    continue
                self.comparisons += 1
                if dominates(other, record, subspace):
                    dominated = True
                    break
            if not dominated:
                out.append(record)
        return out

    def is_skyline(self, record: Record, subspace: int) -> bool:
        """Membership test using the maintained skyline bitset."""
        return bool(self._sky.get(record.tid, 0) & self._subspace_bit(subspace))

    @staticmethod
    def _subspace_bit(subspace: int) -> int:
        return 1 << subspace

    # ------------------------------------------------------------------
    # Update (the paper's "update algorithm")
    # ------------------------------------------------------------------
    def insert(self, record: Record) -> int:
        """Insert ``record``; returns the bitset of subspaces in which it
        is now a skyline tuple.

        For every subspace the current skyline is obtained through the
        compressed storage (candidate union + filter); tuples newly
        dominated by ``record`` lose skyline status there, and storage is
        repaired so each tuple remains stored exactly at its minimal
        skyline subspaces.
        """
        sky_bits = 0
        demoted: List[Tuple[Record, int]] = []  # (tuple, subspace it left)
        for subspace in self._subspaces:
            skyline = self.skyline(subspace)
            dominated = False
            for u in skyline:
                self.comparisons += 1
                if dominates(u, record, subspace):
                    dominated = True
                    break
            if not dominated:
                sky_bits |= self._subspace_bit(subspace)
                for u in skyline:
                    self.comparisons += 1
                    if dominates(record, u, subspace):
                        demoted.append((u, subspace))
        # Commit the new tuple first so repairs see consistent state.
        self._records[record.tid] = record
        self._sky[record.tid] = sky_bits
        for subspace in self._minimal_subspaces(sky_bits):
            self._store(subspace, record)
        for u, subspace in demoted:
            self._demote(u, subspace)
        return sky_bits

    def _minimal_subspaces(self, sky_bits: int) -> Iterator[int]:
        """Subspaces in ``sky_bits`` none of whose proper submasks are in
        ``sky_bits`` — the CSC's minimum subspaces."""
        for subspace in self._subspaces:
            if not sky_bits & self._subspace_bit(subspace):
                continue
            minimal = True
            for sub in iter_submasks(subspace):
                if sub != subspace and sub != 0 and sky_bits & self._subspace_bit(sub):
                    minimal = False
                    break
            if minimal:
                yield subspace

    def _store(self, subspace: int, record: Record) -> None:
        bucket = self._stored.setdefault(subspace, {})
        if record.tid not in bucket:
            bucket[record.tid] = record
            self._size += 1

    def _unstore(self, subspace: int, record: Record) -> None:
        bucket = self._stored.get(subspace)
        if bucket and record.tid in bucket:
            del bucket[record.tid]
            self._size -= 1
            if not bucket:
                del self._stored[subspace]

    def _demote(self, record: Record, subspace: int) -> None:
        """``record`` lost skyline status in ``subspace``: update its sky
        bitset and repair minimal-subspace storage."""
        bits = self._sky.get(record.tid, 0)
        bit = self._subspace_bit(subspace)
        if not bits & bit:
            return
        bits &= ~bit
        self._sky[record.tid] = bits
        was_stored = (
            subspace in self._stored and record.tid in self._stored[subspace]
        )
        if was_stored:
            self._unstore(subspace, record)
            # Supersets that were shadowed by this minimal subspace may
            # now themselves be minimal.
            for sup in self._subspaces:
                if sup == subspace or not bits & self._subspace_bit(sup):
                    continue
                if subspace & ~sup:
                    continue  # not a superset
                minimal = True
                for sub in iter_submasks(sup):
                    if sub not in (sup, 0) and bits & self._subspace_bit(sub):
                        minimal = False
                        break
                if minimal:
                    self._store(sup, record)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def stored_tuple_count(self) -> int:
        """Stored tuple references across all minimum subspaces
        (Fig. 10b's C-CSC series)."""
        return self._size

    def iter_stored(self) -> Iterator[Tuple[int, List[Record]]]:
        for subspace, bucket in self._stored.items():
            yield subspace, list(bucket.values())
