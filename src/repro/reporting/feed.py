"""Streaming news feed of prominent facts (§VII reporting policy).

Wraps any :class:`~repro.core.engine_protocol.Engine` and, per arriving
tuple, emits the *prominent facts* — the facts tied at the highest
prominence in ``S_t``, provided that prominence reaches ``τ`` — as
narrated headlines.  This is the end-to-end pipeline a newsroom would
run (paper §I motivation).  Engines are built through
:func:`repro.api.open_engine`, so a feed can run over a sharded or
windowed composition by passing ``engine=`` (or a full spec).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional

from ..api.facade import open_engine
from ..api.spec import EngineSpec
from ..core.config import DiscoveryConfig
from ..core.engine_protocol import Engine
from ..core.facts import SituationalFact
from ..core.schema import TableSchema
from .narrate import narrate


@dataclass
class Headline:
    """One emitted news item."""

    tuple_index: int
    fact: SituationalFact
    text: str


class NewsFeed:
    """Prominence-thresholded streaming reporter.

    Examples
    --------
    >>> from repro import TableSchema
    >>> schema = TableSchema(("player",), ("points",))
    >>> feed = NewsFeed(schema, tau=2.0)
    >>> _ = feed.push({"player": "A", "points": 10})
    """

    def __init__(
        self,
        schema: TableSchema,
        tau: float = 500.0,
        algorithm: str = "stopdown",
        max_bound_dims: Optional[int] = 3,
        max_measure_dims: Optional[int] = 3,
        engine: Optional[Engine] = None,
    ) -> None:
        self.schema = schema
        if engine is None:
            spec = EngineSpec(
                schema=schema,
                algorithm=algorithm,
                config=DiscoveryConfig(
                    max_bound_dims=max_bound_dims,
                    max_measure_dims=max_measure_dims,
                    tau=tau,
                ),
            )
            engine = open_engine(spec)
        self.engine = engine
        self.headlines: List[Headline] = []
        self._index = 0

    def push(self, row: Mapping[str, object]) -> List[Headline]:
        """Feed one tuple; returns headlines it triggered (often none)."""
        prominent = self.engine.observe(row)
        schema = self.engine.discovery_schema
        emitted = [
            Headline(self._index, fact, narrate(fact, schema))
            for fact in prominent
        ]
        self.headlines.extend(emitted)
        self._index += 1
        return emitted

    def run(self, rows: Iterable[Mapping[str, object]]) -> List[Headline]:
        """Feed a whole stream; returns every headline emitted."""
        for row in rows:
            self.push(row)
        return self.headlines

    def __len__(self) -> int:
        return len(self.headlines)
