"""Streaming news feed of prominent facts (§VII reporting policy).

Wraps a :class:`~repro.core.engine.FactDiscoverer` and, per arriving
tuple, emits the *prominent facts* — the facts tied at the highest
prominence in ``S_t``, provided that prominence reaches ``τ`` — as
narrated headlines.  This is the end-to-end pipeline a newsroom would
run (paper §I motivation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional

from ..core.config import DiscoveryConfig
from ..core.engine import FactDiscoverer
from ..core.facts import SituationalFact
from ..core.schema import TableSchema
from .narrate import narrate


@dataclass
class Headline:
    """One emitted news item."""

    tuple_index: int
    fact: SituationalFact
    text: str


class NewsFeed:
    """Prominence-thresholded streaming reporter.

    Examples
    --------
    >>> from repro import TableSchema
    >>> schema = TableSchema(("player",), ("points",))
    >>> feed = NewsFeed(schema, tau=2.0)
    >>> _ = feed.push({"player": "A", "points": 10})
    """

    def __init__(
        self,
        schema: TableSchema,
        tau: float = 500.0,
        algorithm: str = "stopdown",
        max_bound_dims: Optional[int] = 3,
        max_measure_dims: Optional[int] = 3,
    ) -> None:
        self.schema = schema
        config = DiscoveryConfig(
            max_bound_dims=max_bound_dims,
            max_measure_dims=max_measure_dims,
            tau=tau,
        )
        self.engine = FactDiscoverer(schema, algorithm=algorithm, config=config)
        self.headlines: List[Headline] = []
        self._index = 0

    def push(self, row: Mapping[str, object]) -> List[Headline]:
        """Feed one tuple; returns headlines it triggered (often none)."""
        prominent = self.engine.observe(row)
        emitted = [
            Headline(self._index, fact, narrate(fact, self.schema))
            for fact in prominent
        ]
        self.headlines.extend(emitted)
        self._index += 1
        return emitted

    def run(self, rows: Iterable[Mapping[str, object]]) -> List[Headline]:
        """Feed a whole stream; returns every headline emitted."""
        for row in rows:
            self.push(row)
        return self.headlines

    def __len__(self) -> int:
        return len(self.headlines)
