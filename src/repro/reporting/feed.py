"""Streaming news feed of prominent facts (§VII reporting policy).

Wraps any :class:`~repro.core.engine_protocol.Engine` and, per arriving
tuple, emits the *prominent facts* — the facts tied at the highest
prominence in ``S_t``, provided that prominence reaches ``τ`` — as
narrated headlines.  This is the end-to-end pipeline a newsroom would
run (paper §I motivation).  Engines are built through
:func:`repro.api.open_engine`, so a feed can run over a sharded or
windowed composition by passing ``engine=`` (or a full spec).

Since the feed fan-out tier landed, :class:`NewsFeed` is a thin
composition over :class:`~repro.service.feeds.FeedStore`: every push
folds the arrival's full ``S_t`` into materialized per-segment
standings (exactly the state the HTTP/WebSocket gateway serves), so
:meth:`NewsFeed.feed` answers "current top-k for segment X" without
touching the engine.  The old poll-and-rescan read path —
re-deriving standings from the engine on every read — survives as the
deprecated :meth:`NewsFeed.rescan`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional

from ..api.facade import open_engine
from ..api.spec import EngineSpec, FeedSpec
from ..core.config import DiscoveryConfig
from ..core.engine_protocol import Engine
from ..core.facts import SituationalFact
from ..core.prominence import select_reportable
from ..core.schema import TableSchema
from ..service.feeds import FeedStore
from .narrate import narrate

#: One-shot guard for the poll-and-rescan deprecation warning.
_RESCAN_WARNED = False


@dataclass
class Headline:
    """One emitted news item."""

    tuple_index: int
    fact: SituationalFact
    text: str


class NewsFeed:
    """Prominence-thresholded streaming reporter over materialized feeds.

    Examples
    --------
    >>> from repro import TableSchema
    >>> schema = TableSchema(("player",), ("points",))
    >>> feed = NewsFeed(schema, tau=2.0)
    >>> _ = feed.push({"player": "A", "points": 10})
    """

    def __init__(
        self,
        schema: TableSchema,
        tau: float = 500.0,
        algorithm: str = "stopdown",
        max_bound_dims: Optional[int] = 3,
        max_measure_dims: Optional[int] = 3,
        engine: Optional[Engine] = None,
        feeds: Optional[FeedSpec] = None,
    ) -> None:
        self.schema = schema
        if engine is None:
            spec = EngineSpec(
                schema=schema,
                algorithm=algorithm,
                config=DiscoveryConfig(
                    max_bound_dims=max_bound_dims,
                    max_measure_dims=max_measure_dims,
                    tau=tau,
                ),
            )
            engine = open_engine(spec)
        self.engine = engine
        #: Materialized standings every push folds into; the same state
        #: the service gateway reads.  Window evictions and aggregate
        #: retractions are hooked via ``attach`` and repaired per push.
        self.store = FeedStore.for_engine(engine, feeds)
        self.store.attach(engine)
        self.headlines: List[Headline] = []
        self._index = 0

    def push(self, row: Mapping[str, object]) -> List[Headline]:
        """Feed one tuple; returns headlines it triggered (often none)."""
        factset = self.engine.facts_for(row)
        prominent = select_reportable(factset, self.engine.config)
        self.store.apply_event(factset.record, factset)
        # Fold any retractions the arrival caused (window eviction,
        # aggregate group update) so standings track the live engine.
        self.store.repair(self.engine)
        schema = self.engine.discovery_schema
        emitted = [
            Headline(self._index, fact, narrate(fact, schema))
            for fact in prominent
        ]
        self.headlines.extend(emitted)
        self._index += 1
        return emitted

    def run(self, rows: Iterable[Mapping[str, object]]) -> List[Headline]:
        """Feed a whole stream; returns every headline emitted."""
        for row in rows:
            self.push(row)
        return self.headlines

    # ------------------------------------------------------------------
    # Materialized reads
    # ------------------------------------------------------------------
    def segments(self) -> List[dict]:
        """Summary of the materialized segments (key, version, size)."""
        return self.store.segments()

    def feed(
        self,
        segment: Optional[str] = None,
        top_k: Optional[int] = None,
        tau: Optional[float] = None,
    ) -> List[dict]:
        """Current ranked standings of one segment (default: the global
        ``"*"`` segment), straight from materialized state."""
        if segment is None:
            keys = self.store.segment_keys()
            segment = keys[0] if keys else "*"
        return [
            entry.to_json_dict(self.store.schema)
            for entry in self.store.entries_ranked(segment, top_k=top_k, tau=tau)
        ]

    def rescan(
        self,
        segment: Optional[str] = None,
        top_k: Optional[int] = None,
        tau: Optional[float] = None,
    ) -> List[dict]:
        """Deprecated poll-and-rescan read: recompute the standings from
        the engine instead of trusting the materialized store.

        .. deprecated::
            Reads answered this way re-enumerate every candidate pair of
            every live tuple on *each* call — the cost the feed tier
            exists to amortize.  Use :meth:`feed` (same result, O(1)
            engine work); ``rescan`` remains only as a migration aid and
            warns once per process.
        """
        global _RESCAN_WARNED
        if not _RESCAN_WARNED:
            _RESCAN_WARNED = True
            warnings.warn(
                "NewsFeed.rescan() re-derives feed standings from the "
                "engine on every read; use NewsFeed.feed(), which serves "
                "the identical materialized state",
                DeprecationWarning,
                stacklevel=2,
            )
        self.store.rebuild(self.engine)
        return self.feed(segment, top_k=top_k, tau=tau)

    def __len__(self) -> int:
        return len(self.headlines)
