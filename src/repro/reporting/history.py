"""Historical framing of facts — "the first X since Y" sentences.

The paper's opening example is Elias-style: *"Paul George ... became the
first Pacers player with a 20/10/5 game against the Bulls since Detlef
Schrempf in December 1992."*  Such framing needs one extra query over
history: within the fact's context, when was the last time any tuple
matched-or-beat the new tuple on the fact's measures?

:func:`last_precedent` finds that tuple; :func:`narrate_with_history`
renders the enriched sentence.  A *precedent* is a historical tuple in
the same context that equals or exceeds the new tuple on every measure
of the subspace — exactly the tuples whose absence makes the fact "the
first since ...".
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.facts import SituationalFact
from ..core.record import Record
from ..core.schema import TableSchema
from .narrate import context_phrase, measure_phrase, subject_phrase


def is_precedent(candidate: Record, record: Record, subspace: int) -> bool:
    """True iff ``candidate`` matches or beats ``record`` on every
    measure of ``subspace`` (normalised values)."""
    mask = subspace
    i = 0
    while mask:
        if mask & 1 and candidate.values[i] < record.values[i]:
            return False
        mask >>= 1
        i += 1
    return True


def last_precedent(
    fact: SituationalFact,
    history: Iterable[Record],
    time_attribute: Optional[int] = None,
) -> Optional[Record]:
    """The most recent historical tuple in the fact's context that
    matched-or-beat the fact's tuple on its measure subspace.

    "Most recent" means largest tid (arrival order) unless
    ``time_attribute`` names a dimension index to sort by instead.
    Returns ``None`` when the fact is unprecedented in its context —
    an all-time first.
    """
    record = fact.record
    best: Optional[Record] = None
    for candidate in history:
        if candidate.tid == record.tid:
            continue
        if not fact.constraint.satisfied_by(candidate):
            continue
        if not is_precedent(candidate, record, fact.subspace):
            continue
        if best is None:
            best = candidate
        elif time_attribute is not None:
            if candidate.dims[time_attribute] > best.dims[time_attribute]:
                best = candidate
        elif candidate.tid > best.tid:
            best = candidate
    return best


def narrate_with_history(
    fact: SituationalFact,
    schema: TableSchema,
    history: Iterable[Record],
    entity_attribute: int = 0,
    when_attribute: Optional[int] = None,
) -> str:
    """Narrate ``fact`` with Elias-style historical framing.

    ``entity_attribute``/``when_attribute`` are dimension indexes used
    to describe the precedent ("since <entity> in <when>").
    """
    lead = subject_phrase(fact, schema)
    measures = measure_phrase(fact, schema)
    context = context_phrase(fact, schema)
    precedent = last_precedent(fact, history, when_attribute)
    if precedent is None:
        return (
            f"{lead} recorded {measures} - the first ever among {context}."
        )
    who = precedent.dims[entity_attribute]
    sentence = f"{lead} recorded {measures} - the first among {context}"
    if when_attribute is not None:
        sentence += f" since {who} in {precedent.dims[when_attribute]}"
    else:
        sentence += f" since {who}"
    return sentence + "."
