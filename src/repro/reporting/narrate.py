"""Natural-language narration of situational facts (paper §VIII future
work: "narrating facts in natural-language text").

Turns a scored :class:`~repro.core.facts.SituationalFact` into the kind
of sentence the paper's introduction quotes, e.g.::

    Player0042 put up 54 points - no game with team=TEAM07 among 1,203
    on record matched it (one of 1 skyline performances; prominence 1203).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.facts import SituationalFact
from ..core.schema import TableSchema


def _format_number(value: float) -> str:
    if float(value).is_integer():
        return f"{int(value):,}"
    return f"{value:,.1f}"


def measure_phrase(fact: SituationalFact, schema: TableSchema) -> str:
    """``"21 points, 11 rebounds and 5 assists"``-style phrase."""
    names = schema.measure_names(fact.subspace)
    parts = []
    for name in names:
        idx = schema.measure_index(name)
        parts.append(f"{_format_number(fact.record.raw[idx])} {name}")
    if len(parts) == 1:
        return parts[0]
    return ", ".join(parts[:-1]) + " and " + parts[-1]


def context_phrase(fact: SituationalFact, schema: TableSchema) -> str:
    """``"games with month=Feb and team=Celtics"`` or ``"all records"``."""
    bindings = fact.constraint.to_mapping(schema)
    if not bindings:
        return "all records"
    clauses = [f"{name}={value}" for name, value in bindings.items()]
    return "records with " + " and ".join(clauses)


def subject_phrase(fact: SituationalFact, schema: TableSchema) -> str:
    """Lead entity: the tuple's first dimension value (by convention the
    entity attribute — player, location, ticker — comes first in the
    schema), e.g. ``"Wesley"`` in "Wesley recorded 13 assists"."""
    return str(fact.record.dims[0])


def narrate(fact: SituationalFact, schema: TableSchema) -> str:
    """One-sentence narration of a scored fact."""
    measures = measure_phrase(fact, schema)
    context = context_phrase(fact, schema)
    lead = subject_phrase(fact, schema)
    sentence = f"{lead} recorded {measures} - unbeaten among {context}"
    if fact.context_size is not None:
        sentence += f" ({fact.context_size:,} on record"
        if fact.skyline_size is not None:
            sentence += f"; one of {fact.skyline_size} skyline tuples"
        prom = fact.prominence
        if prom is not None:
            sentence += f"; prominence {prom:,.0f}"
        sentence += ")"
    return sentence + "."


def narrate_all(
    facts: Sequence[SituationalFact],
    schema: TableSchema,
    limit: Optional[int] = None,
) -> str:
    """Narrate a ranked fact list as a bulleted digest."""
    chosen = facts if limit is None else facts[:limit]
    return "\n".join(f"- {narrate(f, schema)}" for f in chosen)
