"""Fact narration and streaming news-feed reporting."""

from .feed import Headline, NewsFeed
from .narrate import context_phrase, measure_phrase, narrate, narrate_all

__all__ = [
    "Headline",
    "NewsFeed",
    "narrate",
    "narrate_all",
    "measure_phrase",
    "context_phrase",
]
