"""Command-line interface: stream CSVs, query contexts, run demos.

Every engine-running subcommand (``discover`` / ``query`` / ``serve``)
shares one spec-style flag set — schema, algorithm, caps, sharding
(``--workers``/``--mode``), ``--window``, ``--no-score`` — or takes a
complete :class:`~repro.api.spec.EngineSpec` JSON via ``--spec``; the
engine composition is always built through
:func:`repro.api.open_engine`, so anything the facade can compose
(sharded, windowed, aggregate, …) is streamable, queryable and servable
from the command line.

Subcommands
-----------
``discover``
    Stream a CSV through the engine and print (optionally narrated)
    prominent facts as they emerge.
``query``
    Load a CSV, then answer a forward contextual-skyline query
    (``"team=Celtics & opp_team=Nets | assists, rebounds"``) — works
    against any composition, including sharded engines.
``demo``
    Stream synthetic NBA box scores and print the news feed (§VII case
    study in one command).
``figures``
    Reproduce one or more of the paper's figures and print the tables.
``serve``
    Run the streaming ingestion service (async micro-batching front-end
    over any engine composition); optionally ingest a CSV and/or listen
    for NDJSON clients on a TCP port.
``ingest``
    Stream a CSV into a running ``serve`` instance over TCP.
``shard-worker``
    Turn this machine into a remote shard-pool member: serve the
    CRC-framed socket worker protocol until shut down (routers place
    shards here via ``--remote`` / ``EngineSpec.sharding.remote``).
``cluster-status``
    Ping every worker of a placement map and print shard → replicas,
    applied rows, replication lag and health in one table.

Examples::

    repro-facts discover games.csv -d player,team -m points,assists --tau 50
    repro-facts discover games.csv --spec engine_spec.json
    repro-facts query games.csv -d player,team -m points,assists \
        -q "team=Celtics | points" --workers 2
    repro-facts demo --tuples 800 --tau 25
    repro-facts figures fig8a fig10b
    repro-facts serve -d player,team -m points,assists --workers 4 --port 7071
    repro-facts serve -d player,team -m points,assists --port 7071 \
        --http-port 8080 --feed-by team --feed-top-k 10
    repro-facts cluster-status --gateway 127.0.0.1:8080
    repro-facts ingest games.csv -d player,team -m points,assists \
        --connect 127.0.0.1:7071 --shutdown
    repro-facts shard-worker --port 7711
    repro-facts discover games.csv -d player,team -m points,assists \
        --remote '{"0": ["10.0.0.5:7711"], "1": ["10.0.0.6:7711"]}'
    repro-facts cluster-status --remote '{"0": ["10.0.0.5:7711"]}'
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .api import (
    CheckpointPolicy,
    EngineSpec,
    FeedSpec,
    ShardingSpec,
    make_sink,
    open_engine,
)
from .core.config import DiscoveryConfig
from .core.schema import MIN, SchemaError, TableSchema


def _split(value: str) -> List[str]:
    return [part.strip() for part in value.split(",") if part.strip()]


def _schema_from_args(args) -> TableSchema:
    preferences = {name: MIN for name in _split(args.min_prefer or "")}
    return TableSchema(_split(args.dimensions), _split(args.measures), preferences)


def _config_from_args(args) -> DiscoveryConfig:
    return DiscoveryConfig(
        max_bound_dims=args.dhat,
        max_measure_dims=args.mhat,
        tau=args.tau,
        top_k=args.top_k,
    )


def _add_schema_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-d", "--dimensions", default=None,
        help="comma-separated dimension attribute names "
             "(required unless --spec is given)",
    )
    parser.add_argument(
        "-m", "--measures", default=None,
        help="comma-separated measure attribute names "
             "(required unless --spec is given)",
    )
    parser.add_argument(
        "--min-prefer", default="",
        help="comma-separated measures where smaller is better",
    )


def _add_discovery_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--algorithm", default="stopdown",
        help="registry name, e.g. stopdown, bottomup, or svec "
             "(vectorized stopdown; fastest at scale)",
    )
    parser.add_argument("--dhat", type=int, default=None,
                        help="max bound dimension attributes (paper d̂)")
    parser.add_argument("--mhat", type=int, default=None,
                        help="max measure-subspace size (paper m̂)")
    parser.add_argument("--tau", type=float, default=None,
                        help="prominence threshold (report prominent facts only)")
    parser.add_argument("--top-k", type=int, default=None)
    parser.add_argument("--workers", type=int, default=0,
                        help="subspace-parallel worker count (0 = single "
                             "unsharded engine; >0 runs svec shards)")
    parser.add_argument("--mode", default="process",
                        choices=("serial", "thread", "process", "remote"),
                        help="worker execution mode (with --workers; "
                             "'remote' needs --remote)")
    parser.add_argument("--remote", default=None, metavar="MAP",
                        help="remote shard placement map: JSON "
                             '{"shard": ["host:port", ...], ...} inline '
                             "or @file; shards run on repro-facts "
                             "shard-worker pool members (implies "
                             "--mode remote)")
    parser.add_argument("--window", type=int, default=None,
                        help="count-based sliding window: keep only the "
                             "most recent N tuples live")
    parser.add_argument("--no-score", action="store_true",
                        help="skip prominence scoring and stream raw facts "
                             "at maximum speed; facts carry no "
                             "context/skyline sizes, and combining this "
                             "with --tau or --top-k is an error (those "
                             "reporting policies need prominence scores "
                             "and would silently report nothing)")
    parser.add_argument("--spec", default=None, metavar="FILE",
                        help="load a complete EngineSpec JSON "
                             "(see docs/api.md); overrides the schema and "
                             "engine flags")


def _load_remote_map(value: Optional[str]) -> Optional[dict]:
    """Parse a ``--remote`` placement map: inline JSON or ``@file``."""
    if not value:
        return None
    import json

    if value.startswith("@"):
        with open(value[1:]) as fh:
            return json.load(fh)
    return json.loads(value)


def _spec_from_args(args) -> EngineSpec:
    """The one place CLI flags become an :class:`EngineSpec`."""
    if getattr(args, "spec", None):
        import json

        with open(args.spec) as fh:
            return EngineSpec.from_dict(json.load(fh))
    if not args.dimensions or not args.measures:
        raise SchemaError(
            "either --spec or both -d/--dimensions and -m/--measures "
            "are required"
        )
    workers = getattr(args, "workers", 0) or 0
    remote = _load_remote_map(getattr(args, "remote", None))
    checkpoint = None
    if getattr(args, "checkpoint", None):
        checkpoint = CheckpointPolicy(
            path=args.checkpoint,
            interval=getattr(args, "checkpoint_interval", None),
            journal_dir=getattr(args, "journal_dir", None),
            journal_fsync=getattr(args, "journal_fsync", None) or "batch",
        )
    elif getattr(args, "journal_dir", None):
        raise ValueError(
            "--journal-dir needs --checkpoint: recovery replays the "
            "journal suffix on top of the latest snapshot"
        )
    if remote:
        sharding = ShardingSpec(
            workers=len(remote), mode="remote", remote=remote
        )
    elif workers > 0:
        sharding = ShardingSpec(workers=workers, mode=args.mode)
    else:
        sharding = None
    feeds = None
    feed_flags = (
        getattr(args, "feed_by", None),
        getattr(args, "feed_top_k", None),
        getattr(args, "feed_tau", None),
        getattr(args, "feed_cap", None),
    )
    if any(flag is not None for flag in feed_flags) or (
        getattr(args, "http_port", None) is not None
    ):
        feeds = FeedSpec(
            group_by=tuple(_split(getattr(args, "feed_by", None) or "")),
            top_k=getattr(args, "feed_top_k", None),
            tau=getattr(args, "feed_tau", None),
            max_entries=getattr(args, "feed_cap", None) or 1024,
        )
    return EngineSpec(
        schema=_schema_from_args(args),
        # Sharded engines always run svec workers; the flag keeps its
        # meaning for the single-engine case.
        algorithm="svec" if sharding is not None else args.algorithm,
        config=_config_from_args(args),
        score=not getattr(args, "no_score", False),
        sharding=sharding,
        window=getattr(args, "window", None),
        checkpoint=checkpoint,
        feeds=feeds,
    )


def _batched(iterable, size: int):
    """Yield lists of up to ``size`` items from ``iterable``."""
    batch = []
    for item in iterable:
        batch.append(item)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch


def _resolve_sink(args, schema):
    """Map the output flags to a registered sink renderer."""
    name = "json" if args.json else "narrate" if getattr(args, "narrate", False) else "describe"
    return name, make_sink(name, schema)


def cmd_discover(args) -> int:
    from .datasets.loader import load_rows

    try:
        spec = _spec_from_args(args)
        engine = open_engine(spec)
    except ValueError as exc:
        # e.g. --no-score with --tau/--top-k: reporting needs prominence.
        print(f"error: {exc}", file=sys.stderr)
        return 2

    with engine:
        # Rows validate against the input schema; facts are stated over
        # the discovery relation (identical except for aggregate specs).
        sink_name, sink = _resolve_sink(args, engine.discovery_schema)

        def emit(index, facts):
            count = 0
            for fact in facts:
                count += 1
                if sink_name == "json":
                    print(sink(fact))
                else:
                    print(f"[{index}] {sink(fact)}")
            return count

        emitted = 0
        index = 0
        rows = load_rows(args.csv, spec.schema)
        if args.batch > 1:
            # Batched ingestion amortises per-call overhead (identical
            # output to row-at-a-time; see Engine.observe_many).
            for chunk in _batched(rows, args.batch):
                for facts in engine.observe_many(chunk):
                    emitted += emit(index, facts)
                    index += 1
        else:
            for row in rows:
                emitted += emit(index, engine.observe(row))
                index += 1
        print(f"# {emitted} facts from {len(engine)} tuples", file=sys.stderr)
    return 0


def cmd_query(args) -> int:
    from dataclasses import replace

    from .datasets.loader import load_rows
    from .query import parse_query

    try:
        spec = _spec_from_args(args)
        # Forward queries compute prominence on demand from the live
        # state — per-arrival scoring (and the reporting policy) would
        # be pure ingest overhead here.
        spec = replace(
            spec,
            score=False,
            config=replace(spec.config, tau=None, top_k=None),
        )
        engine = open_engine(spec)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    with engine:
        schema = engine.discovery_schema
        for chunk in _batched(load_rows(args.csv, spec.schema), 512):
            engine.facts_for_many(chunk)
        queries = engine.query()
        constraint, subspace = parse_query(args.query, schema)
        skyline = queries.skyline(constraint, subspace)
        for record in sorted(skyline, key=lambda r: r.tid):
            print(record.as_dict(schema))
        prominence = queries.prominence(constraint, subspace)
        print(f"# skyline size {len(skyline)}, prominence {prominence}",
              file=sys.stderr)
    return 0


def cmd_demo(args) -> int:
    from .datasets.nba import nba_rows, nba_schema
    from .reporting.feed import NewsFeed

    schema = nba_schema(d=5, m=4)
    feed = NewsFeed(
        schema, tau=args.tau or 25.0, max_bound_dims=3, max_measure_dims=3
    )
    for i, row in enumerate(nba_rows(args.tuples, d=5, m=4)):
        for headline in feed.push(row):
            print(f"[game {i:5d}] {headline.text}")
    print(f"# {len(feed)} prominent facts from {args.tuples} tuples",
          file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    import asyncio
    import json
    import os

    from .datasets.loader import load_rows
    from .metrics.service import ServiceStats
    from .service import StreamServer, recover_engine
    from .service import faults as faults_mod

    try:
        # Chaos/CI hook: REPRO_FAULTS arms the fault-injection registry
        # (forwarded into shard-worker processes via their spawn spec).
        faults_mod.install_from_env()
        spec = _spec_from_args(args)
        policy = spec.checkpoint
        recovery = None
        if policy is not None and (
            os.path.exists(policy.path)
            or (policy.journal_dir and os.path.isdir(policy.journal_dir))
        ):
            # Crash recovery: latest snapshot + journal suffix replay.
            engine, recovery = recover_engine(spec)
        else:
            engine = open_engine(spec)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = ServiceStats()
    if recovery is not None:
        stats.ops_replayed = recovery.ops_replayed
        note = (
            f"# recovered from {recovery.source}: "
            f"{recovery.ops_replayed} journal ops replayed"
        )
        if recovery.torn_tail:
            note += " (torn journal tail dropped)"
        if recovery.replay_errors:
            note += f"; {len(recovery.replay_errors)} ops failed to re-apply"
        print(note, file=sys.stderr, flush=True)
    sink_name, sink = _resolve_sink(args, engine.discovery_schema)

    async def run() -> int:
        # Explicit checkpoint flags win; with a --spec file the spec's
        # checkpoint policy is StreamServer's fallback default.
        server = StreamServer(
            engine,
            queue_limit=args.queue_limit,
            batch_max=args.batch_max,
            batch_window=args.batch_window,
            checkpoint_path=args.checkpoint,
            checkpoint_interval=args.checkpoint_interval,
            journal_dir=getattr(args, "journal_dir", None),
            journal_fsync=getattr(args, "journal_fsync", None),
            dead_letter_path=getattr(args, "dead_letter", None),
            conn_timeout=getattr(args, "conn_timeout", None),
            stats=stats,
        )
        await server.start()
        listener = None
        if args.port is not None:
            listener = await server.serve_tcp(args.host, args.port)
            host, port = listener.sockets[0].getsockname()[:2]
            print(f"listening on {host}:{port}", file=sys.stderr, flush=True)
        gateway = None
        if getattr(args, "http_port", None) is not None:
            if server.feeds is None:
                print(
                    "error: --http-port needs a feeds section (pass "
                    "--feed-by/--feed-top-k or a --spec with feeds)",
                    file=sys.stderr,
                )
                await server.stop()
                engine.close()
                return 2
            from .service.gateway import FeedGateway

            gateway = FeedGateway(server)
            http_listener = await gateway.start(args.host, args.http_port)
            ghost, gport = http_listener.sockets[0].getsockname()[:2]
            print(
                f"gateway listening on {ghost}:{gport}",
                file=sys.stderr,
                flush=True,
            )
        if args.csv:
            # Enqueue ahead of the printer so micro-batches actually
            # coalesce (ingest_wait per row would serialize the queue
            # down to batches of one); the subscription preserves
            # arrival order.
            rows = list(load_rows(args.csv, spec.schema))
            subscription = server.subscribe(only_facts=False)
            producer = asyncio.ensure_future(server.ingest_many(rows))
            # A failed producer closes the subscription so the printer
            # cannot wait forever on events that will never arrive.
            producer.add_done_callback(
                lambda task: subscription.close()
                if not task.cancelled() and task.exception()
                else None
            )
            emitted = 0
            for _ in range(len(rows)):
                try:
                    event = await subscription.__anext__()
                except StopAsyncIteration:
                    break
                for fact in event.facts:
                    emitted += 1
                    if sink_name == "json":
                        print(sink(fact))
                    else:
                        print(f"[{event.tid}] {sink(fact)}")
            await producer
            subscription.close()
            print(
                f"# {emitted} facts from {len(engine)} tuples",
                file=sys.stderr,
            )
        if listener is not None or gateway is not None:
            # Serve until a client sends {"op": "shutdown"} (the TCP
            # front-end; gateway-only servers run until interrupted).
            await server.wait_stopped()
        else:
            await server.stop()
        if gateway is not None:
            await gateway.stop()
        print(
            f"# service stats: {json.dumps(server.stats_snapshot())}",
            file=sys.stderr,
        )
        engine.close()
        return 0

    return asyncio.run(run())


def cmd_ingest(args) -> int:
    import asyncio
    import json

    from .datasets.loader import load_rows

    schema = _schema_from_args(args)
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(f"error: --connect expects HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2

    async def run() -> int:
        reader, writer = await asyncio.open_connection(host, int(port))

        async def call(payload: dict) -> dict:
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            return json.loads(line)

        emitted = rows = 0
        for row in load_rows(args.csv, schema):
            reply = await call({"op": "ingest", "row": row})
            if "error" in reply:
                print(f"error: {reply['error']}", file=sys.stderr)
                return 2
            rows += 1
            for fact in reply["facts"]:
                emitted += 1
                if args.json:
                    print(json.dumps(fact))
        reply = await call({"op": "stats"})
        print(f"# {emitted} facts from {rows} tuples; server stats: "
              f"{json.dumps(reply.get('stats', {}))}", file=sys.stderr)
        if args.shutdown:
            await call({"op": "shutdown"})
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass
        return 0

    try:
        return asyncio.run(run())
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach {args.connect}: {exc}", file=sys.stderr)
        return 2


def cmd_shard_worker(args) -> int:
    from .service.remote import run_worker

    try:
        # run_worker arms REPRO_FAULTS, prints the `listening on
        # host:port` banner to stderr (scripts grep the ephemeral
        # port off it, like `serve`), and blocks until a router sends
        # the shutdown op.
        return run_worker(args.host, args.port)
    except KeyboardInterrupt:
        return 0
    except OSError as exc:
        print(f"error: cannot listen on {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2


def cmd_cluster_status(args) -> int:
    import json

    from .service.cluster import cluster_status

    try:
        if args.remote:
            remote = _load_remote_map(args.remote)
        elif args.spec:
            with open(args.spec) as fh:
                spec = EngineSpec.from_dict(json.load(fh))
            remote = spec.sharding.remote if spec.sharding else None
        else:
            remote = None
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    gateway_stats = None
    gateway_dead = False
    if getattr(args, "gateway", None):
        import asyncio

        from .service.gateway import fetch_json

        ghost, _, gport = args.gateway.rpartition(":")
        if not ghost or not gport.isdigit():
            print(f"error: --gateway expects HOST:PORT, got "
                  f"{args.gateway!r}", file=sys.stderr)
            return 2
        try:
            payload = asyncio.run(
                fetch_json(ghost, int(gport), "/stats",
                           timeout=args.timeout)
            )
            gateway_stats = payload.get("stats", {})
        except (OSError, ValueError, asyncio.TimeoutError) as exc:
            gateway_stats = {"error": str(exc)}
            gateway_dead = True
    if not remote and gateway_stats is None:
        print("error: --remote MAP (or --spec FILE with sharding.remote, "
              "or --gateway HOST:PORT) required", file=sys.stderr)
        return 2
    rows = cluster_status(remote, timeout=args.timeout) if remote else []
    if args.json:
        if gateway_stats is not None:
            print(json.dumps(
                {"replicas": rows, "gateway": gateway_stats}, indent=2
            ))
        else:
            print(json.dumps(rows, indent=2))
    elif not rows:
        pass
    else:
        header = ("shard", "replica", "health", "configured", "rows",
                  "lag", "busy_s", "rtt_ms")
        table = [header]
        for row in rows:
            table.append((
                row["shard"],
                row["replica"],
                "up" if row["alive"] else f"DOWN ({row['error']})",
                "yes" if row["configured"] else "no",
                "-" if row["rows"] is None else str(row["rows"]),
                "-" if row["lag"] is None else str(row["lag"]),
                "-" if row["busy_seconds"] is None
                else f"{row['busy_seconds']:.3f}",
                "-" if row["rtt_ms"] is None else f"{row['rtt_ms']:.2f}",
            ))
        widths = [max(len(str(r[c])) for r in table)
                  for c in range(len(header))]
        for i, row in enumerate(table):
            print("  ".join(str(v).ljust(w) for v, w in zip(row, widths))
                  .rstrip())
            if i == 0:
                print("  ".join("-" * w for w in widths))
    if gateway_stats is not None and not args.json:
        if gateway_dead:
            print(f"# gateway {args.gateway}: DOWN "
                  f"({gateway_stats['error']})", file=sys.stderr)
        else:
            feeds = gateway_stats.get("feeds", {}) or {}
            print(
                f"# gateway {args.gateway}: "
                f"subscribers={gateway_stats.get('gateway_subscribers', 0)} "
                f"frames_sent={gateway_stats.get('gateway_frames_sent', 0)} "
                f"coalesced={gateway_stats.get('gateway_frames_coalesced', 0)} "
                f"dropped={gateway_stats.get('gateway_frames_dropped', 0)} "
                f"segments={feeds.get('segments', 0)} "
                f"entries={feeds.get('entries', 0)} "
                f"lag={feeds.get('lag', 0)}",
                file=sys.stderr,
            )
    dead = sum(1 for row in rows if not row["alive"])
    if rows:
        shards = len({row["shard"] for row in rows})
        print(f"# {shards} shards, {len(rows)} replicas, {dead} unreachable",
              file=sys.stderr)
    return 1 if dead or gateway_dead else 0


def cmd_figures(args) -> int:
    from .experiments.figures import ALL_FIGURES

    for name in args.ids or sorted(ALL_FIGURES):
        fn = ALL_FIGURES.get(name)
        if fn is None:
            print(f"unknown figure {name!r}; options: {sorted(ALL_FIGURES)}",
                  file=sys.stderr)
            return 2
        result = fn(scale=args.scale)
        for fig in result if isinstance(result, tuple) else (result,):
            print(fig.table())
            print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-facts",
        description="Incremental discovery of prominent situational facts",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("discover", help="stream a CSV, print facts")
    p.add_argument("csv")
    _add_schema_options(p)
    _add_discovery_options(p)
    p.add_argument("--narrate", action="store_true")
    p.add_argument("--json", action="store_true",
                   help="emit one JSON object per fact (NDJSON)")
    p.add_argument("--batch", type=int, default=1,
                   help="ingest rows in blocks of this size "
                        "(same output, amortised overhead)")
    p.set_defaults(fn=cmd_discover)

    p = sub.add_parser("query", help="forward contextual-skyline query")
    p.add_argument("csv")
    _add_schema_options(p)
    _add_discovery_options(p)
    p.add_argument("-q", "--query", required=True)
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("demo", help="synthetic NBA news feed")
    p.add_argument("--tuples", type=int, default=800)
    p.add_argument("--tau", type=float, default=25.0)
    p.set_defaults(fn=cmd_demo)

    p = sub.add_parser(
        "serve",
        help="run the sharded streaming ingestion service",
    )
    p.add_argument("csv", nargs="?", default=None,
                   help="optional CSV to stream through the service")
    _add_schema_options(p)
    _add_discovery_options(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="listen for NDJSON clients (0 = ephemeral port, "
                        "printed to stderr); serves until a client sends "
                        "the shutdown op")
    p.add_argument("--queue-limit", type=int, default=1024,
                   help="ingest-queue bound (backpressure threshold)")
    p.add_argument("--batch-max", type=int, default=256,
                   help="micro-batch size cap")
    p.add_argument("--batch-window", type=float, default=0.002,
                   help="seconds to wait for micro-batch stragglers")
    p.add_argument("--checkpoint", default=None,
                   help="periodic snapshot path (see --checkpoint-interval)")
    p.add_argument("--checkpoint-interval", type=float, default=None,
                   help="seconds between snapshot checkpoints")
    p.add_argument("--journal-dir", default=None,
                   help="write-ahead journal directory (crash recovery "
                        "= --checkpoint snapshot + journal replay)")
    p.add_argument("--journal-fsync", default=None,
                   choices=("never", "batch", "always"),
                   help="journal durability policy (default: batch)")
    p.add_argument("--dead-letter", default=None, metavar="FILE",
                   help="NDJSON file receiving quarantined poison rows")
    p.add_argument("--conn-timeout", type=float, default=None,
                   help="per-connection read timeout in seconds for the "
                        "TCP front-end (default: none)")
    p.add_argument("--http-port", type=int, default=None,
                   help="serve the HTTP/WebSocket feed gateway (0 = "
                        "ephemeral port, printed to stderr as `gateway "
                        "listening on host:port`); implies a feeds "
                        "section when the feed flags are absent")
    p.add_argument("--feed-by", default=None, metavar="DIMS",
                   help="comma-separated dimensions to segment the "
                        "materialized feeds by (default: one global "
                        "feed)")
    p.add_argument("--feed-top-k", type=int, default=None,
                   help="default top-k served per feed segment")
    p.add_argument("--feed-tau", type=float, default=None,
                   help="default prominence floor served per segment")
    p.add_argument("--feed-cap", type=int, default=None,
                   help="max materialized entries per segment "
                        "(default: 1024)")
    p.add_argument("--json", action="store_true",
                   help="emit one JSON object per fact (NDJSON)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "ingest", help="stream a CSV into a running serve instance"
    )
    p.add_argument("csv")
    _add_schema_options(p)
    p.add_argument("--connect", required=True, metavar="HOST:PORT")
    p.add_argument("--json", action="store_true",
                   help="print each returned fact as JSON (NDJSON)")
    p.add_argument("--shutdown", action="store_true",
                   help="send the shutdown op after ingesting")
    p.set_defaults(fn=cmd_ingest)

    p = sub.add_parser(
        "shard-worker",
        help="serve one remote shard worker (socket pool member)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (loopback by default; the pickle "
                        "protocol is for trusted networks only)")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = ephemeral, printed to stderr "
                        "as `listening on host:port`)")
    p.set_defaults(fn=cmd_shard_worker)

    p = sub.add_parser(
        "cluster-status",
        help="ping configured shard workers, print replica health",
    )
    p.add_argument("--remote", default=None, metavar="MAP",
                   help='placement map: JSON {"shard": ["host:port", '
                        "...], ...} inline or @file")
    p.add_argument("--spec", default=None, metavar="FILE",
                   help="EngineSpec JSON carrying sharding.remote")
    p.add_argument("--timeout", type=float, default=2.0,
                   help="per-worker probe timeout in seconds")
    p.add_argument("--gateway", default=None, metavar="HOST:PORT",
                   help="also probe a feed gateway's GET /stats and "
                        "print its subscriber/feed counters")
    p.add_argument("--json", action="store_true",
                   help="print the per-replica rows as JSON")
    p.set_defaults(fn=cmd_cluster_status)

    p = sub.add_parser("figures", help="reproduce paper figures")
    p.add_argument("ids", nargs="*")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(fn=cmd_figures)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from .core.schema import SchemaError
    from .query.parser import QueryParseError

    try:
        return args.fn(args)
    except (SchemaError, QueryParseError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: cannot open {exc.filename!r}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
