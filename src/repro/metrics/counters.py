"""Operation counters used by the paper's work-done plots (Fig. 10–11).

Every algorithm and store accepts an optional :class:`OpCounters` sink;
benches read it to report the number of tuple comparisons (Fig. 11a),
traversed constraints (Fig. 11b), stored skyline tuples (Fig. 10b), and
file I/O operations (§VI-C discussion).

Counting convention (scalar *and* vectorized algorithms)
--------------------------------------------------------
``comparisons`` counts *logical* tuple-pair dominance resolutions, not
Python-level calls, so the numbers stay comparable across the ladder:

* scalar algorithms increment once per ``(t, t')`` dominance test at
  each lattice site where the pair is examined (re-examining a stored
  tuple at another constraint counts again, as in the paper's figures);
* vectorized algorithms compute the same resolutions inside one NumPy
  sweep; they credit the counter with the number of pairs the sweep
  resolved *per consuming site* — ``baselinevec`` adds ``n`` per measure
  subspace (mirroring BaselineSeq's per-subspace scan) and ``svec`` adds
  the scanned ``µ`` bucket size at every visited constraint (mirroring
  STopDown exactly).

``traversed_constraints`` counts lattice nodes *visited* across all
measure subspaces (one visit = one count, as in Fig. 11b).  Sharing
algorithms do not count constraints they skip as pruned; the baselines
count the surviving constraints they emit.  A de-vectorisation of the
NumPy paths therefore shows up in wall-clock benches (see
``benchmarks/bench_guard.py``), never as a counter discontinuity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class OpCounters:
    """Mutable tally of algorithm work.

    ``comparisons`` counts *tuple-pair* dominance comparisons;
    ``traversed_constraints`` counts lattice nodes visited across all
    measure subspaces (one visit = one count, as in Fig. 11b).
    """

    comparisons: int = 0
    traversed_constraints: int = 0
    stored_tuples: int = 0
    file_reads: int = 0
    file_writes: int = 0

    def reset(self) -> None:
        """Zero every counter (used between bench measurements)."""
        self.comparisons = 0
        self.traversed_constraints = 0
        self.stored_tuples = 0
        self.file_reads = 0
        self.file_writes = 0

    def snapshot(self) -> Dict[str, int]:
        """Immutable copy for reporting."""
        return {
            "comparisons": self.comparisons,
            "traversed_constraints": self.traversed_constraints,
            "stored_tuples": self.stored_tuples,
            "file_reads": self.file_reads,
            "file_writes": self.file_writes,
        }

    def __add__(self, other: "OpCounters") -> "OpCounters":
        return OpCounters(
            comparisons=self.comparisons + other.comparisons,
            traversed_constraints=self.traversed_constraints + other.traversed_constraints,
            stored_tuples=self.stored_tuples + other.stored_tuples,
            file_reads=self.file_reads + other.file_reads,
            file_writes=self.file_writes + other.file_writes,
        )
