"""Instrumentation: operation counters and memory accounting."""

from .counters import OpCounters
from .memory import approximate_store_bytes

__all__ = ["OpCounters", "approximate_store_bytes"]
