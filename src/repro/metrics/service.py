"""Service-layer metrics: ingest queue, micro-batching, shard balance.

:class:`ServiceStats` is the :class:`~repro.metrics.counters.OpCounters`
counterpart for the serving layer — a mutable tally the
:class:`~repro.service.server.StreamServer` updates on every enqueue and
every micro-batch, cheap enough to live on the hot path.  ``snapshot``
renders the derived signals operators actually watch: mean/max batch
size (is coalescing working?), the queue-depth high-water mark (is
backpressure engaging?), and per-shard busy seconds with their spread
(is the subspace partition balanced?).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ServiceStats:
    """Mutable tally of streaming-service work."""

    #: Rows accepted into the ingest queue.
    enqueued: int = 0
    #: Rows taken through the engine.
    processed_rows: int = 0
    #: Micro-batches executed (``observe_many`` calls).
    batches: int = 0
    #: Largest single micro-batch.
    batch_rows_max: int = 0
    #: Highest observed ingest-queue depth (backpressure indicator).
    queue_depth_max: int = 0
    #: Deletions applied.
    deletes: int = 0
    #: Snapshot checkpoints written.
    checkpoints: int = 0
    #: Reportable facts published to subscribers/clients.
    facts_emitted: int = 0
    #: Cumulative busy seconds per shard (mirrors
    #: :meth:`ShardedDiscoverer.utilization`; empty for unsharded).
    shard_busy_seconds: List[float] = field(default_factory=list)
    #: Per-shard operational breakdown (key counts, busy seconds, queue
    #: depth, placement EWMA, replica membership — mirrors
    #: :meth:`ShardedDiscoverer.shard_stats`; empty for unsharded).
    #: Until this existed, only aggregate counters reached the TCP
    #: ``stats`` op; the PlacementModel and operators read shard-level
    #: load from here.
    shard_details: List[Dict[str, object]] = field(default_factory=list)
    #: Shard-worker processes restarted by the supervisor.
    worker_restarts: int = 0
    #: Ingest chunks re-sent to a restarted/rebuilt worker.
    chunks_retried: int = 0
    #: Remote replicas dropped with a surviving replica promoted.
    replica_failovers: int = 0
    #: Poison rows quarantined to the dead-letter file.
    rows_quarantined: int = 0
    #: Journal ops replayed during crash recovery at startup.
    ops_replayed: int = 0
    #: 1 once the worker pool degraded to in-router serial execution.
    degraded: int = 0
    #: Query-result-cache hits served (engines with ``query_cache``).
    query_cache_hits: int = 0
    #: Query-result-cache misses (fresh or stale-version probes).
    query_cache_misses: int = 0
    #: Query-result-cache entries evicted by the LRU.
    query_cache_evictions: int = 0
    #: Live gateway subscribers (WebSocket connections).
    gateway_subscribers: int = 0
    #: WebSocket frames delivered to subscribers.
    gateway_frames_sent: int = 0
    #: Dirty-segment marks coalesced because the segment was already
    #: pending on a (slow) connection — each is a frame never built.
    gateway_frames_coalesced: int = 0
    #: Pending updates dropped on overflowing connections (each drop
    #: schedules a full resync snapshot instead).
    gateway_frames_dropped: int = 0
    #: HTTP requests answered by the gateway (REST reads).
    gateway_http_requests: int = 0
    #: Feed-store summary (segments/entries/lag/staleness — mirrors
    #: :meth:`repro.service.feeds.FeedStore.stats`; empty without a
    #: feeds spec).
    feeds: Dict[str, object] = field(default_factory=dict)

    def note_enqueue(self, queue_depth: int) -> None:
        self.enqueued += 1
        if queue_depth > self.queue_depth_max:
            self.queue_depth_max = queue_depth

    def note_batch(self, n_rows: int, n_facts: int) -> None:
        self.batches += 1
        self.processed_rows += n_rows
        self.facts_emitted += n_facts
        if n_rows > self.batch_rows_max:
            self.batch_rows_max = n_rows

    def note_shard_utilization(self, busy_seconds: Sequence[float]) -> None:
        self.shard_busy_seconds = list(busy_seconds)

    def note_shard_details(
        self, details: Sequence[Dict[str, object]]
    ) -> None:
        self.shard_details = [dict(entry) for entry in details]

    def note_feeds(self, feed_stats: Dict[str, object]) -> None:
        self.feeds = dict(feed_stats)

    @property
    def mean_batch_rows(self) -> Optional[float]:
        if not self.batches:
            return None
        return self.processed_rows / self.batches

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready copy with the derived signals filled in."""
        busy = self.shard_busy_seconds
        out: Dict[str, object] = {
            "enqueued": self.enqueued,
            "processed_rows": self.processed_rows,
            "batches": self.batches,
            "mean_batch_rows": (
                round(self.mean_batch_rows, 2)
                if self.mean_batch_rows is not None
                else None
            ),
            "batch_rows_max": self.batch_rows_max,
            "queue_depth_max": self.queue_depth_max,
            "deletes": self.deletes,
            "checkpoints": self.checkpoints,
            "facts_emitted": self.facts_emitted,
            "worker_restarts": self.worker_restarts,
            "chunks_retried": self.chunks_retried,
            "replica_failovers": self.replica_failovers,
            "rows_quarantined": self.rows_quarantined,
            "ops_replayed": self.ops_replayed,
            "degraded": self.degraded,
            "query_cache_hits": self.query_cache_hits,
            "query_cache_misses": self.query_cache_misses,
            "query_cache_evictions": self.query_cache_evictions,
            "gateway_subscribers": self.gateway_subscribers,
            "gateway_frames_sent": self.gateway_frames_sent,
            "gateway_frames_coalesced": self.gateway_frames_coalesced,
            "gateway_frames_dropped": self.gateway_frames_dropped,
            "gateway_http_requests": self.gateway_http_requests,
        }
        if self.feeds:
            out["feeds"] = dict(self.feeds)
        if busy:
            total = sum(busy)
            out["shard_busy_seconds"] = [round(b, 4) for b in busy]
            out["shard_utilization"] = [
                round(b / total, 3) if total else 0.0 for b in busy
            ]
        if self.shard_details:
            out["shards"] = [dict(entry) for entry in self.shard_details]
        return out
