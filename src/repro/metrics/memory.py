"""Approximate memory accounting for skyline stores (Fig. 10a).

The paper plots resident JVM heap; the Python analogue we report is the
deep size of the store's containers and records via ``sys.getsizeof``
with memoisation over shared ``Record`` objects (stores hold references,
so a record stored at many pairs is counted once plus one pointer per
extra reference — matching how the JVM heap would behave).
"""

from __future__ import annotations

import sys
from typing import Iterable, Set

_POINTER_BYTES = 8


def record_bytes(record) -> int:
    """Deep size of one :class:`~repro.core.record.Record`."""
    total = sys.getsizeof(record)
    for container in (record.dims, record.values, record.raw):
        total += sys.getsizeof(container)
        for item in container:
            total += sys.getsizeof(item)
    return total


def approximate_store_bytes(entries: Iterable[tuple]) -> int:
    """Approximate bytes held by a store.

    ``entries`` yields ``(key, records)`` pairs.  Each distinct record is
    charged its deep size once; every additional reference costs one
    pointer, as do keys.
    """
    seen: Set[int] = set()
    total = 0
    for key, records in entries:
        total += sys.getsizeof(key) + _POINTER_BYTES
        for record in records:
            total += _POINTER_BYTES
            if id(record) not in seen:
                seen.add(id(record))
                total += record_bytes(record)
    return total
