"""Composable engine middleware: windows, aggregation, query caching.

Each middleware wraps *any* object honouring the
:class:`~repro.core.engine_protocol.Engine` protocol and returns another
one — so a window can sit over an in-proc engine or a sharded service,
and a wrapped engine is still servable by
:class:`~repro.service.server.StreamServer`, checkpointable via snapshot
format v3, and queryable via ``engine.query()``.  The legacy
``repro.extensions`` wrapper classes are thin shims over these layers.

Both layers are registered in :mod:`repro.api.registry` under the spec
field that activates them (``window=N`` / ``aggregate=GroupSpec``);
:func:`~repro.api.facade.open_engine` applies them in registry order.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.engine_protocol import EngineBase, Row
from ..core.facts import FactSet
from ..core.record import Record
from ..core.schema import TableSchema
from ..query.cache import CachedQueryEngine, QueryResultCache
from .registry import register_middleware
from .spec import EngineSpec, GroupSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine_protocol import Engine


class EngineMiddleware(EngineBase):
    """Base wrapper: delegate the whole engine surface to ``inner``.

    Subclasses override the streaming calls they mediate and inherit
    transparent delegation for everything else (schemas, config, table,
    counters, queries, lifecycle).
    """

    kind = "middleware"

    def __init__(self, inner: "Engine", spec: Optional[EngineSpec] = None) -> None:
        self.inner = inner
        self._spec_override = spec
        #: Callbacks fired with the records a layer retracts *internally*
        #: (window evictions, aggregate group updates) — removals that
        #: never surface as server-level delete ops.  The feed tier
        #: (:class:`~repro.service.feeds.FeedStore`) registers here so
        #: its repair pass stays exact under those compositions.
        self._retraction_listeners: List = []

    def add_retraction_listener(self, listener) -> None:
        """Register ``listener(records)`` for internal retractions."""
        self._retraction_listeners.append(listener)

    def _notify_retraction(self, records: List[Record]) -> None:
        if records:
            for listener in self._retraction_listeners:
                listener(records)

    # -- delegated data members -----------------------------------------
    @property
    def schema(self) -> TableSchema:
        return self.inner.schema

    @property
    def discovery_schema(self) -> TableSchema:
        return self.inner.discovery_schema

    @property
    def config(self):
        return self.inner.config

    @property
    def table(self):
        return self.inner.table

    @property
    def counters(self):
        return self.inner.counters

    @property
    def score(self) -> bool:
        return bool(getattr(self.inner, "score", True))

    # -- delegated behaviour --------------------------------------------
    def facts_for(self, row: Row) -> FactSet:
        return self.inner.facts_for(row)

    def facts_for_many(self, rows: Iterable[Row]) -> List[FactSet]:
        return [self.facts_for(row) for row in rows]

    def delete(self, tid: int) -> Record:
        return self.inner.delete(tid)

    def delete_many(self, tids: Iterable[int]) -> List[Record]:
        return self.inner.delete_many(tids)

    def query(self):
        return self.inner.query()

    def stats(self) -> Dict[str, object]:
        out = self.inner.stats()
        out["kind"] = self.kind
        out["inner_kind"] = getattr(self.inner, "kind", "engine")
        return out

    def close(self) -> None:
        self.inner.close()

    def __len__(self) -> int:
        return len(self.inner)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.inner!r})"


class WindowMiddleware(EngineMiddleware):
    """Count-based sliding window over any engine (§VIII deletions).

    Keeps only the ``window`` most recent tuples live: each arrival
    beyond the horizon retracts the oldest first, so every reported fact
    is a statement about the window, not all history.

    Examples
    --------
    >>> from repro import TableSchema
    >>> from repro.api import EngineSpec, open_engine
    >>> spec = EngineSpec(TableSchema(("d",), ("m",)), window=3)
    >>> engine = open_engine(spec)
    >>> for v in (5, 1, 1, 1):
    ...     _ = engine.observe({"d": "x", "m": v})
    >>> len(engine)  # the 5 has slid out
    3
    """

    kind = "windowed"

    def __init__(
        self,
        inner: "Engine",
        window: int,
        spec: Optional[EngineSpec] = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        super().__init__(inner, spec)
        self.window = window
        self._live: Deque[int] = deque()

    def facts_for(self, row: Row) -> FactSet:
        """Discover one arrival; evict the oldest tuple when the window
        overflows (eviction happens *before* discovery so the new tuple
        is compared only against live ones)."""
        inner = self.inner
        if len(self._live) >= self.window:
            evicted = []
            while len(self._live) >= self.window:
                evicted.append(self._live.popleft())
            # One grouped retraction: the inner store compacts (at most)
            # once for the whole eviction burst, not once per tuple.
            self._notify_retraction(inner.delete_many(evicted))
        facts = inner.facts_for(row)
        table = inner.table
        self._live.append(table[len(table) - 1].tid)
        return facts

    def delete(self, tid: int) -> Record:
        """Explicitly retract a live tuple ahead of its eviction."""
        removed = self.inner.delete(tid)
        self._live.remove(tid)
        return removed

    def delete_many(self, tids: Iterable[int]) -> List[Record]:
        """Grouped explicit retraction (window bookkeeping included)."""
        tids = list(tids)
        removed = self.inner.delete_many(tids)
        for tid in tids:
            self._live.remove(tid)
        return removed

    @property
    def live_tids(self) -> List[int]:
        """Arrival ids currently inside the window, oldest first."""
        return list(self._live)

    def stats(self) -> Dict[str, object]:
        out = super().stats()
        out["window"] = self.window
        return out


class _GroupState:
    """Running aggregate state for one group."""

    __slots__ = ("count", "sums", "maxes", "mins")

    def __init__(self, measures: Sequence[str]) -> None:
        self.count = 0
        self.sums: Dict[str, float] = {m: 0.0 for m in measures}
        self.maxes: Dict[str, float] = {}
        self.mins: Dict[str, float] = {}

    def update(self, row: Mapping[str, object], measures: Sequence[str]) -> None:
        self.count += 1
        for m in measures:
            value = float(row[m])  # type: ignore[arg-type]
            self.sums[m] += value
            if m not in self.maxes or value > self.maxes[m]:
                self.maxes[m] = value
            if m not in self.mins or value < self.mins[m]:
                self.mins[m] = value

    def value(self, base: str, fn: str) -> float:
        if fn == "sum":
            return self.sums[base]
        if fn == "max":
            return self.maxes[base]
        if fn == "min":
            return self.mins[base]
        if fn == "count":
            return float(self.count)
        return self.sums[base] / self.count  # avg


class AggregateMiddleware(EngineMiddleware):
    """Fact discovery over running group aggregates (§VIII).

    Folds each base row into its group's running aggregates, retracts
    the group's previous aggregate tuple from the inner engine, and
    observes the fresh one — facts always describe *current* group
    totals.  The input :attr:`schema` is the base-row schema; facts are
    stated over :attr:`discovery_schema` (the aggregate relation).
    """

    kind = "aggregate"

    def __init__(
        self,
        inner: "Engine",
        group: GroupSpec,
        base_schema: Optional[TableSchema] = None,
        spec: Optional[EngineSpec] = None,
        journal: bool = True,
    ) -> None:
        super().__init__(inner, spec)
        self.group = group
        self._base_schema = base_schema or group.base_schema()
        self._base_measures = group.base_measures
        self._groups: Dict[Tuple[object, ...], _GroupState] = {}
        self._live_tid: Dict[Tuple[object, ...], int] = {}
        #: Base rows observed, in order — the snapshot replay journal
        #: (the inner table holds derived aggregates, which must not be
        #: re-aggregated on restore).  O(stream) memory, the same order
        #: a non-aggregate engine's table retains; pass ``journal=False``
        #: to trade snapshot support away on unbounded streams whose
        #: live state is only O(groups).
        self._journal: Optional[List[dict]] = [] if journal else None

    # -- schemas ---------------------------------------------------------
    @property
    def schema(self) -> TableSchema:
        """The *base* row schema (validation gate for ingestion)."""
        return self._base_schema

    @property
    def discovery_schema(self) -> TableSchema:
        return self.inner.schema

    # -- streaming -------------------------------------------------------
    def facts_for(self, row: Row) -> FactSet:
        """Fold one base row into its group and rediscover facts for the
        group's updated aggregate tuple."""
        if isinstance(row, Record):
            row = row.as_dict(self._base_schema)
        key = tuple(row[a] for a in self.group.group_by)
        state = self._groups.get(key)
        if state is None:
            state = _GroupState(self._base_measures)
            self._groups[key] = state
        state.update(row, self._base_measures)

        inner = self.inner
        old_tid = self._live_tid.get(key)
        if old_tid is not None:
            self._notify_retraction([inner.delete(old_tid)])
        agg_row: Dict[str, object] = dict(zip(self.group.group_by, key))
        for name, (base, fn) in self.group.aggregations.items():
            agg_row[name] = state.value(base, fn)
        facts = inner.facts_for(agg_row)
        table = inner.table
        self._live_tid[key] = table[len(table) - 1].tid
        if self._journal is not None:
            self._journal.append({
                a: row[a]
                for a in (*self._base_schema.dimensions,
                          *self._base_schema.measures)
            })
        return facts

    def delete(self, tid: int) -> Record:
        raise RuntimeError(
            "aggregate engines derive deletions from group updates; "
            "retracting one aggregate tuple would desync its running "
            "group state"
        )

    # -- aggregate introspection ----------------------------------------
    def group_count(self) -> int:
        """Number of live groups (= live aggregate tuples)."""
        return len(self._groups)

    def aggregate_row(self, key: Tuple[object, ...]) -> Dict[str, object]:
        """Current aggregate tuple of ``key`` (for inspection)."""
        state = self._groups[key]
        out: Dict[str, object] = dict(zip(self.group.group_by, key))
        for name, (base, fn) in self.group.aggregations.items():
            out[name] = state.value(base, fn)
        return out

    def snapshot_rows(self) -> List[dict]:
        if self._journal is None:
            raise RuntimeError(
                "this aggregate engine was opened with journal=False; "
                "snapshots need the base-row replay journal"
            )
        return list(self._journal)

    def stats(self) -> Dict[str, object]:
        out = super().stats()
        out["groups"] = self.group_count()
        if self._journal is not None:
            out["base_rows"] = len(self._journal)
        return out


class QueryCacheMiddleware(EngineMiddleware):
    """Versioned result cache over any engine's read path (PR 8).

    ``engine.query()`` returns a
    :class:`~repro.query.cache.CachedQueryEngine` memoising skyline /
    skyband / statistics / batch answers against the engine version
    ``(arrivals, deletions)`` — every write bumps the version, so cached
    answers can never go stale (no invalidation hooks, no write-path
    coupling).  One shared :class:`~repro.query.cache.QueryResultCache`
    backs every query engine handed out, so hits accumulate across
    ``query()`` calls and over the TCP ``query`` op.

    Examples
    --------
    >>> from repro import TableSchema
    >>> from repro.api import EngineSpec, open_engine
    >>> spec = EngineSpec(TableSchema(("d",), ("m",)), query_cache=64)
    >>> engine = open_engine(spec)
    >>> _ = engine.observe({"d": "x", "m": 1})
    >>> q = engine.query()
    >>> _ = q.skyline_text("d=x | m"); _ = q.skyline_text("d=x | m")
    >>> engine.query_cache_counters()["hits"]
    1
    """

    kind = "query-cached"

    def __init__(
        self,
        inner: "Engine",
        capacity: int,
        spec: Optional[EngineSpec] = None,
    ) -> None:
        super().__init__(inner, spec)
        self.cache = QueryResultCache(capacity)

    def _cache_version(self) -> Tuple[int, int]:
        """``(arrivals, deletions)`` — mutations strictly increase one
        of the two, so equality proves the state is unchanged."""
        arrivals = self.inner.arrivals
        return arrivals, arrivals - len(self.inner)

    def query(self) -> CachedQueryEngine:
        return CachedQueryEngine(
            self.inner.query(), self.cache, self._cache_version
        )

    def query_cache_counters(self) -> Dict[str, int]:
        """Hit/miss/eviction tallies (picked up by ``ServiceStats``)."""
        return self.cache.snapshot()

    def stats(self) -> Dict[str, object]:
        out = super().stats()
        out["query_cache"] = self.cache.snapshot()
        return out


# ----------------------------------------------------------------------
# Registry wiring (spec field -> layer factory)
# ----------------------------------------------------------------------
def _window_layer(engine: "Engine", spec: EngineSpec) -> WindowMiddleware:
    return WindowMiddleware(engine, spec.window, spec=spec)


def _aggregate_layer(engine: "Engine", spec: EngineSpec) -> AggregateMiddleware:
    return AggregateMiddleware(
        engine, spec.aggregate, base_schema=spec.schema, spec=spec
    )


def _query_cache_layer(engine: "Engine", spec: EngineSpec) -> QueryCacheMiddleware:
    return QueryCacheMiddleware(engine, spec.query_cache, spec=spec)


register_middleware("window", _window_layer)
register_middleware("aggregate", _aggregate_layer)
register_middleware("query_cache", _query_cache_layer)
