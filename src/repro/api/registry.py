"""Extension registries: algorithms, middleware layers, output sinks.

Three small name→factory tables keep the facade open for extension
without touching :func:`~repro.api.facade.open_engine`:

* **algorithms** — the discovery-algorithm registry (shared with
  :mod:`repro.algorithms`); :func:`register_algorithm` adds a custom
  :class:`~repro.algorithms.base.DiscoveryAlgorithm` subclass so
  ``EngineSpec(algorithm="mine")`` resolves it.
* **middleware** — composable engine wrappers keyed by the spec field
  that activates them (``"window"``, ``"aggregate"``; see
  :mod:`repro.api.middleware`).  A middleware factory takes
  ``(inner_engine, spec)`` and returns a wrapped engine.
* **sinks** — fact renderers for streaming output (``"describe"``,
  ``"narrate"``, ``"json"``); the CLI's output flags resolve here, and
  :func:`register_sink` plugs in custom formats.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

#: Middleware factories: spec-field name -> (engine, EngineSpec) -> engine.
MIDDLEWARE: Dict[str, Callable] = {}

#: Order middleware layers are applied in (inner to outer) when their
#: spec field is set.  ``aggregate`` and ``window`` are mutually
#: exclusive today; ``query_cache`` is outermost so cached reads see
#: the fully composed engine (and its version) below them.
MIDDLEWARE_ORDER = ("aggregate", "window", "query_cache")

#: Sink factories: name -> (TableSchema) -> (SituationalFact) -> str.
SINKS: Dict[str, Callable] = {}


# ----------------------------------------------------------------------
# Algorithms (delegates to the repro.algorithms registry)
# ----------------------------------------------------------------------
def algorithm_registry() -> Dict[str, type]:
    """The live name→class algorithm registry."""
    from ..algorithms import ALGORITHMS

    return ALGORITHMS


def register_algorithm(cls, name: Optional[str] = None) -> None:
    """Register a :class:`DiscoveryAlgorithm` subclass under ``name``
    (defaults to ``cls.name``) so specs and the CLI can resolve it."""
    registry = algorithm_registry()
    key = (name or cls.name).lower()
    if not key or key == "abstract":
        raise ValueError("algorithm needs a non-default name")
    registry[key] = cls


# ----------------------------------------------------------------------
# Middleware
# ----------------------------------------------------------------------
def register_middleware(name: str, factory: Callable) -> None:
    """Register an engine-wrapping layer under the spec field ``name``.

    ``factory(engine, spec)`` must return an object honouring the
    :class:`~repro.core.engine_protocol.Engine` protocol.
    """
    MIDDLEWARE[name] = factory


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
def register_sink(name: str, factory: Callable) -> None:
    """Register a fact renderer: ``factory(schema)`` returns a callable
    mapping one :class:`SituationalFact` to an output line."""
    SINKS[name] = factory


def make_sink(name: str, schema):
    """Instantiate the sink registered under ``name`` for ``schema``."""
    try:
        factory = SINKS[name]
    except KeyError:
        raise ValueError(
            f"unknown sink {name!r}; choose from {sorted(SINKS)}"
        ) from None
    return factory(schema)


def _describe_sink(schema):
    return lambda fact: fact.describe(schema)


def _narrate_sink(schema):
    from ..reporting.narrate import narrate

    return lambda fact: narrate(fact, schema)


def _json_sink(schema):
    import json

    return lambda fact: json.dumps(fact.to_json_dict(schema))


register_sink("describe", _describe_sink)
register_sink("narrate", _narrate_sink)
register_sink("json", _json_sink)
