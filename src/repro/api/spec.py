"""Declarative engine specifications.

An :class:`EngineSpec` is a complete, serialisable description of a
discovery engine composition — schema, algorithm, config, scoring,
sharding, windowing, aggregation and checkpoint policy — that
:func:`~repro.api.facade.open_engine` turns into a live
:class:`~repro.core.engine_protocol.Engine`.  Because the spec is plain
data (``to_dict`` / ``from_dict`` round-trip through JSON), the same
object drives the CLI's ``--spec`` flag, snapshot format v3 (any
composition restores from its checkpoint), and programmatic use::

    >>> from repro.api import EngineSpec, open_engine
    >>> from repro import TableSchema
    >>> spec = EngineSpec(TableSchema(("d",), ("m",)), algorithm="stopdown")
    >>> with open_engine(spec) as engine:
    ...     _ = engine.observe({"d": "x", "m": 1})
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from ..core.config import DiscoveryConfig
from ..core.schema import TableSchema

#: Execution modes of the sharded composition.
SHARDING_MODES = ("serial", "thread", "process", "remote")

#: Supported aggregate functions over a base measure.
AGGREGATES = ("sum", "max", "min", "count", "avg")

#: Modes of the columnar store's incremental sweep index.
SWEEP_INDEX_MODES = ("auto", "on", "off")


@dataclass(frozen=True)
class ShardingSpec:
    """Subspace-axis sharding: ``workers`` share-nothing ``svec`` shards
    behind a merging router (see :mod:`repro.service.sharding`).

    Attributes
    ----------
    workers:
        Requested shard count (clamped to the maintained subspace keys).
    mode:
        ``"serial"`` (in-process, deterministic), ``"thread"``,
        ``"process"`` (one OS process per shard — the throughput mode)
        or ``"remote"`` (each shard a replica set of socket workers,
        placed by :attr:`remote` — the multi-machine tier; see
        :mod:`repro.service.cluster`).
    chunk_size:
        Pipelining granularity of batched ingestion (rows per worker
        round-trip).
    supervise:
        Supervise process-mode workers: detect crashes, restart with
        backoff, and rebuild their state deterministically from the
        router's committed op prefix (ignored for serial/thread modes,
        whose workers share the router's fate).
    op_timeout:
        Seconds the router waits on any single worker pipe round-trip
        before treating the worker as hung (and crashing/restarting
        it under supervision).
    max_restarts:
        Circuit breaker: after this many restarts of a single worker
        the pool degrades to serial in-router execution instead of
        restarting forever.
    remote:
        Placement map for ``mode="remote"``: each shard name maps to
        the ``"host:port"`` replica addresses of its socket-worker
        pool (``repro-facts shard-worker`` members), e.g.
        ``{"0": ["10.0.0.5:7711", "10.0.0.6:7711"], "1": [...]}``.
        Shard names that parse as integers order numerically; the
        number of shards must equal :attr:`workers`.  ``None`` for the
        in-process modes.
    """

    workers: int
    mode: str = "serial"
    chunk_size: int = 96
    supervise: bool = True
    op_timeout: float = 60.0
    max_restarts: int = 3
    remote: Optional[Mapping[str, Tuple[str, ...]]] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("sharding.workers must be >= 1")
        if self.mode not in SHARDING_MODES:
            raise ValueError(
                f"sharding.mode must be one of {SHARDING_MODES}, "
                f"got {self.mode!r}"
            )
        if self.chunk_size < 1:
            raise ValueError("sharding.chunk_size must be >= 1")
        if self.op_timeout <= 0:
            raise ValueError("sharding.op_timeout must be > 0 seconds")
        if self.max_restarts < 0:
            raise ValueError("sharding.max_restarts must be >= 0")
        if self.remote is not None:
            remote = {
                str(name): list(addresses)
                for name, addresses in dict(self.remote).items()
            }
            if not remote:
                raise ValueError(
                    "sharding.remote must map at least one shard to replicas"
                )
            for name, addresses in remote.items():
                if not addresses:
                    raise ValueError(
                        f"sharding.remote[{name!r}] needs at least one "
                        "host:port replica"
                    )
                for address in addresses:
                    host, _, port = str(address).rpartition(":")
                    if not host or not port.isdigit():
                        raise ValueError(
                            f"sharding.remote[{name!r}]: {address!r} is "
                            "not 'host:port'"
                        )
            # Normalised plain-data form so asdict/JSON round-trip exactly.
            object.__setattr__(self, "remote", remote)
            if self.mode != "remote":
                raise ValueError(
                    "a sharding.remote placement map requires "
                    f"mode='remote', got {self.mode!r}"
                )
            if self.workers != len(remote):
                raise ValueError(
                    f"sharding.workers ({self.workers}) must equal the "
                    f"number of remote shards ({len(remote)})"
                )
        elif self.mode == "remote":
            raise ValueError(
                "sharding.mode='remote' needs a remote placement map "
                "({shard: [host:port, ...]})"
            )


@dataclass(frozen=True)
class CheckpointPolicy:
    """Where (and how often) an engine snapshots itself.

    ``path`` is the default target of :meth:`Engine.snapshot`;
    ``interval`` (seconds) activates periodic checkpointing when the
    engine runs behind a :class:`~repro.service.server.StreamServer`.

    ``journal_dir`` activates the write-ahead journal
    (:mod:`repro.service.journal`): every accepted ingest/delete is
    framed and appended there before its event is acknowledged, so a
    crash loses nothing past the last commit.  ``journal_fsync`` picks
    the durability/throughput trade-off (``"never"`` / ``"batch"`` /
    ``"always"``) and ``journal_segment_bytes`` the segment-rotation
    threshold.
    """

    path: str
    interval: Optional[float] = None
    journal_dir: Optional[str] = None
    journal_fsync: str = "batch"
    journal_segment_bytes: int = 16 * 1024 * 1024

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("checkpoint.path must be non-empty")
        if self.interval is not None and self.interval <= 0:
            raise ValueError("checkpoint.interval must be > 0 seconds")
        if self.journal_fsync not in ("never", "batch", "always"):
            raise ValueError(
                "checkpoint.journal_fsync must be 'never', 'batch' or "
                f"'always', got {self.journal_fsync!r}"
            )
        if self.journal_segment_bytes < 1024:
            raise ValueError(
                "checkpoint.journal_segment_bytes must be >= 1024"
            )


@dataclass(frozen=True)
class GroupSpec:
    """How to roll base rows up into aggregate tuples (§VIII).

    Attributes
    ----------
    group_by:
        Base dimension attributes identifying a group (they become the
        aggregate relation's dimensions).
    aggregations:
        Mapping ``output_measure_name -> (base_measure, function)`` with
        function one of :data:`AGGREGATES`.
    """

    group_by: Tuple[str, ...]
    aggregations: Mapping[str, Tuple[str, str]]

    def __post_init__(self) -> None:
        if not self.group_by:
            raise ValueError("group_by needs at least one attribute")
        if not self.aggregations:
            raise ValueError("at least one aggregation required")
        for name, (base, fn) in self.aggregations.items():
            if fn not in AGGREGATES:
                raise ValueError(
                    f"aggregation {name!r} uses unknown function {fn!r}; "
                    f"choose from {AGGREGATES}"
                )

    @property
    def base_measures(self) -> Tuple[str, ...]:
        """The distinct base measures consumed, sorted."""
        return tuple(sorted({base for base, _fn in self.aggregations.values()}))

    def discovery_schema(self) -> TableSchema:
        """Schema of the aggregate relation facts are discovered over."""
        return TableSchema(
            dimensions=tuple(self.group_by),
            measures=tuple(self.aggregations),
        )

    def base_schema(self) -> TableSchema:
        """The minimal input-row schema the aggregation consumes."""
        return TableSchema(
            dimensions=tuple(self.group_by), measures=self.base_measures
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "group_by": list(self.group_by),
            "aggregations": {
                name: [base, fn]
                for name, (base, fn) in self.aggregations.items()
            },
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "GroupSpec":
        return cls(
            group_by=tuple(doc["group_by"]),
            aggregations={
                name: (base, fn)
                for name, (base, fn) in dict(doc["aggregations"]).items()
            },
        )


@dataclass(frozen=True)
class FeedSpec:
    """Materialized per-segment feeds over the fact stream (read tier).

    Activates a :class:`~repro.service.feeds.FeedStore` when the engine
    runs behind a :class:`~repro.service.server.StreamServer`: every
    discovered fact is folded into the feed of its *segment* — the
    projection of the fact's constraint onto :attr:`group_by` — so
    subscribers and the HTTP/WebSocket gateway read ranked, current
    standings from materialized state instead of querying the engine.

    Attributes
    ----------
    group_by:
        Dimension attributes of the discovery relation that identify a
        segment.  A fact whose constraint binds ``player=A`` lands in
        segment ``player=A``; one that leaves ``player`` unbound lands
        in ``player=*``.  Empty (the default) keeps a single global
        ``*`` segment.
    top_k:
        Default ranking cut applied when a feed is read (ties at the
        cut kept, matching ``query().batch`` reporting).  ``None``
        returns every entry above :attr:`tau`.
    tau:
        Default prominence floor applied when a feed is read.  Entries
        below ``τ`` stay materialized (a later arrival can lift them
        back over the floor without emitting a fact) — the floor is a
        read-time filter, exactly like the batch planner's.
    split_subspaces:
        Also segment by measure subspace, so e.g. ``player=A`` splits
        into ``player=A,measures=points`` / ``…,measures=rebounds``.
    max_entries:
        Per-segment entry cap (bounded memory).  When a segment
        overflows, its lowest-prominence entries are evicted and the
        segment is marked truncated; reads stay exact as long as the
        cap does not bind.
    """

    group_by: Tuple[str, ...] = ()
    top_k: Optional[int] = None
    tau: Optional[float] = None
    split_subspaces: bool = False
    max_entries: int = 1024

    def __post_init__(self) -> None:
        object.__setattr__(self, "group_by", tuple(self.group_by))
        if self.top_k is not None and self.top_k < 1:
            raise ValueError("feeds.top_k must be >= 1")
        if self.tau is not None and self.tau < 1:
            raise ValueError(
                "feeds.tau is a cardinality ratio; it must be >= 1"
            )
        if self.max_entries < 1:
            raise ValueError("feeds.max_entries must be >= 1")
        if len(set(self.group_by)) != len(self.group_by):
            raise ValueError("feeds.group_by must not repeat attributes")

    def to_dict(self) -> Dict[str, object]:
        return {
            "group_by": list(self.group_by),
            "top_k": self.top_k,
            "tau": self.tau,
            "split_subspaces": self.split_subspaces,
            "max_entries": self.max_entries,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "FeedSpec":
        return cls(
            group_by=tuple(doc.get("group_by") or ()),
            top_k=doc.get("top_k"),
            tau=doc.get("tau"),
            split_subspaces=bool(doc.get("split_subspaces", False)),
            max_entries=int(doc.get("max_entries", 1024)),
        )


@dataclass(frozen=True)
class EngineSpec:
    """One declarative description of any engine composition.

    Attributes
    ----------
    schema:
        Schema of the rows fed to ``observe`` (for aggregate engines:
        the *base* stream; facts then describe the aggregate relation
        derived from :attr:`aggregate`).
    algorithm:
        Registry name (``"stopdown"``, ``"svec"``, …).  Sharded engines
        always run ``"svec"`` workers.
    config:
        ``d̂``/``m̂`` caps, prominence threshold ``τ``, ``top_k``.
    score:
        Annotate facts with context/skyline cardinalities (required by
        ``τ``/``top_k`` reporting).
    sharding:
        Subspace-parallel workers behind a router, or ``None``.
    window:
        Count-based sliding window (most recent N tuples live), or
        ``None``.
    aggregate:
        Discover over running group aggregates of the base stream, or
        ``None``.  Mutually exclusive with :attr:`window` for now.
    checkpoint:
        Default snapshot path / periodic-checkpoint interval, or
        ``None``.
    sweep_index:
        The ``svec`` columnar store's incremental sweep index:
        ``"auto"`` (default — the engine decides; currently enabled
        once a stream is long enough to fold), ``"on"`` (force the
        indexed dominance-partition path) or ``"off"`` (pin the dense
        per-arrival sweep).  Dense and indexed paths produce
        bit-identical facts, scores and op counters; the knob only
        trades index maintenance against per-arrival sweep cost.
    query_cache:
        Capacity (entries) of the versioned query-result cache wrapped
        around ``engine.query()``, or ``None`` for no caching.  Cached
        answers are keyed by the engine version ``(arrivals,
        deletions)``, so any write invalidates them automatically —
        see :class:`~repro.api.middleware.QueryCacheMiddleware`.
    feeds:
        Materialized per-segment read feeds (:class:`FeedSpec`), or
        ``None``.  Activated by :class:`~repro.service.server.
        StreamServer` / the ``serve`` CLI: the feed store tier and the
        HTTP/WebSocket gateway read from it.
    """

    schema: TableSchema
    algorithm: str = "stopdown"
    config: DiscoveryConfig = field(default_factory=DiscoveryConfig)
    score: bool = True
    sharding: Optional[ShardingSpec] = None
    window: Optional[int] = None
    aggregate: Optional[GroupSpec] = None
    checkpoint: Optional[CheckpointPolicy] = None
    sweep_index: str = "auto"
    query_cache: Optional[int] = None
    feeds: Optional[FeedSpec] = None

    def __post_init__(self) -> None:
        if not isinstance(self.algorithm, str):
            raise ValueError(
                "EngineSpec.algorithm must be a registry name; pass "
                "pre-built algorithm instances to FactDiscoverer directly"
            )
        if self.sharding is not None and self.algorithm != "svec":
            raise ValueError(
                "sharded engines run the 'svec' algorithm on every "
                f"worker; set algorithm='svec' (got {self.algorithm!r})"
            )
        if self.sweep_index not in SWEEP_INDEX_MODES:
            raise ValueError(
                f"sweep_index must be one of {SWEEP_INDEX_MODES}, "
                f"got {self.sweep_index!r}"
            )
        if self.sweep_index != "auto" and self.algorithm != "svec":
            raise ValueError(
                "sweep_index is a property of the 'svec' columnar store; "
                f"algorithm {self.algorithm!r} has no sweep to index "
                "(leave it 'auto')"
            )
        if self.window is not None and self.window < 1:
            raise ValueError("window must be >= 1")
        if self.query_cache is not None and self.query_cache < 1:
            raise ValueError("query_cache capacity must be >= 1")
        if self.window is not None and self.aggregate is not None:
            raise ValueError(
                "window + aggregate composition is not supported yet: "
                "a windowed inner engine would evict aggregate tuples "
                "the aggregation layer still tracks"
            )
        if not self.score and (
            self.config.tau is not None or self.config.top_k is not None
        ):
            raise ValueError(
                "tau/top_k reporting needs prominence scores; "
                "score=False would silently report nothing"
            )
        if self.aggregate is not None:
            dims = set(self.schema.dimensions)
            meas = set(self.schema.measures)
            missing_d = [a for a in self.aggregate.group_by if a not in dims]
            missing_m = [
                m for m in self.aggregate.base_measures if m not in meas
            ]
            if missing_d or missing_m:
                raise ValueError(
                    "aggregate spec references attributes missing from "
                    f"the base schema: dimensions {missing_d}, "
                    f"measures {missing_m}"
                )
        if self.feeds is not None:
            if not self.score:
                raise ValueError(
                    "feeds rank entries by prominence; score=False "
                    "would materialize nothing (drop feeds or enable "
                    "scoring)"
                )
            # Feeds segment the discovery relation (which differs from
            # the input schema only for aggregate engines).
            discovery_dims = (
                self.aggregate.group_by
                if self.aggregate is not None
                else self.schema.dimensions
            )
            missing = [
                a for a in self.feeds.group_by if a not in discovery_dims
            ]
            if missing:
                raise ValueError(
                    "feeds.group_by references dimensions missing from "
                    f"the discovery relation: {missing}"
                )

    # ------------------------------------------------------------------
    # Serialisation (snapshot v3, CLI --spec)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-data rendering; ``from_dict`` inverts it exactly."""
        return {
            "schema": {
                "dimensions": list(self.schema.dimensions),
                "measures": list(self.schema.measures),
                "preferences": dict(self.schema.preferences),
            },
            "algorithm": self.algorithm,
            "config": asdict(self.config),
            "score": self.score,
            "sharding": asdict(self.sharding) if self.sharding else None,
            "window": self.window,
            "aggregate": self.aggregate.to_dict() if self.aggregate else None,
            "checkpoint": asdict(self.checkpoint) if self.checkpoint else None,
            "sweep_index": self.sweep_index,
            "query_cache": self.query_cache,
            "feeds": self.feeds.to_dict() if self.feeds else None,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "EngineSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written
        JSON; absent optional fields default)."""
        schema_doc = doc["schema"]
        schema = TableSchema(
            dimensions=tuple(schema_doc["dimensions"]),
            measures=tuple(schema_doc["measures"]),
            preferences=dict(schema_doc.get("preferences") or {}),
        )
        sharding = doc.get("sharding")
        aggregate = doc.get("aggregate")
        checkpoint = doc.get("checkpoint")
        feeds = doc.get("feeds")
        return cls(
            schema=schema,
            algorithm=doc.get("algorithm", "stopdown"),
            config=DiscoveryConfig(**(doc.get("config") or {})),
            score=bool(doc.get("score", True)),
            sharding=ShardingSpec(**sharding) if sharding else None,
            window=doc.get("window"),
            aggregate=GroupSpec.from_dict(aggregate) if aggregate else None,
            checkpoint=CheckpointPolicy(**checkpoint) if checkpoint else None,
            sweep_index=doc.get("sweep_index", "auto"),
            query_cache=doc.get("query_cache"),
            feeds=FeedSpec.from_dict(feeds) if feeds else None,
        )

    def with_score(self, score: Optional[bool]) -> "EngineSpec":
        """A copy with ``score`` overridden (``None`` keeps the spec's)."""
        if score is None or score == self.score:
            return self
        return replace(self, score=score)
