"""repro.api — the declarative engine facade.

One stable contract over every discovery composition::

    from repro import TableSchema
    from repro.api import EngineSpec, ShardingSpec, open_engine

    spec = EngineSpec(
        schema=TableSchema(("player", "team"), ("points", "assists")),
        algorithm="svec",
        sharding=ShardingSpec(workers=4, mode="process"),
    )
    with open_engine(spec) as engine:
        engine.observe_many(rows)
        skyline = engine.query().skyline_text("team=Celtics | points")
        engine.snapshot("checkpoint.json")

Every engine — in-proc, sharded, windowed, aggregate, or restored from a
snapshot — honours the same :class:`Engine` protocol (see
:mod:`repro.core.engine_protocol` and ``docs/api.md``).
"""

from ..core.engine_protocol import Engine, EngineBase
from .facade import open_engine, restore
from .middleware import (
    AggregateMiddleware,
    EngineMiddleware,
    QueryCacheMiddleware,
    WindowMiddleware,
)
from .registry import (
    MIDDLEWARE,
    SINKS,
    algorithm_registry,
    make_sink,
    register_algorithm,
    register_middleware,
    register_sink,
)
from .spec import (
    AGGREGATES,
    SWEEP_INDEX_MODES,
    CheckpointPolicy,
    EngineSpec,
    FeedSpec,
    GroupSpec,
    ShardingSpec,
)

__all__ = [
    "Engine",
    "EngineBase",
    "EngineSpec",
    "FeedSpec",
    "ShardingSpec",
    "CheckpointPolicy",
    "GroupSpec",
    "AGGREGATES",
    "SWEEP_INDEX_MODES",
    "open_engine",
    "restore",
    "EngineMiddleware",
    "WindowMiddleware",
    "AggregateMiddleware",
    "QueryCacheMiddleware",
    "MIDDLEWARE",
    "SINKS",
    "algorithm_registry",
    "register_algorithm",
    "register_middleware",
    "register_sink",
    "make_sink",
]
