"""``open_engine`` — one constructor for every engine composition.

Builds the base engine a spec names (in-proc
:class:`~repro.core.engine.FactDiscoverer` or sharded
:class:`~repro.service.sharding.ShardedDiscoverer`), then applies the
registered middleware layers the spec activates (aggregation, window).
The result honours the :class:`~repro.core.engine_protocol.Engine`
protocol whatever the composition, so serving, checkpointing, querying
and reporting code is written once against that contract.
"""

from __future__ import annotations

from typing import Mapping, Union

from ..core.engine_protocol import Engine
from .registry import MIDDLEWARE, MIDDLEWARE_ORDER
from .spec import EngineSpec


def open_engine(spec: Union[EngineSpec, Mapping[str, object]]) -> Engine:
    """Open the engine composition described by ``spec``.

    Accepts an :class:`EngineSpec` or its ``to_dict`` / JSON form.  The
    returned engine is a context manager; ``close()`` releases any
    worker processes.

    >>> from repro import TableSchema
    >>> from repro.api import EngineSpec, open_engine
    >>> spec = EngineSpec(TableSchema(("d",), ("m",)))
    >>> with open_engine(spec) as engine:
    ...     len(engine.observe({"d": "x", "m": 1})) > 0
    True
    """
    if not isinstance(spec, EngineSpec):
        spec = EngineSpec.from_dict(spec)
    base = engine = _base_engine(spec)
    try:
        for name in MIDDLEWARE_ORDER:
            if getattr(spec, name, None) is not None:
                engine = MIDDLEWARE[name](engine, spec)
    except Exception:
        engine.close()
        raise
    if engine is base:
        # No middleware: the opening spec (checkpoint policy and all) is
        # authoritative over the engine's attribute-derived one.
        engine._spec_override = spec
    return engine


def _base_engine(spec: EngineSpec) -> Engine:
    """The innermost engine: sharded service or single discoverer."""
    if spec.sharding is not None:
        from ..service.sharding import ShardedDiscoverer

        return ShardedDiscoverer(
            _inner_schema(spec),
            spec.config,
            n_workers=spec.sharding.workers,
            mode=spec.sharding.mode,
            score=spec.score,
            chunk_size=spec.sharding.chunk_size,
            supervise=spec.sharding.supervise,
            op_timeout=spec.sharding.op_timeout,
            max_restarts=spec.sharding.max_restarts,
            sweep_index=spec.sweep_index,
            remote=spec.sharding.remote,
        )
    from ..core.engine import FactDiscoverer

    # The sweep-index knob is an svec-store property; other algorithms
    # don't accept the kwarg (the spec validates non-"auto" values).
    extra = {"sweep_index": spec.sweep_index} if spec.algorithm == "svec" else {}
    return FactDiscoverer(
        _inner_schema(spec),
        algorithm=spec.algorithm,
        config=spec.config,
        score=spec.score,
        **extra,
    )


def _inner_schema(spec: EngineSpec):
    """Schema the base engine discovers over: the aggregate relation
    when aggregation is layered on, the input schema otherwise."""
    if spec.aggregate is not None:
        return spec.aggregate.discovery_schema()
    return spec.schema


def restore(path: str, score=None) -> Engine:
    """Reopen an engine from a snapshot file (any readable format
    version; v3 snapshots restore the full composition from their
    embedded spec).  ``score`` overrides the persisted flag when given.
    """
    from ..extensions.snapshot import load_engine

    return load_engine(path, score=score)
