"""Dict-backed skyline store — the paper's memory-based implementation."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..core.constraint import Constraint
from ..core.record import Record
from ..metrics.memory import approximate_store_bytes
from .base import PairKey, SkylineStore


class MemorySkylineStore(SkylineStore):
    """``µ_{C,M}`` as a dict of dicts.

    Inner maps are keyed by tid so insert/delete/contains are O(1);
    :meth:`get` returns a list copy, so algorithms may mutate the store
    while iterating over a previously-fetched snapshot (both BottomUp and
    TopDown delete during their scan of ``µ_{C,M}``).
    """

    def __init__(self, counters=None) -> None:
        super().__init__(counters)
        self._pairs: Dict[PairKey, Dict[int, Record]] = {}
        self._total = 0

    _EMPTY: tuple = ()

    def get(self, constraint: Constraint, subspace: int) -> List[Record]:
        bucket = self._pairs.get((constraint, subspace))
        # The empty case dominates lattice sweeps; a shared immutable
        # empty avoids one allocation per visited pair.
        return list(bucket.values()) if bucket else self._EMPTY  # type: ignore[return-value]

    def insert(self, constraint: Constraint, subspace: int, record: Record) -> None:
        bucket = self._pairs.setdefault((constraint, subspace), {})
        if record.tid not in bucket:
            bucket[record.tid] = record
            self._total += 1
            self.counters.stored_tuples = self._total

    def delete(self, constraint: Constraint, subspace: int, record: Record) -> None:
        key = (constraint, subspace)
        bucket = self._pairs.get(key)
        if bucket and record.tid in bucket:
            del bucket[record.tid]
            self._total -= 1
            self.counters.stored_tuples = self._total
            if not bucket:
                del self._pairs[key]

    def contains(self, constraint: Constraint, subspace: int, record: Record) -> bool:
        bucket = self._pairs.get((constraint, subspace))
        return bool(bucket) and record.tid in bucket

    def iter_pairs(self) -> Iterator[Tuple[PairKey, List[Record]]]:
        for key, bucket in self._pairs.items():
            yield key, list(bucket.values())

    def stored_tuple_count(self) -> int:
        return self._total

    def approx_bytes(self) -> int:
        return approximate_store_bytes(self.iter_pairs())

    def clear(self) -> None:
        self._pairs.clear()
        self._total = 0
        self.counters.stored_tuples = 0
