"""Fixed-width binary codec for tuples in per-pair files (§VI-C).

Each ``µ_{C,M}`` file holds a little-endian header (record count) followed
by fixed-width records: ``tid`` (int64), one int32 per dimension (values
interned through a :class:`DimensionInterner`), and one float64 per raw
measure.  Fixed width keeps files tiny and lets a whole pair be read into
a buffer with a single ``read()``, exactly as the paper's file-based
implementation does.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Sequence

from ..core.record import Record
from ..core.schema import TableSchema

_HEADER = struct.Struct("<I")


class DimensionInterner:
    """Bidirectional mapping of dimension values to dense int32 ids.

    Dimension values are arbitrary hashables in memory; on disk they are
    int32 ids.  The interner lives alongside the file store for the
    store's lifetime (the paper's files likewise presume an in-process
    catalog).
    """

    def __init__(self) -> None:
        self._to_id: Dict[object, int] = {}
        self._to_value: List[object] = []

    def intern(self, value: object) -> int:
        """Id for ``value``, assigning the next dense id when new."""
        existing = self._to_id.get(value)
        if existing is not None:
            return existing
        new_id = len(self._to_value)
        self._to_id[value] = new_id
        self._to_value.append(value)
        return new_id

    def lookup(self, value_id: int) -> object:
        """Value for ``value_id``; raises ``IndexError`` when unknown."""
        return self._to_value[value_id]

    def __len__(self) -> int:
        return len(self._to_value)


class RecordCodec:
    """Encode/decode :class:`Record` lists for one schema."""

    def __init__(self, schema: TableSchema, interner: DimensionInterner) -> None:
        self.schema = schema
        self.interner = interner
        self._signs = schema.measure_signs()
        self._record_struct = struct.Struct(
            "<q" + "i" * schema.n_dimensions + "d" * schema.n_measures
        )

    @property
    def record_size(self) -> int:
        """Bytes per encoded record."""
        return self._record_struct.size

    def encode(self, records: Sequence[Record]) -> bytes:
        """Serialise ``records`` to one buffer (header + fixed records)."""
        parts = [_HEADER.pack(len(records))]
        for record in records:
            dim_ids = tuple(self.interner.intern(v) for v in record.dims)
            parts.append(self._record_struct.pack(record.tid, *dim_ids, *record.raw))
        return b"".join(parts)

    def decode(self, buffer: bytes) -> List[Record]:
        """Inverse of :meth:`encode`; normalised values are rebuilt from
        raw measures via the schema's preference signs."""
        if len(buffer) < _HEADER.size:
            raise ValueError("truncated µ file: missing header")
        (count,) = _HEADER.unpack_from(buffer, 0)
        expected = _HEADER.size + count * self._record_struct.size
        if len(buffer) != expected:
            raise ValueError(
                f"corrupt µ file: expected {expected} bytes, got {len(buffer)}"
            )
        n_dim = self.schema.n_dimensions
        records: List[Record] = []
        offset = _HEADER.size
        for _ in range(count):
            fields = self._record_struct.unpack_from(buffer, offset)
            offset += self._record_struct.size
            tid = fields[0]
            dims = tuple(self.interner.lookup(i) for i in fields[1 : 1 + n_dim])
            raw = tuple(fields[1 + n_dim :])
            values = tuple(s * v for s, v in zip(self._signs, raw))
            records.append(Record(tid, dims, values, raw))
        return records
