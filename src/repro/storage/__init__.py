"""Skyline stores: in-memory (§VI-B), file-based (§VI-C), and columnar
(NumPy-backed, this repo's extension) ``µ_{C,M}``."""

from .base import PairKey, SkylineStore
from .codec import DimensionInterner, RecordCodec
from .columnar_store import ColumnarSkylineStore, grow_2d
from .file_store import FileSkylineStore
from .memory_store import MemorySkylineStore
from .sweep_index import SweepIndex

__all__ = [
    "PairKey",
    "SkylineStore",
    "MemorySkylineStore",
    "FileSkylineStore",
    "ColumnarSkylineStore",
    "SweepIndex",
    "RecordCodec",
    "DimensionInterner",
    "grow_2d",
]
