"""Skyline stores: in-memory (§VI-B) and file-based (§VI-C) ``µ_{C,M}``."""

from .base import PairKey, SkylineStore
from .codec import DimensionInterner, RecordCodec
from .file_store import FileSkylineStore
from .memory_store import MemorySkylineStore

__all__ = [
    "PairKey",
    "SkylineStore",
    "MemorySkylineStore",
    "FileSkylineStore",
    "RecordCodec",
    "DimensionInterner",
]
