"""Columnar skyline store — NumPy-backed ``µ_{C,M}`` spaces.

:class:`MemorySkylineStore` keeps Python ``Record`` lists per pair, which
forces every dominance check into tuple-at-a-time Python.  This module
stores the *data* once, column-wise —

* one interned ``int32`` column per dimension attribute,
* one ``float64`` column per measure attribute,

— and keeps per-``(C, M)`` membership as row-index sets.  Vectorized
algorithms (:class:`~repro.algorithms.s_vectorized.SVectorized`) then
answer "does anything stored at ``(C, M)`` dominate ``t``?" with one
NumPy gather over the membership rows instead of a Python loop, while
the full :class:`~repro.storage.base.SkylineStore` interface stays
intact for the scalar algorithms, the retraction repair and the query
engine (``get`` returns the original ``Record`` objects, which the store
retains by reference alongside the columns).

The column layout is inferred lazily from the first registered record,
so ``ColumnarSkylineStore()`` is a drop-in replacement for
``MemorySkylineStore()`` wherever one is constructed without a schema.

Examples
--------
>>> from repro.core.constraint import Constraint
>>> from repro.core.record import Record
>>> store = ColumnarSkylineStore()
>>> store.insert(Constraint(("a",)), 0b1, Record(0, ("a",), (1.0,), (1.0,)))
>>> [r.tid for r in store.get(Constraint(("a",)), 0b1)]
[0]
>>> store.n_rows, store.stored_tuple_count()
(1, 1)
"""

from __future__ import annotations

import sys
from collections import defaultdict
from contextlib import contextmanager
from operator import itemgetter
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.constraint import Constraint
from ..core.lattice import supermask_closure_table
from ..core.record import Record
from .base import PairKey, SkylineStore
from .sweep_index import SweepIndex

_INITIAL_CAPACITY = 256
_POINTER_BYTES = 8

#: The scoring index works the 2^n constraint-mask lattice: every
#: insert/delete flips up to 2^n masks per subspace, and the index can
#: hold one entry per (subspace, mask, value-combination).  Discovery
#: itself already scales with 2^n per arrival, so the index is never
#: the *first* bottleneck, but its memory footprint grows faster on
#: high-cardinality dimensions — cap the dimensionality and fall back
#: to the scalar Invariant-2 sweep for wider schemas.
_MAX_INDEXED_DIMENSIONS = 8

#: The per-row anchor *bitsets* (one element per (row, subspace), bit m
#: set iff the row is anchored at constraint mask ``m`` there) need the
#: whole 2^n mask lattice to fit a non-negative integer element, so
#: they are maintained only up to 5 dimension attributes (2^5 = 32
#: bits).  Up to 4 dimensions the 16-bit lattice fits ``int32`` — half
#: the sweep bandwidth; 5 dimensions take ``int64``.  Wider schemas
#: keep the set-based reverse index; the bitset lattice walker falls
#: back to the scalar pass.
_MAX_BITSET_DIMENSIONS = 5


def lattice_bitset_dtype(n_dimensions: int):
    """Smallest safe NumPy dtype for bitsets over the ``2^n`` constraint
    -mask lattice (``None`` beyond the maintained cap)."""
    if n_dimensions > _MAX_BITSET_DIMENSIONS:
        return None
    return np.int32 if n_dimensions <= 4 else np.int64

#: Deferred-compaction policy for tombstoned rows: compact once more
#: than this many rows are dead *and* they outnumber a quarter of the
#: column length.  Keeps retraction O(1) amortised without letting a
#: deletion-heavy stream grow the columns unboundedly.
_COMPACT_MIN_DEAD = 64
_COMPACT_DEAD_FRACTION = 4

#: Shared empty row-index array returned for pairs that hold nothing.
_EMPTY_ROWS = np.empty(0, dtype=np.int64)

_EMPTY_KEY: tuple = ()


def _key_builder(positions: Tuple[int, ...]):
    """``dims → tuple(dims at positions)`` at C speed (itemgetter)."""
    if not positions:
        return lambda dims: _EMPTY_KEY
    if len(positions) == 1:
        j = positions[0]
        return lambda dims: (dims[j],)
    return itemgetter(*positions)


def grow_zeroed_1d(array: np.ndarray, min_rows: int) -> np.ndarray:
    """Grow a 1-D array geometrically, zero-filling the new region.

    Anchor-bitset columns need their unused tail zeroed (a row with no
    anchors must read as the empty bitset), unlike the measure columns
    where every row is written before it is read.

    >>> grow_zeroed_1d(np.ones(2, dtype=np.int64), 5).tolist()
    [1, 1, 0, 0, 0, 0, 0, 0]
    >>> a = np.ones(4, dtype=np.int64)
    >>> grow_zeroed_1d(a, 3) is a
    True
    """
    capacity = array.shape[0]
    if capacity >= min_rows:
        return array
    new_capacity = max(capacity, 1)
    while new_capacity < min_rows:
        new_capacity *= 2
    out = np.zeros(new_capacity, dtype=array.dtype)
    out[:capacity] = array
    return out


def grow_2d(array: np.ndarray, size: int, min_rows: Optional[int] = None) -> np.ndarray:
    """Grow a 2-D array geometrically to hold at least ``min_rows`` rows.

    Returns ``array`` itself when it is already large enough; otherwise a
    new array with doubled-until-sufficient capacity whose first ``size``
    rows are copied over (the rest is uninitialised).  ``min_rows``
    defaults to ``size + 1`` — "make room for one more append".

    >>> a = np.zeros((2, 3))
    >>> grow_2d(a, 2).shape
    (4, 3)
    >>> grow_2d(a, 2, min_rows=100).shape
    (128, 3)
    >>> grow_2d(a, 1) is a
    True
    """
    needed = size + 1 if min_rows is None else min_rows
    capacity = array.shape[0]
    if capacity >= needed:
        return array
    new_capacity = max(capacity, 1)
    while new_capacity < needed:
        new_capacity *= 2
    out = np.empty((new_capacity,) + array.shape[1:], dtype=array.dtype)
    out[:size] = array[:size]
    return out


class ColumnInterner:
    """Per-column ``value → int32`` id tables for dimension matrices.

    The file codec's :class:`~repro.storage.codec.DimensionInterner` is
    a single bidirectional catalog; columnar math wants one dense id
    space *per column* (ids double as equality classes inside that
    column) and no reverse lookup.  Shared by the columnar store and
    the vectorized baseline.
    """

    __slots__ = ("_tables",)

    def __init__(self, n_columns: int) -> None:
        self._tables: List[Dict[object, int]] = [{} for _ in range(n_columns)]

    def intern_row(self, values) -> np.ndarray:
        """Interned ids for one row of column values (new values get
        fresh ids in their column)."""
        out = np.empty(len(self._tables), dtype=np.int32)
        for i, value in enumerate(values):
            table = self._tables[i]
            vid = table.get(value)
            if vid is None:
                vid = len(table)
                table[value] = vid
            out[i] = vid
        return out


class ColumnarSkylineStore(SkylineStore):
    """``µ_{C,M}`` with columnar record storage and row-index membership.

    Every record the store ever sees is *registered* once: its dimension
    values are interned to ``int32`` ids and its normalised measures are
    appended to the column arrays, yielding a stable row index.  Pair
    membership is a ``tid → row`` insertion-ordered dict, so the scalar
    API (``get``/``insert``/``delete``/``contains``) stays O(1) per
    operation while :meth:`rows` hands vectorized callers the membership
    as an index array into :meth:`values_matrix` / :meth:`dims_matrix`.
    """

    def __init__(
        self,
        counters=None,
        n_dimensions: Optional[int] = None,
        n_measures: Optional[int] = None,
        initial_capacity: int = _INITIAL_CAPACITY,
    ) -> None:
        super().__init__(counters)
        self._initial_capacity = initial_capacity
        self._n_dimensions = n_dimensions
        self._n_measures = n_measures
        self._values: Optional[np.ndarray] = None
        self._dims: Optional[np.ndarray] = None
        self._interner: Optional[ColumnInterner] = None
        self._records: List[Record] = []
        self._row_of: Dict[int, int] = {}
        # Two-level membership: subspace → constraint → (tid → row).
        # Lattice passes fetch the per-subspace map once and then pay a
        # single cached-hash dict probe per visited constraint, instead
        # of allocating and hashing a (constraint, subspace) tuple key.
        self._spaces: Dict[int, Dict[Constraint, Dict[int, int]]] = {}
        # Reverse index: (tid, subspace) → bound masks anchoring the
        # tuple there (see SkylineStore.anchor_masks).
        self._anchors: Dict[Tuple[int, int], set] = {}
        # Columnar mirror of the reverse index: subspace → int64 array
        # over rows, element r the bitset of masks anchoring row r there.
        # Feeds the bitset lattice walker ("which µ buckets along C^t
        # hold row r?" is one AND per row) and columnar retraction.
        self._anchor_bits: Dict[int, np.ndarray] = {}
        self._bits_ok = False
        self._bits_dtype = None
        self._bit_weights = None
        # Scoring index, flattened to one ``(subspace, mask)``-keyed
        # level: ``(M << n) | m`` → (dimension values at ``m``'s
        # positions → count).  Entry ``(M, m, key)`` counts the
        # distinct tuples anchored in ``M`` at ``m`` or an ancestor of
        # ``m`` whose dimension values at ``m``'s positions equal
        # ``key`` — by Invariant 2 exactly ``|λ_M(σ_C)|`` for the
        # constraint binding ``key`` at ``m``.  The packed integer key
        # (see :meth:`score_key`) replaces the former two-level
        # subspace → mask nesting: every flip and every probe is one
        # dict access, and shard-restricted stores carry no per-subspace
        # scaffolding.  Built lazily on first use, then maintained by
        # anchor-bitset flips on every insert/delete, so prominence
        # scoring is O(1) per fact regardless of history size.
        self._score_index: Optional[Dict[int, Dict[tuple, int]]] = None
        self._up_table: Optional[Tuple[int, ...]] = None
        self._mask_keys: Optional[Tuple] = None
        # Memo: flipped-bitset → tuple of fact-mask ids (flip patterns
        # repeat constantly; bounded FIFO caps adversarial streams).
        self._flip_masks: Dict[int, Tuple[int, ...]] = {}
        self._total = 0
        # Sweep-index companion (PR 7): maintained only when an owner
        # opts in (``set_sweep_mode``); tombstoned-row bookkeeping for
        # the deferred compaction that replaced the per-tid row-slide.
        self._sweep: Optional[SweepIndex] = None
        self._sweep_mode = "off"
        self._dead_count = 0
        self._compaction_deferred = False
        if n_dimensions is not None and n_measures is not None:
            self._allocate(n_dimensions, n_measures)

    # ------------------------------------------------------------------
    # Columnar substrate
    # ------------------------------------------------------------------
    def _allocate(self, n_dimensions: int, n_measures: int) -> None:
        self._n_dimensions = n_dimensions
        self._n_measures = n_measures
        cap = self._initial_capacity
        self._values = np.empty((cap, n_measures), dtype=np.float64)
        self._dims = np.empty((cap, n_dimensions), dtype=np.int32)
        self._bits_dtype = lattice_bitset_dtype(n_dimensions)
        self._bits_ok = self._bits_dtype is not None
        if n_dimensions <= _MAX_INDEXED_DIMENSIONS:
            self._up_table = supermask_closure_table(n_dimensions)
            self._mask_keys = tuple(
                _key_builder(
                    tuple(j for j in range(n_dimensions) if (mask >> j) & 1)
                )
                for mask in range(1 << n_dimensions)
            )
        if self._interner is None:
            self._interner = ColumnInterner(n_dimensions)

    def _ensure_layout(self, record: Record) -> None:
        if self._values is None:
            self._allocate(len(record.dims), len(record.values))

    @property
    def n_rows(self) -> int:
        """Number of rows in the column arrays — live registrations plus
        any retraction tombstones awaiting compaction (tombstoned rows
        carry sentinels no sweep can match, so callers may treat the
        range as dense)."""
        return len(self._records)

    def register(self, record: Record) -> int:
        """Intern-and-append ``record`` into the columns; returns its row.

        Idempotent per tid.  Algorithms that sweep the whole history
        (``svec``) register every arrival; plain store users never need
        to call this — :meth:`insert` registers on demand.
        """
        row = self._row_of.get(record.tid)
        if row is not None:
            return row
        self._ensure_layout(record)
        row = len(self._records)
        self._values = grow_2d(self._values, row)
        self._dims = grow_2d(self._dims, row)
        self._values[row] = record.values
        self._dims[row] = self._interner.intern_row(record.dims)
        self._records.append(record)
        self._row_of[record.tid] = row
        return row

    def unregister(self, tid: int, compact: bool = True) -> None:
        """Drop a registered record's row from the columns (retraction).

        The caller must already have removed the tuple from every pair
        (retraction repair does).  The row is *tombstoned*, not slid
        out: the record reference is dropped, the measures become NaN
        and the dimension ids ``-1`` — sentinels no probe can match, so
        dense sweeps need no alive-masking — and the sweep index (when
        present) marks the row dead.  Column space is reclaimed by one
        grouped compaction once enough tombstones accumulate
        (:meth:`compact`), so a retraction is O(stored-per-tid)
        amortised instead of the old O(n + stored) row-slide per tid.
        """
        row = self._row_of.pop(tid, None)
        if row is None:
            return
        self._records[row] = None
        self._values[row] = np.nan
        self._dims[row] = -1
        self._dead_count += 1
        sweep = self._sweep
        for subspace, bits in self._anchor_bits.items():
            # Repair removes the tuple from every pair first, so these
            # are already zero; clearing defensively keeps the "dead
            # rows are never anchored" invariant that lets stale packed
            # bits in the sweep index stay harmless.
            if bits.shape[0] > row and bits[row]:
                if sweep is not None:
                    sweep.anchor_sync(subspace, row, int(bits[row]), 0)
                bits[row] = 0
        if sweep is not None:
            sweep.on_unregister(row)
        if compact:
            self._maybe_compact()

    def unregister_many(self, tids) -> None:
        """Grouped :meth:`unregister`: tombstone every tid, then run the
        deferred-compaction check once for the whole batch (bulk
        retraction was paying the old row-slide per tid)."""
        for tid in tids:
            self.unregister(tid, compact=False)
        self._maybe_compact()

    @contextmanager
    def deferred_compaction(self):
        """Suspend compaction for a grouped mutation sequence.

        Retraction repair interleaves pair surgery with
        :meth:`unregister` per tid; a mid-group compaction would be
        wasted work (more tombstones are coming).  Inside this context
        every compaction check is a no-op; one check runs at exit.
        """
        self._compaction_deferred = True
        try:
            yield self
        finally:
            self._compaction_deferred = False
            self._maybe_compact()

    def _maybe_compact(self) -> None:
        if (
            not self._compaction_deferred
            and self._dead_count > _COMPACT_MIN_DEAD
            and self._dead_count * _COMPACT_DEAD_FRACTION > len(self._records)
        ):
            self.compact()

    def compact(self) -> None:
        """Slide live rows over the tombstones and remap every row
        reference (buckets, tid map, anchor-bitset columns) in one
        grouped pass; the sweep index resets and rebuilds from the
        compacted columns at its next fold."""
        if not self._dead_count:
            return
        records = self._records
        keep = [row for row, record in enumerate(records) if record is not None]
        n = len(keep)
        if n:
            index = np.asarray(keep, dtype=np.int64)
            self._values[:n] = self._values[index]
            self._dims[:n] = self._dims[index]
        self._records = [records[row] for row in keep]
        remap = {old: new for new, old in enumerate(keep)}
        self._row_of = {
            record.tid: row for row, record in enumerate(self._records)
        }
        for space in self._spaces.values():
            for bucket in space.values():
                for tid, row in bucket.items():
                    bucket[tid] = remap[row]
        for subspace, bits in self._anchor_bits.items():
            packed = np.zeros_like(bits)
            covered = [old for old in keep if old < bits.shape[0]]
            if covered:
                packed[: len(covered)] = bits[
                    np.asarray(covered, dtype=np.int64)
                ]
            self._anchor_bits[subspace] = packed
        self._dead_count = 0
        if self._sweep is not None:
            self._sweep.reset()

    def reserve(self, extra: int) -> None:
        """Pre-grow the columns for ``extra`` imminent registrations."""
        if self._values is None or extra <= 0:
            return
        size = len(self._records)
        self._values = grow_2d(self._values, size, min_rows=size + extra)
        self._dims = grow_2d(self._dims, size, min_rows=size + extra)

    def intern_dims(self, dims: Tuple[object, ...]) -> np.ndarray:
        """Interned ``int32`` ids for a probe's dimension values.

        Unseen values receive fresh ids (they then equal no stored row,
        which is exactly the agreement semantics a probe needs).
        """
        if self._interner is None:
            self._interner = ColumnInterner(len(dims))
        return self._interner.intern_row(dims)

    def values_matrix(self) -> np.ndarray:
        """``(n_rows, |M|)`` float64 view of the registered measures."""
        if self._values is None:
            return np.empty((0, 0), dtype=np.float64)
        return self._values[: len(self._records)]

    def dims_matrix(self) -> np.ndarray:
        """``(n_rows, |D|)`` int32 view of the interned dimensions."""
        if self._dims is None:
            return np.empty((0, 0), dtype=np.int32)
        return self._dims[: len(self._records)]

    def partition_bitmasks(self, record: Record):
        """One dominance-partition sweep of ``record`` vs every row.

        Returns ``(lt, gt, agree)`` bitmask columns over the registered
        rows, following :func:`repro.core.dominance.compare`'s
        orientation for ``compare(record, other)``: bit ``i`` of
        ``lt[r]`` is set iff row ``r`` beats the probe on measure ``i``
        (``gt`` the converse), and bit ``j`` of ``agree[r]`` iff the
        interned dimension values match at position ``j``.  This is the
        single shared implementation behind the arrival sweep, its
        scalar fallback, and columnar retraction — orientation fixes
        land everywhere at once.
        """
        probe_values = np.asarray(record.values, dtype=np.float64)
        probe_dims = self.intern_dims(record.dims)
        sweep = self.sweep_index()
        if sweep is not None:
            sweep.ensure_folded()
            if sweep.active:
                return self._partition_indexed(sweep, probe_values, probe_dims)
        values = self.values_matrix()
        dims = self.dims_matrix()
        measure_bits, dim_bits = self._sweep_bit_weights()
        lt = (values > probe_values) @ measure_bits
        gt = (values < probe_values) @ measure_bits
        agree = (dims == probe_dims) @ dim_bits
        return lt, gt, agree

    def _partition_indexed(
        self,
        sweep: SweepIndex,
        probe_values: np.ndarray,
        probe_dims: np.ndarray,
    ):
        """Indexed :meth:`partition_bitmasks`: prefix bits come from the
        sweep index's packed partitions (unpacked back into the dense
        bitmask columns), only the suffix past the watermark is compared
        elementwise.  Tombstoned prefix rows are masked out — the dense
        path zeroes them via the NaN/``-1`` sentinels instead."""
        n = len(self._records)
        w = sweep.watermark
        measure_bits, dim_bits = self._sweep_bit_weights()
        lt = np.zeros(n, dtype=measure_bits.dtype)
        gt = np.zeros(n, dtype=measure_bits.dtype)
        agree = np.zeros(n, dtype=dim_bits.dtype)
        packed_lt, packed_gt = sweep.measure_partitions(probe_values)
        prefix_lt, prefix_gt, prefix_agree = lt[:w], gt[:w], agree[:w]
        for i in range(self._n_measures):
            prefix_lt |= sweep.unpack(packed_lt[i]).astype(
                measure_bits.dtype
            ) << np.int32(i)
            prefix_gt |= sweep.unpack(packed_gt[i]).astype(
                measure_bits.dtype
            ) << np.int32(i)
        for j in range(self._n_dimensions):
            prefix_agree |= sweep.unpack(
                sweep.posting(j, int(probe_dims[j]))
            ).astype(dim_bits.dtype) << np.int32(j)
        dead = sweep.dead_mask_u8()
        if dead is not None:
            alive = dead == 0
            prefix_lt *= alive
            prefix_gt *= alive
            prefix_agree *= alive
        if n > w:
            suffix_lt, suffix_gt, suffix_agree = self.partition_suffix(
                probe_values, probe_dims, w, n
            )
            lt[w:] = suffix_lt
            gt[w:] = suffix_gt
            agree[w:] = suffix_agree
        return lt, gt, agree

    def partition_suffix(
        self,
        probe_values: np.ndarray,
        probe_dims: np.ndarray,
        lo: int,
        hi: int,
    ):
        """Dense ``(lt, gt, agree)`` bitmask columns over rows
        ``[lo, hi)`` only — the un-indexed suffix of a sweep."""
        measure_bits, dim_bits = self._sweep_bit_weights()
        values = self._values[lo:hi]
        dims = self._dims[lo:hi]
        lt = (values > probe_values) @ measure_bits
        gt = (values < probe_values) @ measure_bits
        agree = (dims == probe_dims) @ dim_bits
        return lt, gt, agree

    def agree_bits_rows(
        self, rows: np.ndarray, probe_dims: np.ndarray
    ) -> np.ndarray:
        """Agreement bitmasks of specific ``rows`` against a probe."""
        dim_bits = self._sweep_bit_weights()[1]
        return (self._dims[rows] == probe_dims) @ dim_bits

    # ------------------------------------------------------------------
    # Sweep-index lifecycle
    # ------------------------------------------------------------------
    def set_sweep_mode(self, mode: str) -> None:
        """Opt this store in (``"on"``/``"auto"``) or out (``"off"``) of
        the incremental sweep index.  Owned by the algorithm that runs
        the sweeps; the index itself is created lazily on the discovery
        path (:meth:`sweep_index` with ``create=True``)."""
        self._sweep_mode = mode
        if mode == "off":
            self._sweep = None

    def sweep_index(self, create: bool = False) -> Optional[SweepIndex]:
        """The live :class:`SweepIndex`, or ``None`` when the store is
        opted out / beyond the anchor-bitset dimensionality cap."""
        if self._sweep_mode == "off" or not self._bits_ok:
            return None
        sweep = self._sweep
        if sweep is None and create:
            sweep = self._sweep = SweepIndex(self)
        return sweep

    def _sweep_bit_weights(self):
        """Per-axis bit weights for :meth:`partition_bitmasks`, int32
        whenever the masks fit (half the sweep bandwidth), built once
        after the layout is known."""
        weights = self._bit_weights
        if weights is None:
            measure_dtype = np.int32 if self._n_measures <= 30 else np.int64
            dim_dtype = np.int32 if self._n_dimensions <= 30 else np.int64
            weights = self._bit_weights = (
                (1 << np.arange(self._n_measures, dtype=np.int64)).astype(
                    measure_dtype
                ),
                (1 << np.arange(self._n_dimensions, dtype=np.int64)).astype(
                    dim_dtype
                ),
            )
        return weights

    def record_at(self, row: int) -> Optional[Record]:
        """The registered record living at ``row`` (``None`` when the
        row is a retraction tombstone awaiting compaction)."""
        return self._records[row]

    def row_of(self, tid: int) -> Optional[int]:
        """The column row of a registered tid (``None`` if unknown)."""
        return self._row_of.get(tid)

    def submap(self, subspace: int) -> Optional[Dict[Constraint, Dict[int, int]]]:
        """The live ``constraint → (tid → row)`` map for ``subspace``
        (``None`` when the subspace holds nothing).  Zero-copy fast path
        for lattice sweeps; callers must treat it as read-only and
        snapshot buckets before mutating the store."""
        return self._spaces.get(subspace)

    def bucket(self, constraint: Constraint, subspace: int) -> Optional[Dict[int, int]]:
        """The live ``tid → row`` membership dict for a pair (``None``
        when the pair holds nothing).  Read-only, like :meth:`submap`."""
        space = self._spaces.get(subspace)
        return space.get(constraint) if space else None

    def rows(self, constraint: Constraint, subspace: int) -> np.ndarray:
        """Membership of ``µ_{C,M}`` as a row-index array (insertion
        order) into the column matrices.  Shared empty when the pair
        holds nothing — callers must not mutate the result."""
        bucket = self.bucket(constraint, subspace)
        if not bucket:
            return _EMPTY_ROWS
        return np.fromiter(bucket.values(), dtype=np.int64, count=len(bucket))

    # ------------------------------------------------------------------
    # SkylineStore API
    # ------------------------------------------------------------------
    _EMPTY: tuple = ()

    def get(self, constraint: Constraint, subspace: int) -> List[Record]:
        bucket = self.bucket(constraint, subspace)
        if not bucket:
            return self._EMPTY  # type: ignore[return-value]
        records = self._records
        return [records[row] for row in bucket.values()]

    def insert(self, constraint: Constraint, subspace: int, record: Record) -> None:
        space = self._spaces.setdefault(subspace, {})
        bucket = space.setdefault(constraint, {})
        if record.tid not in bucket:
            row = bucket[record.tid] = self.register(record)
            self._total += 1
            self.counters.stored_tuples = self._total
            anchors = self._anchors.setdefault((record.tid, subspace), set())
            if self._score_index is not None and self._up_table is not None:
                up_table = self._up_table
                old_up = 0
                for mask in anchors:
                    old_up |= up_table[mask]
                flipped = up_table[constraint.bound_mask] & ~old_up
                if flipped:
                    self._score_bump(subspace, record.dims, flipped, 1)
            anchors.add(constraint.bound_mask)
            if self._bits_ok:
                self._bits_column(subspace, row)[row] |= (
                    1 << constraint.bound_mask
                )
                if self._sweep is not None:
                    self._sweep.anchor_set(
                        subspace, constraint.bound_mask, row
                    )

    def delete(self, constraint: Constraint, subspace: int, record: Record) -> None:
        space = self._spaces.get(subspace)
        bucket = space.get(constraint) if space else None
        if bucket and record.tid in bucket:
            row = bucket[record.tid]
            del bucket[record.tid]
            if self._bits_ok:
                bits = self._anchor_bits.get(subspace)
                if bits is not None and bits.shape[0] > row:
                    bits[row] &= ~(1 << constraint.bound_mask)
                if self._sweep is not None:
                    self._sweep.anchor_clear(
                        subspace, constraint.bound_mask, row
                    )
            self._total -= 1
            self.counters.stored_tuples = self._total
            if not bucket:
                del space[constraint]
                if not space:
                    del self._spaces[subspace]
            key = (record.tid, subspace)
            masks = self._anchors.get(key)
            if masks is not None:
                masks.discard(constraint.bound_mask)
                if self._score_index is not None and self._up_table is not None:
                    up_table = self._up_table
                    new_up = 0
                    for mask in masks:
                        new_up |= up_table[mask]
                    flipped = up_table[constraint.bound_mask] & ~new_up
                    if flipped:
                        self._score_bump(subspace, record.dims, flipped, -1)
                if not masks:
                    del self._anchors[key]

    def _flipped_masks(self, flipped: int) -> Tuple[int, ...]:
        masks = self._flip_masks.get(flipped)
        if masks is None:
            out = []
            bits = flipped
            while bits:
                bit = bits & -bits
                bits ^= bit
                out.append(bit.bit_length() - 1)
            masks = tuple(out)
            if len(self._flip_masks) >= 16384:
                self._flip_masks.pop(next(iter(self._flip_masks)))
            self._flip_masks[flipped] = masks
        return masks

    def _score_bump(
        self, subspace: int, dims: Tuple[object, ...], flipped: int, delta: int
    ) -> None:
        """Apply an anchor-bitset flip to the scoring index: each set bit
        of ``flipped`` is a fact mask whose ``|λ_M(σ_C)|`` gains or
        loses this tuple."""
        index = self._score_index
        base = subspace << self._n_dimensions
        keys = self._mask_keys
        if delta > 0:
            for fact_mask in self._flipped_masks(flipped):
                table = index.get(base | fact_mask)
                if table is None:
                    table = index[base | fact_mask] = defaultdict(int)
                table[keys[fact_mask](dims)] += delta
            return
        for fact_mask in self._flipped_masks(flipped):
            # Decrements always target an existing entry (the tuple was
            # counted when its anchor covered this mask); skip instead
            # of materialising empty tables if the invariant is ever
            # violated.
            table = index.get(base | fact_mask)
            if table is None:
                continue
            key = keys[fact_mask](dims)
            count = table.get(key, 0) + delta
            if count <= 0:
                table.pop(key, None)
            else:
                table[key] = count

    def scoring_index(self):
        """The live skyline-cardinality index, building it on first use.

        ``index[self.score_key(M, m)][key]`` is ``|λ_M(σ_C)|`` for the
        constraint binding dimension values ``key`` at mask ``m``'s
        positions — the count of distinct tuples anchored in ``M`` at
        ``m`` or an ancestor whose dims match ``key`` (Invariant 2).
        The index is one flat dict keyed by the packed ``(subspace,
        mask)`` integer, so a probe is a single access.  ``None`` when
        the store cannot maintain it (dimensionality beyond the mask
        -lattice cap).  Unscored ingestion never pays for it: the build
        happens on the first scoring call, after which every
        insert/delete keeps it current via bitset flips.  Read-only.
        """
        if self._n_dimensions is not None and self._up_table is None:
            return None
        index = self._score_index
        if index is None:
            index = self._score_index = {}
            up_table = self._up_table
            if up_table is not None:
                row_of = self._row_of
                records = self._records
                for (tid, subspace), masks in self._anchors.items():
                    up = 0
                    for mask in masks:
                        up |= up_table[mask]
                    self._score_bump(
                        subspace, records[row_of[tid]].dims, up, 1
                    )
        return index

    @property
    def mask_keys(self) -> Optional[Tuple]:
        """``mask → (dims → key-tuple)`` builders for the scoring-index
        keys (``None`` before the layout is known)."""
        return self._mask_keys

    @property
    def score_shift(self) -> Optional[int]:
        """Bit width of the fact-mask field inside a packed scoring-index
        key — callers probing one subspace many times precompute
        ``subspace << score_shift`` once and OR masks in."""
        return self._n_dimensions

    def score_key(self, subspace: int, fact_mask: int) -> int:
        """The flat scoring-index key for ``(subspace, fact_mask)``."""
        return (subspace << self._n_dimensions) | fact_mask

    _NO_ANCHORS: frozenset = frozenset()

    def anchor_masks(self, tid: int, subspace: int):
        """Live set of bound masks anchoring ``tid`` in ``subspace``
        (an empty set when none — never ``None``: this store always
        maintains the index).  Valid under the discovery-algorithm
        invariant that stored tuples satisfy their constraint; callers
        must treat the set as read-only."""
        return self._anchors.get((tid, subspace), self._NO_ANCHORS)

    # ------------------------------------------------------------------
    # Anchor bitsets (the walker's columnar reverse index)
    # ------------------------------------------------------------------
    @property
    def anchor_bits_supported(self) -> bool:
        """True when the per-row anchor bitsets are maintained (the 2^n
        constraint-mask lattice fits an int64 element)."""
        return self._bits_ok

    def _bits_column(self, subspace: int, row: int) -> np.ndarray:
        """The (allocating, growing) bitset column for ``subspace``,
        guaranteed to cover ``row``."""
        bits = self._anchor_bits.get(subspace)
        if bits is None:
            bits = self._anchor_bits[subspace] = np.zeros(
                max(self._initial_capacity, row + 1), dtype=self._bits_dtype
            )
        elif bits.shape[0] <= row:
            bits = self._anchor_bits[subspace] = grow_zeroed_1d(bits, row + 1)
        return bits

    def anchor_bits(self, subspace: int, min_rows: int = 0) -> Optional[np.ndarray]:
        """Per-row anchor bitsets for ``subspace``: element ``r`` has bit
        ``m`` set iff row ``r`` is anchored there at the constraint with
        bound mask ``m``.  ``None`` when the subspace holds nothing or
        the store is beyond the bitset dimensionality cap.  Grown (zero
        -filled) to at least ``min_rows`` elements so sweeps can slice
        ``[:n_rows]`` directly; callers must treat the array as
        read-only.
        """
        if not self._bits_ok:
            return None
        bits = self._anchor_bits.get(subspace)
        if bits is None:
            return None
        if bits.shape[0] < min_rows:
            bits = self._anchor_bits[subspace] = grow_zeroed_1d(bits, min_rows)
        return bits

    def insert_new_many(self, record: Record, pairs) -> None:
        """Anchor a new arrival at many ``(constraint, subspace)`` pairs.

        Grouped equivalent of one :meth:`insert` per pair for a record
        whose tid is not stored anywhere yet (the discovery hot path:
        the arrival is promoted at its maximal skyline constraints
        across every subspace in one call).  ``pairs`` should arrive
        subspace-grouped for best effect; registration, both anchor
        indexes, the scoring-index flips and the stored-tuple gauge end
        up exactly as the per-call sequence would leave them.
        """
        if not pairs:
            return
        row = self.register(record)
        tid = record.tid
        dims = record.dims
        spaces = self._spaces
        anchors_map = self._anchors
        bits_ok = self._bits_ok
        # Arrivals register past the sweep-index watermark, so the index
        # picks these anchors up at the next fold; the sync below only
        # fires on the (defensive) re-anchor-of-an-old-row case.
        sweep = self._sweep
        score = self._score_index is not None and self._up_table is not None
        up_table = self._up_table
        added = 0
        last_subspace: Optional[int] = None
        anchors: Optional[set] = None
        bits: Optional[np.ndarray] = None
        old_up = 0
        pending_flips = 0
        pending_bits = 0
        for constraint, subspace in pairs:
            space = spaces.get(subspace)
            if space is None:
                space = spaces[subspace] = {}
            bucket = space.get(constraint)
            if bucket is None:
                bucket = space[constraint] = {}
            if tid in bucket:
                continue
            bucket[tid] = row
            added += 1
            if subspace != last_subspace:
                # Flips within one subspace are disjoint across the
                # grouped inserts, so one merged bump (and one merged
                # bitset write) per subspace lands the same state.
                if pending_flips:
                    self._score_bump(last_subspace, dims, pending_flips, 1)
                    pending_flips = 0
                if pending_bits:
                    if sweep is not None and row < sweep.watermark:
                        old = int(bits[row])
                        sweep.anchor_sync(
                            last_subspace, row, old, old | pending_bits
                        )
                    bits[row] |= pending_bits
                    pending_bits = 0
                last_subspace = subspace
                key = (tid, subspace)
                anchors = anchors_map.get(key)
                if anchors is None:
                    anchors = anchors_map[key] = set()
                if score:
                    old_up = 0
                    for mask in anchors:
                        old_up |= up_table[mask]
                if bits_ok:
                    bits = self._bits_column(subspace, row)
            mask = constraint._mask
            if score:
                flipped = up_table[mask] & ~old_up
                if flipped:
                    pending_flips |= flipped
                    old_up |= up_table[mask]
            anchors.add(mask)
            if bits_ok:
                pending_bits |= 1 << mask
        if pending_flips:
            self._score_bump(last_subspace, dims, pending_flips, 1)
        if pending_bits:
            if sweep is not None and row < sweep.watermark:
                old = int(bits[row])
                sweep.anchor_sync(last_subspace, row, old, old | pending_bits)
            bits[row] |= pending_bits
        if added:
            self._total += added
            self.counters.stored_tuples = self._total

    def reanchor_demoted(
        self,
        subspace: int,
        record: Record,
        row: int,
        constraint: Constraint,
        children,
    ) -> None:
        """Demotion-repair primitive: move ``record``'s anchor from
        ``constraint`` down to ``children`` in one step.

        Equivalent to ``delete(constraint, …)`` followed by one
        ``insert(child, …)`` per child, but the scoring-index flips are
        *netted* first — a demotion typically re-anchors within the
        removed mask's up-closure, so most of the delete's decrements
        cancel against the inserts' increments and never touch the
        count tables.  Final bucket / anchor / bitset / gauge state is
        identical to the call sequence.
        """
        tid = record.tid
        spaces = self._spaces
        space = spaces.get(subspace)
        bucket = space.get(constraint) if space else None
        if not bucket or tid not in bucket:
            return
        del bucket[tid]
        if not bucket:
            del space[constraint]
            if not space:
                del spaces[subspace]
        removed_mask = constraint._mask
        key = (tid, subspace)
        anchors = self._anchors.get(key)
        if anchors is None:
            anchors = self._anchors[key] = set()
        score = self._score_index is not None and self._up_table is not None
        up_table = self._up_table
        old_up = 0
        if score:
            for mask in anchors:
                old_up |= up_table[mask]
        anchors.discard(removed_mask)
        added = 0
        for child in children:
            space = spaces.get(subspace)
            if space is None:
                space = spaces[subspace] = {}
            child_bucket = space.get(child)
            if child_bucket is None:
                child_bucket = space[child] = {}
            if tid not in child_bucket:
                child_bucket[tid] = row
                anchors.add(child._mask)
                added += 1
        if score:
            new_up = 0
            for mask in anchors:
                new_up |= up_table[mask]
            gained = new_up & ~old_up
            if gained:
                self._score_bump(subspace, record.dims, gained, 1)
            lost = old_up & ~new_up
            if lost:
                self._score_bump(subspace, record.dims, lost, -1)
        if self._bits_ok:
            bits = self._bits_column(subspace, row)
            old_bitset = int(bits[row])
            bitset = old_bitset & ~(1 << removed_mask)
            for child in children:
                bitset |= 1 << child._mask
            bits[row] = bitset
            if self._sweep is not None:
                self._sweep.anchor_sync(subspace, row, old_bitset, bitset)
        if not anchors:
            del self._anchors[key]
        self._total += added - 1
        self.counters.stored_tuples = self._total

    def contains(self, constraint: Constraint, subspace: int, record: Record) -> bool:
        bucket = self.bucket(constraint, subspace)
        return bool(bucket) and record.tid in bucket

    def iter_pairs(self) -> Iterator[Tuple[PairKey, List[Record]]]:
        records = self._records
        for subspace, space in self._spaces.items():
            for constraint, bucket in space.items():
                yield (constraint, subspace), [
                    records[row] for row in bucket.values()
                ]

    def stored_tuple_count(self) -> int:
        return self._total

    def approx_bytes(self) -> int:
        """Columns (used rows) plus one pointer per membership reference.

        Unlike the record-deep accounting of the dict store, the payload
        here *is* the column arrays; records are charged as references
        only (they are shared with the table)."""
        total = 0
        n = len(self._records)
        if self._values is not None:
            total += self._values[:n].nbytes + self._dims[:n].nbytes
        total += n * _POINTER_BYTES  # the row → Record references
        for bits in self._anchor_bits.values():
            total += bits[: min(n, bits.shape[0])].nbytes
        for space in self._spaces.values():
            for constraint, bucket in space.items():
                total += sys.getsizeof(constraint) + _POINTER_BYTES * (
                    len(bucket) + 1
                )
        return total

    def clear(self) -> None:
        self._values = None
        self._dims = None
        self._interner = None
        self._records = []
        self._row_of = {}
        self._spaces = {}
        self._anchors = {}
        self._anchor_bits = {}
        self._bits_ok = False
        self._bits_dtype = None
        self._bit_weights = None
        self._score_index = None
        self._up_table = None
        self._mask_keys = None
        self._flip_masks = {}
        self._total = 0
        self._sweep = None
        self._dead_count = 0
        self.counters.stored_tuples = 0
        if self._n_dimensions is not None and self._n_measures is not None:
            self._allocate(self._n_dimensions, self._n_measures)
