"""File-backed skyline store — the paper's file-based implementation (§VI-C).

Each non-empty ``µ_{C,M}`` is one binary file.  When an algorithm visits
a pair, the whole file is read into a memory buffer; inserts/deletes act
on the buffer; when the algorithm finishes with the pair, the file is
overwritten with the buffer's content.  A tiny write-back cache of the
single *open* pair mirrors that access pattern: algorithms touch pairs
one at a time, so the cache flushes the previous pair whenever a new one
is opened.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.constraint import Constraint
from ..core.record import Record
from ..core.schema import TableSchema
from .base import PairKey, SkylineStore
from .codec import DimensionInterner, RecordCodec


class FileSkylineStore(SkylineStore):
    """One binary file per non-empty ``(C, M)`` pair.

    Parameters
    ----------
    schema:
        Needed by the codec to fix record width.
    directory:
        Where pair files live.  When omitted a temporary directory is
        created and removed on :meth:`close` / :meth:`clear`.
    """

    def __init__(
        self,
        schema: TableSchema,
        directory: Optional[str] = None,
        counters=None,
    ) -> None:
        super().__init__(counters)
        self.schema = schema
        self._own_dir = directory is None
        self.directory = directory or tempfile.mkdtemp(prefix="repro-mu-")
        os.makedirs(self.directory, exist_ok=True)
        self._codec = RecordCodec(schema, DimensionInterner())
        self._paths: Dict[PairKey, str] = {}
        self._next_file_id = 0
        self._total = 0
        # Write-back buffer for the currently open pair (§VI-C access model).
        self._open_key: Optional[PairKey] = None
        self._open_records: Dict[int, Record] = {}
        self._open_dirty = False

    # ------------------------------------------------------------------
    # Buffer management
    # ------------------------------------------------------------------
    def _path_for(self, key: PairKey) -> str:
        path = self._paths.get(key)
        if path is None:
            path = os.path.join(self.directory, f"mu_{self._next_file_id:08x}.bin")
            self._next_file_id += 1
            self._paths[key] = path
        return path

    def _open_pair(self, key: PairKey) -> Dict[int, Record]:
        """Make ``key`` the open pair, flushing the previous one."""
        if self._open_key == key:
            return self._open_records
        self.flush()
        self._open_key = key
        self._open_records = {}
        self._open_dirty = False
        path = self._paths.get(key)
        if path is not None and os.path.exists(path):
            with open(path, "rb") as fh:
                buffer = fh.read()
            self.counters.file_reads += 1
            for record in self._codec.decode(buffer):
                self._open_records[record.tid] = record
        return self._open_records

    def flush(self) -> None:
        """Write the open pair back to its file (if it changed)."""
        if self._open_key is None or not self._open_dirty:
            self._open_key = None
            self._open_records = {}
            self._open_dirty = False
            return
        key = self._open_key
        records = list(self._open_records.values())
        path = self._path_for(key)
        if records:
            with open(path, "wb") as fh:
                fh.write(self._codec.encode(records))
            self.counters.file_writes += 1
        else:
            if os.path.exists(path):
                os.remove(path)
                self.counters.file_writes += 1
            self._paths.pop(key, None)
        self._open_key = None
        self._open_records = {}
        self._open_dirty = False

    # ------------------------------------------------------------------
    # SkylineStore interface
    # ------------------------------------------------------------------
    def get(self, constraint: Constraint, subspace: int) -> List[Record]:
        key = (constraint, subspace)
        if self._open_key != key and key not in self._paths:
            return []  # empty pair: no file, no read (the §VI-C fast path)
        return list(self._open_pair(key).values())

    def insert(self, constraint: Constraint, subspace: int, record: Record) -> None:
        bucket = self._open_pair((constraint, subspace))
        if record.tid not in bucket:
            bucket[record.tid] = record
            self._total += 1
            self.counters.stored_tuples = self._total
            self._open_dirty = True

    def delete(self, constraint: Constraint, subspace: int, record: Record) -> None:
        key = (constraint, subspace)
        if self._open_key != key and key not in self._paths:
            return
        bucket = self._open_pair(key)
        if record.tid in bucket:
            del bucket[record.tid]
            self._total -= 1
            self.counters.stored_tuples = self._total
            self._open_dirty = True

    def contains(self, constraint: Constraint, subspace: int, record: Record) -> bool:
        key = (constraint, subspace)
        if self._open_key != key and key not in self._paths:
            return False
        return record.tid in self._open_pair(key)

    def iter_pairs(self) -> Iterator[Tuple[PairKey, List[Record]]]:
        self.flush()
        for key in list(self._paths):
            records = self.get(*key)
            if records:
                yield key, records

    def stored_tuple_count(self) -> int:
        return self._total

    def approx_bytes(self) -> int:
        """On-disk bytes across all pair files (plus the open buffer)."""
        self.flush()
        total = 0
        for path in self._paths.values():
            if os.path.exists(path):
                total += os.path.getsize(path)
        return total

    def clear(self) -> None:
        self._open_key = None
        self._open_records = {}
        self._open_dirty = False
        for path in self._paths.values():
            if os.path.exists(path):
                os.remove(path)
        self._paths.clear()
        self._total = 0
        self.counters.stored_tuples = 0

    def close(self) -> None:
        """Flush and, for store-owned directories, remove everything."""
        self.flush()
        if self._own_dir and os.path.isdir(self.directory):
            shutil.rmtree(self.directory, ignore_errors=True)

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass
