"""Skyline-store interface — the paper's ``µ_{C,M}`` spaces (§V).

A store maps a constraint–measure pair ``(C, M)`` to the set of tuples
materialised for it.  BottomUp keeps *all* contextual skyline tuples
there (Invariant 1); TopDown keeps only tuples whose *maximal* skyline
constraint is ``C`` (Invariant 2).  The store itself is policy-free —
algorithms decide what to put in it.

Two implementations exist:

* :class:`~repro.storage.memory_store.MemorySkylineStore` — dict-backed
  (§VI-B, "memory-based implementation");
* :class:`~repro.storage.file_store.FileSkylineStore` — one binary file
  per non-empty pair (§VI-C, "file-based implementation").
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, List, Optional, Tuple

from ..core.constraint import Constraint
from ..core.record import Record
from ..metrics.counters import OpCounters

PairKey = Tuple[Constraint, int]


class SkylineStore(abc.ABC):
    """Abstract ``µ`` store: a multimap ``(C, M) → {records}``."""

    def __init__(self, counters: Optional[OpCounters] = None) -> None:
        self.counters = counters if counters is not None else OpCounters()

    # -- required primitives ------------------------------------------------
    @abc.abstractmethod
    def get(self, constraint: Constraint, subspace: int) -> List[Record]:
        """Tuples currently stored for ``(C, M)``.

        Returns an empty sequence when the pair holds nothing (it may be
        a shared immutable empty — callers must not mutate the result).
        """

    @abc.abstractmethod
    def insert(self, constraint: Constraint, subspace: int, record: Record) -> None:
        """Add ``record`` to ``µ_{C,M}`` (no-op when already present)."""

    @abc.abstractmethod
    def delete(self, constraint: Constraint, subspace: int, record: Record) -> None:
        """Remove ``record`` from ``µ_{C,M}`` (no-op when absent)."""

    @abc.abstractmethod
    def contains(self, constraint: Constraint, subspace: int, record: Record) -> bool:
        """Membership test used by TopDown's maximality checks."""

    @abc.abstractmethod
    def iter_pairs(self) -> Iterator[Tuple[PairKey, List[Record]]]:
        """All non-empty pairs with their tuples (for accounting/tests)."""

    @abc.abstractmethod
    def stored_tuple_count(self) -> int:
        """Total stored tuple references (Fig. 10b series)."""

    @abc.abstractmethod
    def approx_bytes(self) -> int:
        """Approximate resident bytes (Fig. 10a series)."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop everything (bench teardown)."""

    # -- optional fast paths --------------------------------------------------
    def anchor_masks(self, tid: int, subspace: int):
        """Bound masks of the constraints storing tuple ``tid`` in
        ``subspace``, or ``None`` when the store keeps no such index.

        Only meaningful for stores filled by the discovery algorithms,
        where every tuple stored at ``(C, M)`` satisfies ``C`` — the
        bound mask then identifies ``C`` uniquely given the tuple, and
        demotion repair can test "is an ancestor anchored?" with integer
        arithmetic instead of constructing candidate constraints.
        Stores without the index return ``None`` (the generic path).
        """
        return None

    def scoring_index(self):
        """Incremental skyline-cardinality index for prominence scoring,
        or ``None`` when the store keeps none (the generic path).

        When maintained (see the columnar store), the index is one flat
        dict keyed by the packed ``(subspace, mask)`` integer (the
        store's ``score_key``): ``index[score_key(M, m)][key]`` is
        ``|λ_M(σ_C)|`` for the constraint binding dimension values
        ``key`` at bound mask ``m`` — resolved by one dict lookup per
        fact instead of an Invariant-2 store sweep.  Like
        :meth:`anchor_masks`, it is only meaningful for stores filled by
        the discovery algorithms (stored tuples satisfy their
        constraints).  Callers must treat the index as read-only.
        """
        return None

    # -- shared conveniences -------------------------------------------------
    def replace(
        self,
        constraint: Constraint,
        subspace: int,
        remove: Iterable[Record],
        add: Iterable[Record],
    ) -> None:
        """Batch delete-then-insert on one pair (one read-modify-write for
        the file store)."""
        for record in remove:
            self.delete(constraint, subspace, record)
        for record in add:
            self.insert(constraint, subspace, record)
