"""SweepIndex — incremental dominance partitions behind a watermark.

Every arrival sweep (`ColumnarSkylineStore.partition_bitmasks`) pays an
elementwise ``lt``/``gt``/``agree`` comparison against the *entire*
registered history, even though the stored prefix is unchanged between
deletions.  This module maintains cheap ordered summaries of that
prefix — litmus's rough-cost-then-execute idiom applied to the sweep —
so a probe is answered with rank lookups instead of compares:

* per measure, a **sorted ordering** of the prefix rows (values +
  row ids) plus **suffix-block bitsets**: ``suffix[b]`` is the packed
  row-bitset of every row whose sorted position is ``>= b*B``.  "Which
  rows beat the probe on measure i" is then one ``searchsorted``, one
  block copy and one partial-block scatter — O(log n + B) instead of
  O(n);
* per dimension, **posting bitsets** keyed by interned value id,
  demand-built from the columns — "which rows agree with the probe at
  position j" is a dict probe;
* per ``(subspace, constraint-mask)``, **anchor-plane bitsets**
  mirroring the store's per-row anchor bitsets, maintained by the
  store's insert/delete/re-anchor hooks — the lattice walker's bucket
  arithmetic becomes bitset intersections over the prefix.

All bitsets are little-endian packed ``uint64`` words over rows
``[0, watermark)`` and are rebuilt *lazily*: arrivals past the
watermark live in the un-indexed suffix (handled densely by callers)
until ``fold_batch`` of them accumulate, at which point one fold merges
them into the orderings — O(watermark) work amortised over the batch.

Invalidation never rebuilds the index: a deletion tombstones its row
(one cleared bit in an alive mask; the store wipes the anchor planes
through the hooks before unregistering), window eviction is just a
deletion, and a demotion re-anchor patches the affected plane words.
Stale ``lt``/``gt``/``agree`` bits of tombstoned rows are harmless to
the walker (every consumer intersects with anchor planes, which are
cleared eagerly) and are masked out of dense reconstructions with the
tombstone bitset.  Store compaction resets the index (watermark 0);
the next fold rebuilds it from the compacted columns.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Suffix rows folded into the index per batch (override with the
#: ``REPRO_SWEEP_FOLD_BATCH`` environment variable — tests shrink it to
#: exercise fold/invalidate paths on short streams).  Also the
#: activation threshold: histories shorter than one batch stay on the
#: dense sweep, where the index cannot win.
DEFAULT_FOLD_BATCH = 256

#: Sorted-position block size of the per-measure suffix bitsets.  A
#: probe pays one partial-block scatter (< B rows) per measure bound;
#: a fold pays one packed-bitset pass per block.
_BLOCK = 1024

_ONE = np.uint64(1)
_FULL = ~np.uint64(0)


def _pack_rows(rows: np.ndarray, cap_words: int, buf: np.ndarray) -> np.ndarray:
    """Little-endian packed uint64 bitset with ``rows`` set, via a
    reusable boolean scatter buffer (reset after packing)."""
    out = np.zeros(cap_words, dtype=np.uint64)
    if rows.size:
        buf[rows] = True
        packed = np.packbits(buf[: cap_words * 64], bitorder="little")
        out[:] = packed.view(np.uint64)
        buf[rows] = False
    return out


class _MeasureOrder:
    """One measure's sorted ordering + suffix-block bitsets."""

    __slots__ = ("vals", "rows", "suffix")

    def __init__(self) -> None:
        self.vals = np.empty(0, dtype=np.float64)
        self.rows = np.empty(0, dtype=np.int64)
        self.suffix: Optional[np.ndarray] = None  # (nb + 1, cap_words)


class SweepIndex:
    """Incremental sweep summaries for one :class:`ColumnarSkylineStore`.

    Created (and owned) by the store when its sweep-index mode is on;
    all row/word layouts are the store's.  ``n_masks`` is the size of
    the bound-mask lattice (``2^|D|``) — the anchor planes need it to
    fit the store's per-row anchor bitsets, so the index is only built
    when the store maintains those (``anchor_bits_supported``).
    """

    def __init__(self, store, fold_batch: Optional[int] = None) -> None:
        self._store = store
        if fold_batch is None:
            env = os.environ.get("REPRO_SWEEP_FOLD_BATCH")
            fold_batch = int(env) if env else DEFAULT_FOLD_BATCH
        self.fold_batch = max(1, int(fold_batch))
        self._n_measures = store._n_measures
        self._n_dimensions = store._n_dimensions
        self.n_masks = 1 << self._n_dimensions
        #: Rows ``[0, watermark)`` are indexed; the rest is suffix.
        self.watermark = 0
        self.cap_words = 0
        self._orders = [_MeasureOrder() for _ in range(self._n_measures)]
        #: (dim position, interned value id) → packed posting bitset,
        #: demand-built over the current prefix; cleared at every fold.
        self._postings: Dict[Tuple[int, int], np.ndarray] = {}
        #: subspace key → plane row in :attr:`_anch`.
        self._planes: Dict[int, int] = {}
        self._anch = np.zeros((0, self.n_masks, 0), dtype=np.uint64)
        #: Tombstoned prefix rows (packed) — masked out of dense
        #: reconstructions; purged from the orderings at the next fold.
        self._dead = np.zeros(0, dtype=np.uint64)
        self._dead_rows: List[int] = []
        self._scatter = np.zeros(0, dtype=bool)
        self.folds = 0

    # ------------------------------------------------------------------
    # Store hooks (anchor mutations + tombstones)
    # ------------------------------------------------------------------
    def anchor_set(self, subspace: int, mask: int, row: int) -> None:
        if row >= self.watermark:
            return
        plane = self._planes.get(subspace)
        if plane is None:
            plane = self._add_plane(subspace)
        self._anch[plane, mask, row >> 6] |= _ONE << np.uint64(row & 63)

    def anchor_clear(self, subspace: int, mask: int, row: int) -> None:
        if row >= self.watermark:
            return
        plane = self._planes.get(subspace)
        if plane is not None:
            self._anch[plane, mask, row >> 6] &= ~(
                _ONE << np.uint64(row & 63)
            )

    def anchor_sync(
        self, subspace: int, row: int, old_bits: int, new_bits: int
    ) -> None:
        """Apply a combined re-anchor (``old_bits → new_bits``) to the
        planes — only the changed masks are touched."""
        if row >= self.watermark:
            return
        changed = old_bits ^ new_bits
        if not changed:
            return
        plane = self._planes.get(subspace)
        if plane is None:
            plane = self._add_plane(subspace)
        word = row >> 6
        bit = _ONE << np.uint64(row & 63)
        while changed:
            low = changed & -changed
            changed ^= low
            mask = low.bit_length() - 1
            if (new_bits >> mask) & 1:
                self._anch[plane, mask, word] |= bit
            else:
                self._anch[plane, mask, word] &= ~bit
        return

    def on_unregister(self, row: int) -> None:
        """Tombstone a prefix row (suffix rows never entered the index;
        the store's column neutralisation covers them)."""
        if row >= self.watermark:
            return
        self._dead[row >> 6] |= _ONE << np.uint64(row & 63)
        self._dead_rows.append(row)

    def reset(self) -> None:
        """Drop everything (store compaction / clear remaps rows)."""
        self.watermark = 0
        self.cap_words = 0
        self._orders = [_MeasureOrder() for _ in range(self._n_measures)]
        self._postings.clear()
        self._planes.clear()
        self._anch = np.zeros((0, self.n_masks, 0), dtype=np.uint64)
        self._dead = np.zeros(0, dtype=np.uint64)
        self._dead_rows = []

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self.watermark > 0

    def ensure_folded(self) -> None:
        """Fold the suffix in when a batch has accumulated."""
        n = self._store.n_rows
        if n - self.watermark >= self.fold_batch:
            self._fold(n)

    def _fold(self, n: int) -> None:
        store = self._store
        old_w = self.watermark
        cap = (((n + 63) >> 6) + 63) & ~63  # word capacity, chunked
        if cap != self.cap_words:
            self._dead = self._grown(self._dead, cap)
            anch = np.zeros(
                (self._anch.shape[0], self.n_masks, cap), dtype=np.uint64
            )
            anch[:, :, : self._anch.shape[2]] = self._anch
            self._anch = anch
            self.cap_words = cap
        if self._scatter.shape[0] < cap * 64:
            self._scatter = np.zeros(cap * 64, dtype=bool)

        # Purge tombstoned rows from the orderings (their packed bits
        # elsewhere are anchor-gated or dead-masked, so only the sorted
        # arrays — which searchsorted walks — need cleaning).
        if self._dead_rows:
            alive = np.ones(old_w, dtype=bool)
            alive[np.asarray(self._dead_rows, dtype=np.int64)] = False
            for order in self._orders:
                keep = alive[order.rows]
                if not keep.all():
                    order.vals = order.vals[keep]
                    order.rows = order.rows[keep]
            self._dead_rows = []

        # Merge the live suffix rows into each measure's ordering.
        records = store._records
        new_rows = np.asarray(
            [r for r in range(old_w, n) if records[r] is not None],
            dtype=np.int64,
        )
        for i, order in enumerate(self._orders):
            if new_rows.size:
                vals = store._values[new_rows, i]
                ok = ~np.isnan(vals)
                vals, rows = vals[ok], new_rows[ok]
                # Pre-sort the batch: np.insert keeps equal insertion
                # points in argument order, so the merge stays sorted.
                sorter = np.argsort(vals, kind="stable")
                vals, rows = vals[sorter], rows[sorter]
                at = np.searchsorted(order.vals, vals)
                order.vals = np.insert(order.vals, at, vals)
                order.rows = np.insert(order.rows, at, rows)
            self._rebuild_suffix(order)

        # Extend the anchor planes with the new rows' current anchors
        # (read straight off the store's per-row bitset columns).
        for subspace, bits in store._anchor_bits.items():
            plane = self._planes.get(subspace)
            if plane is None:
                plane = self._add_plane(subspace)
            if not new_rows.size or bits.shape[0] <= old_w:
                continue
            col = bits[old_w : min(n, bits.shape[0])]
            if not col.any():
                continue
            for mask in range(self.n_masks):
                rows = old_w + np.nonzero((col >> mask) & 1)[0]
                if rows.size:
                    seg = _pack_rows(rows, self.cap_words, self._scatter)
                    self._anch[plane, mask] |= seg

        self._postings.clear()
        self.watermark = n
        self.folds += 1

    def _rebuild_suffix(self, order: _MeasureOrder) -> None:
        total = order.rows.shape[0]
        nb = (total + _BLOCK - 1) // _BLOCK
        suffix = np.zeros((nb + 1, self.cap_words), dtype=np.uint64)
        for b in range(nb - 1, -1, -1):
            block = order.rows[b * _BLOCK : (b + 1) * _BLOCK]
            suffix[b] = suffix[b + 1] | _pack_rows(
                block, self.cap_words, self._scatter
            )
        order.suffix = suffix

    def _grown(self, arr: np.ndarray, cap: int) -> np.ndarray:
        out = np.zeros(cap, dtype=np.uint64)
        out[: arr.shape[0]] = arr
        return out

    def _add_plane(self, subspace: int) -> int:
        plane = len(self._planes)
        self._planes[subspace] = plane
        anch = np.zeros((plane + 1, self.n_masks, self.cap_words), np.uint64)
        anch[:plane] = self._anch
        self._anch = anch
        return plane

    def ensure_planes(self, subspaces: Sequence[int]) -> None:
        """Pre-register planes in walker key order, so
        :meth:`anchor_planes` is a zero-copy view for that order."""
        for subspace in subspaces:
            if subspace not in self._planes:
                self._add_plane(subspace)

    def anchor_planes(self, subspaces: Sequence[int]) -> np.ndarray:
        """``(len(subspaces), n_masks, cap_words)`` anchor planes in the
        requested order (a view when the registration order matches —
        the walker path — a gathered copy otherwise)."""
        idx = [self._planes.get(s) for s in subspaces]
        if any(i is None for i in idx):
            self.ensure_planes(subspaces)
            idx = [self._planes[s] for s in subspaces]
        if idx == list(range(len(self._planes))):
            return self._anch
        return self._anch[np.asarray(idx, dtype=np.int64)]

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def measure_partitions(
        self, probe_values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Packed ``(L, G)`` over the prefix: ``L[i]`` the rows whose
        measure ``i`` beats ``probe_values[i]``, ``G[i]`` the rows it
        beats — each one ``searchsorted`` + one suffix-block copy + one
        partial-block scatter.  NaN probes partition nothing (dense
        comparisons with NaN are always False)."""
        cap = self.cap_words
        L = np.zeros((self._n_measures, cap), dtype=np.uint64)
        G = np.zeros((self._n_measures, cap), dtype=np.uint64)
        for i, order in enumerate(self._orders):
            v = probe_values[i]
            if np.isnan(v):
                continue
            total = order.rows.shape[0]
            suffix = order.suffix
            # Rows with value > v: sorted positions (pos_r, total).
            pos = int(np.searchsorted(order.vals, v, side="right"))
            b = (pos + _BLOCK - 1) // _BLOCK
            L[i] = suffix[min(b, suffix.shape[0] - 1)]
            part = order.rows[pos : b * _BLOCK]
            if part.size:
                L[i] |= _pack_rows(part, cap, self._scatter)
            # Rows with value < v: present rows minus positions >= pos_l.
            pos = int(np.searchsorted(order.vals, v, side="left"))
            b = (pos + _BLOCK - 1) // _BLOCK
            ge = suffix[min(b, suffix.shape[0] - 1)].copy()
            part = order.rows[pos : b * _BLOCK]
            if part.size:
                ge |= _pack_rows(part, cap, self._scatter)
            G[i] = suffix[0] & ~ge
        return L, G

    def posting(self, position: int, vid: int) -> np.ndarray:
        """Packed bitset of prefix rows whose interned dimension value
        at ``position`` equals ``vid`` (demand-built; tombstoned rows
        auto-excluded at build time by their ``-1`` sentinel)."""
        key = (position, vid)
        packed = self._postings.get(key)
        if packed is None:
            w = self.watermark
            hit = self._store._dims[:w, position] == np.int32(vid)
            packed = np.zeros(self.cap_words, dtype=np.uint64)
            bits = np.packbits(hit, bitorder="little")
            packed.view(np.uint8)[: bits.shape[0]] = bits
            self._postings[key] = packed
        return packed

    def dead_mask_u8(self) -> Optional[np.ndarray]:
        """Per-row 0/1 tombstone flags over the prefix (``None`` when
        nothing died) — reconstruction clears those rows."""
        if not self._dead[: (self.watermark + 63) >> 6].any():
            return None
        return np.unpackbits(
            self._dead.view(np.uint8), count=self.watermark, bitorder="little"
        )

    def unpack(self, packed: np.ndarray) -> np.ndarray:
        """Prefix-length uint8 0/1 view of one packed bitset."""
        return np.unpackbits(
            packed.view(np.uint8), count=self.watermark, bitorder="little"
        )
