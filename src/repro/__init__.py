"""repro — Incremental Discovery of Prominent Situational Facts.

A complete reproduction of Sultana, Hassan, Li, Yang & Yu (ICDE 2014):
streaming detection of constraint–measure pairs that make each newly
arrived tuple a *contextual skyline tuple*, ranked by prominence.

Quickstart
----------
>>> from repro import DiscoveryConfig, EngineSpec, TableSchema, open_engine
>>> schema = TableSchema(
...     dimensions=("player", "month", "team", "opp_team"),
...     measures=("points", "assists", "rebounds"),
... )
>>> spec = EngineSpec(schema, algorithm="stopdown",
...                   config=DiscoveryConfig(max_bound_dims=2))
>>> with open_engine(spec) as engine:
...     facts = engine.observe({"player": "Wesley", "month": "Feb",
...                             "team": "Celtics", "opp_team": "Nets",
...                             "points": 12, "assists": 13, "rebounds": 5})

Any composition — sharded, windowed, aggregate — opens through the same
``EngineSpec``/``open_engine`` facade and honours the same ``Engine``
protocol (see ``docs/api.md``); :class:`FactDiscoverer` remains as the
direct in-proc constructor.

See ``examples/`` for realistic scenarios and ``benchmarks/`` for the
paper's full experimental suite.
"""

from .algorithms import ALGORITHMS, DiscoveryAlgorithm, make_algorithm
from .api import (
    CheckpointPolicy,
    Engine,
    EngineSpec,
    GroupSpec,
    ShardingSpec,
    open_engine,
    restore,
)
from .core import (
    MAX,
    MIN,
    ComparisonOutcome,
    ColumnarContextCounter,
    Constraint,
    ContextCounter,
    DiscoveryConfig,
    FactDiscoverer,
    FactSet,
    Record,
    SchemaError,
    SituationalFact,
    Table,
    TableSchema,
    compare,
    contextual_skyline,
    dominates,
)
from .metrics import OpCounters

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "DiscoveryAlgorithm",
    "make_algorithm",
    "Engine",
    "EngineSpec",
    "ShardingSpec",
    "CheckpointPolicy",
    "GroupSpec",
    "open_engine",
    "restore",
    "MAX",
    "MIN",
    "ComparisonOutcome",
    "ColumnarContextCounter",
    "Constraint",
    "ContextCounter",
    "DiscoveryConfig",
    "FactDiscoverer",
    "FactSet",
    "Record",
    "SchemaError",
    "SituationalFact",
    "Table",
    "TableSchema",
    "compare",
    "contextual_skyline",
    "dominates",
    "OpCounters",
    "__version__",
]
