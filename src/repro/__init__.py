"""repro — Incremental Discovery of Prominent Situational Facts.

A complete reproduction of Sultana, Hassan, Li, Yang & Yu (ICDE 2014):
streaming detection of constraint–measure pairs that make each newly
arrived tuple a *contextual skyline tuple*, ranked by prominence.

Quickstart
----------
>>> from repro import DiscoveryConfig, FactDiscoverer, TableSchema
>>> schema = TableSchema(
...     dimensions=("player", "month", "team", "opp_team"),
...     measures=("points", "assists", "rebounds"),
... )
>>> engine = FactDiscoverer(schema, algorithm="stopdown",
...                         config=DiscoveryConfig(max_bound_dims=2))
>>> facts = engine.observe({"player": "Wesley", "month": "Feb",
...                         "team": "Celtics", "opp_team": "Nets",
...                         "points": 12, "assists": 13, "rebounds": 5})

See ``examples/`` for realistic scenarios and ``benchmarks/`` for the
paper's full experimental suite.
"""

from .algorithms import ALGORITHMS, DiscoveryAlgorithm, make_algorithm
from .core import (
    MAX,
    MIN,
    ComparisonOutcome,
    ColumnarContextCounter,
    Constraint,
    ContextCounter,
    DiscoveryConfig,
    FactDiscoverer,
    FactSet,
    Record,
    SchemaError,
    SituationalFact,
    Table,
    TableSchema,
    compare,
    contextual_skyline,
    dominates,
)
from .metrics import OpCounters

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "DiscoveryAlgorithm",
    "make_algorithm",
    "MAX",
    "MIN",
    "ComparisonOutcome",
    "ColumnarContextCounter",
    "Constraint",
    "ContextCounter",
    "DiscoveryConfig",
    "FactDiscoverer",
    "FactSet",
    "Record",
    "SchemaError",
    "SituationalFact",
    "Table",
    "TableSchema",
    "compare",
    "contextual_skyline",
    "dominates",
    "OpCounters",
    "__version__",
]
