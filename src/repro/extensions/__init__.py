"""Extensions beyond the paper's core: sliding windows, aggregates,
snapshot persistence (all anchored on the §VIII future-work list)."""

from .aggregates import AggregateFactDiscoverer, GroupSpec
from .snapshot import load_engine, save_engine
from .windowed import WindowedFactDiscoverer

__all__ = [
    "WindowedFactDiscoverer",
    "AggregateFactDiscoverer",
    "GroupSpec",
    "save_engine",
    "load_engine",
]
