"""Sliding-window fact discovery (built on the §VIII deletion extension).

Journalistic contexts are often time-bounded ("the best performance in
the last five seasons").  :class:`WindowedFactDiscoverer` keeps only the
most recent ``window`` tuples live: each arrival beyond the horizon
retracts the oldest tuple, so every reported fact is a statement about
the window, not all history.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Mapping, Optional

from ..core.config import DiscoveryConfig
from ..core.engine import FactDiscoverer
from ..core.facts import SituationalFact
from ..core.schema import TableSchema


class WindowedFactDiscoverer:
    """A :class:`FactDiscoverer` over a count-based sliding window.

    Parameters
    ----------
    schema, algorithm, config:
        Passed through to the underlying engine.
    window:
        Number of most-recent tuples kept live (must be ≥ 1).

    Examples
    --------
    >>> from repro import TableSchema
    >>> engine = WindowedFactDiscoverer(TableSchema(("d",), ("m",)), window=3)
    >>> for v in (5, 1, 1, 1):
    ...     _ = engine.observe({"d": "x", "m": v})
    >>> len(engine)  # the 5 has slid out
    3
    """

    def __init__(
        self,
        schema: TableSchema,
        window: int,
        algorithm: str = "stopdown",
        config: Optional[DiscoveryConfig] = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.engine = FactDiscoverer(schema, algorithm=algorithm, config=config)
        self._live: Deque[int] = deque()

    def observe(self, row: Mapping[str, object]) -> List[SituationalFact]:
        """Process one arrival; evict the oldest tuple when the window
        overflows (eviction happens *before* discovery so the new tuple
        is compared only against live ones)."""
        while len(self._live) >= self.window:
            self.engine.delete(self._live.popleft())
        facts = self.engine.observe(row)
        newest = self.engine.table[len(self.engine.table) - 1]
        self._live.append(newest.tid)
        return facts

    def observe_all(self, rows: Iterable[Mapping[str, object]]) -> List[List[SituationalFact]]:
        return [self.observe(row) for row in rows]

    def __len__(self) -> int:
        return len(self._live)

    @property
    def live_tids(self) -> List[int]:
        """Arrival ids currently inside the window, oldest first."""
        return list(self._live)
