"""Sliding-window fact discovery (built on the §VIII deletion extension).

Journalistic contexts are often time-bounded ("the best performance in
the last five seasons").  Windowing is implemented by
:class:`repro.api.middleware.WindowMiddleware`, a composable layer over
any :class:`~repro.core.engine_protocol.Engine`;
:class:`WindowedFactDiscoverer` remains as the back-compat constructor
for the common case (window over an in-proc engine).  Prefer the
facade::

    spec = EngineSpec(schema, window=300, algorithm="stopdown")
    engine = open_engine(spec)
"""

from __future__ import annotations

import warnings
from typing import Iterable, List, Mapping, Optional

from ..api.middleware import WindowMiddleware
from ..api.spec import EngineSpec
from ..core.config import DiscoveryConfig
from ..core.engine import FactDiscoverer
from ..core.facts import SituationalFact
from ..core.schema import TableSchema


class WindowedFactDiscoverer(WindowMiddleware):
    """A windowed :class:`FactDiscoverer` (back-compat shim over
    :class:`~repro.api.middleware.WindowMiddleware`).

    Parameters
    ----------
    schema, algorithm, config:
        Passed through to the underlying engine.
    window:
        Number of most-recent tuples kept live (must be ≥ 1).

    Examples
    --------
    >>> from repro import TableSchema
    >>> engine = WindowedFactDiscoverer(TableSchema(("d",), ("m",)), window=3)
    >>> for v in (5, 1, 1, 1):
    ...     _ = engine.observe({"d": "x", "m": v})
    >>> len(engine)  # the 5 has slid out
    3
    """

    def __init__(
        self,
        schema: TableSchema,
        window: int,
        algorithm: str = "stopdown",
        config: Optional[DiscoveryConfig] = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        spec = EngineSpec(
            schema=schema,
            algorithm=algorithm,
            config=config or DiscoveryConfig(),
            window=window,
        )
        inner = FactDiscoverer(schema, algorithm=algorithm, config=config)
        super().__init__(inner, window, spec=spec)

    @property
    def engine(self) -> FactDiscoverer:
        """The wrapped in-proc engine (legacy attribute)."""
        return self.inner

    def observe_all(
        self, rows: Iterable[Mapping[str, object]]
    ) -> List[List[SituationalFact]]:
        """Deprecated alias of :meth:`observe_many`."""
        warnings.warn(
            "WindowedFactDiscoverer.observe_all is deprecated; "
            "use observe_many",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.observe_many(rows)
