"""Aggregate situational facts (§VIII: "aggregates over tuples").

Base tuples are often too fine-grained for a story — the newsworthy
statement is about a *running aggregate* ("no team has ever piled up
this many points by the All-Star break").  Aggregation is implemented
by :class:`repro.api.middleware.AggregateMiddleware`, a composable layer
over any :class:`~repro.core.engine_protocol.Engine`: every time a
group's aggregate changes, its previous aggregate tuple is retracted and
the new one observed, so facts always describe current group totals.
:class:`AggregateFactDiscoverer` remains as the back-compat constructor;
prefer the facade::

    spec = EngineSpec(base_schema, aggregate=GroupSpec(...))
    engine = open_engine(spec)

This is a direct consumer of the deletion extension: without retraction
an updated group would leave its stale aggregate behind as a phantom
competitor.
"""

from __future__ import annotations

import warnings
from typing import Iterable, List, Mapping, Optional

from ..api.middleware import AggregateMiddleware
from ..api.spec import AGGREGATES, EngineSpec, GroupSpec
from ..core.config import DiscoveryConfig
from ..core.engine import FactDiscoverer
from ..core.facts import SituationalFact

__all__ = ["AGGREGATES", "GroupSpec", "AggregateFactDiscoverer"]


class AggregateFactDiscoverer(AggregateMiddleware):
    """Fact discovery over running group aggregates (back-compat shim
    over :class:`~repro.api.middleware.AggregateMiddleware`).

    Examples
    --------
    >>> spec = GroupSpec(("team",), {"total_points": ("points", "sum")})
    >>> agg = AggregateFactDiscoverer(spec)
    >>> facts = agg.observe({"team": "T1", "points": 30})
    """

    def __init__(
        self,
        spec: GroupSpec,
        algorithm: str = "stopdown",
        config: Optional[DiscoveryConfig] = None,
    ) -> None:
        base_schema = spec.base_schema()
        engine_spec = EngineSpec(
            schema=base_schema,
            algorithm=algorithm,
            config=config or DiscoveryConfig(),
            aggregate=spec,
        )
        inner = FactDiscoverer(
            spec.discovery_schema(), algorithm=algorithm, config=config
        )
        super().__init__(inner, spec, base_schema=base_schema, spec=engine_spec)

    @property
    def engine(self) -> FactDiscoverer:
        """The wrapped in-proc engine over the aggregate relation
        (legacy attribute)."""
        return self.inner

    def observe_all(
        self, rows: Iterable[Mapping[str, object]]
    ) -> List[List[SituationalFact]]:
        """Deprecated alias of :meth:`observe_many`."""
        warnings.warn(
            "AggregateFactDiscoverer.observe_all is deprecated; "
            "use observe_many",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.observe_many(rows)
