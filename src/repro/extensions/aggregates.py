"""Aggregate situational facts (§VIII: "aggregates over tuples").

Base tuples are often too fine-grained for a story — the newsworthy
statement is about a *running aggregate* ("no team has ever piled up
this many points by the All-Star break").  :class:`AggregateFactDiscoverer`
maintains group aggregates over the base stream and runs fact discovery
on the *aggregate* relation: every time a group's aggregate changes, its
previous aggregate tuple is retracted and the new one observed, so
facts always describe current group totals.

This is a direct consumer of the deletion extension: without retraction
an updated group would leave its stale aggregate behind as a phantom
competitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.config import DiscoveryConfig
from ..core.engine import FactDiscoverer
from ..core.facts import SituationalFact
from ..core.schema import TableSchema

#: Supported aggregate functions over a base measure.
AGGREGATES = ("sum", "max", "min", "count", "avg")


@dataclass(frozen=True)
class GroupSpec:
    """How to roll base rows up into aggregate tuples.

    Attributes
    ----------
    group_by:
        Base dimension attributes identifying a group (they become the
        aggregate relation's dimensions).
    aggregations:
        Mapping ``output_measure_name -> (base_measure, function)`` with
        function one of :data:`AGGREGATES`.
    """

    group_by: Tuple[str, ...]
    aggregations: Mapping[str, Tuple[str, str]]

    def __post_init__(self) -> None:
        if not self.group_by:
            raise ValueError("group_by needs at least one attribute")
        if not self.aggregations:
            raise ValueError("at least one aggregation required")
        for name, (base, fn) in self.aggregations.items():
            if fn not in AGGREGATES:
                raise ValueError(
                    f"aggregation {name!r} uses unknown function {fn!r}; "
                    f"choose from {AGGREGATES}"
                )


class _GroupState:
    """Running aggregate state for one group."""

    __slots__ = ("count", "sums", "maxes", "mins")

    def __init__(self, measures: Sequence[str]) -> None:
        self.count = 0
        self.sums: Dict[str, float] = {m: 0.0 for m in measures}
        self.maxes: Dict[str, float] = {}
        self.mins: Dict[str, float] = {}

    def update(self, row: Mapping[str, object], measures: Sequence[str]) -> None:
        self.count += 1
        for m in measures:
            value = float(row[m])  # type: ignore[arg-type]
            self.sums[m] += value
            if m not in self.maxes or value > self.maxes[m]:
                self.maxes[m] = value
            if m not in self.mins or value < self.mins[m]:
                self.mins[m] = value

    def value(self, base: str, fn: str) -> float:
        if fn == "sum":
            return self.sums[base]
        if fn == "max":
            return self.maxes[base]
        if fn == "min":
            return self.mins[base]
        if fn == "count":
            return float(self.count)
        return self.sums[base] / self.count  # avg


class AggregateFactDiscoverer:
    """Fact discovery over running group aggregates.

    Examples
    --------
    >>> spec = GroupSpec(("team",), {"total_points": ("points", "sum")})
    >>> agg = AggregateFactDiscoverer(spec)
    >>> facts = agg.observe({"team": "T1", "points": 30})
    """

    def __init__(
        self,
        spec: GroupSpec,
        algorithm: str = "stopdown",
        config: Optional[DiscoveryConfig] = None,
    ) -> None:
        self.spec = spec
        self._base_measures = sorted({base for base, _fn in spec.aggregations.values()})
        self.schema = TableSchema(
            dimensions=spec.group_by,
            measures=tuple(spec.aggregations),
        )
        self.engine = FactDiscoverer(self.schema, algorithm=algorithm, config=config)
        self._groups: Dict[Tuple[object, ...], _GroupState] = {}
        self._live_tid: Dict[Tuple[object, ...], int] = {}

    def observe(self, row: Mapping[str, object]) -> List[SituationalFact]:
        """Fold one base row into its group and rediscover facts for the
        group's updated aggregate tuple."""
        key = tuple(row[a] for a in self.spec.group_by)
        state = self._groups.get(key)
        if state is None:
            state = _GroupState(self._base_measures)
            self._groups[key] = state
        state.update(row, self._base_measures)

        # Retract the group's previous aggregate (if any), then observe
        # the fresh one.
        old_tid = self._live_tid.get(key)
        if old_tid is not None:
            self.engine.delete(old_tid)
        agg_row: Dict[str, object] = dict(zip(self.spec.group_by, key))
        for name, (base, fn) in self.spec.aggregations.items():
            agg_row[name] = state.value(base, fn)
        facts = self.engine.observe(agg_row)
        self._live_tid[key] = self.engine.table[len(self.engine.table) - 1].tid
        return facts

    def observe_all(self, rows: Iterable[Mapping[str, object]]) -> List[List[SituationalFact]]:
        return [self.observe(row) for row in rows]

    def group_count(self) -> int:
        """Number of live groups (= live aggregate tuples)."""
        return len(self._groups)

    def aggregate_row(self, key: Tuple[object, ...]) -> Dict[str, object]:
        """Current aggregate tuple of ``key`` (for inspection)."""
        state = self._groups[key]
        out: Dict[str, object] = dict(zip(self.spec.group_by, key))
        for name, (base, fn) in self.spec.aggregations.items():
            out[name] = state.value(base, fn)
        return out
