"""Engine snapshots: persist a discovery session and resume it later.

The snapshot is *logical*: schema, config, algorithm name, and the live
rows in arrival order, as one JSON document.  Loading replays the rows
through a fresh engine, which rebuilds every store exactly (the
algorithms are deterministic functions of the stream).  This trades
reload CPU for a format that is human-readable, diff-able, and immune
to internal-layout changes — the usual choice for moderate table sizes;
larger deployments would checkpoint the µ stores themselves (the file
store already persists them).

Arrival ids are renumbered densely on load (0..n-1); fact outputs are
unaffected since discovery depends only on tuple order and content.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from ..core.config import DiscoveryConfig
from ..core.engine import FactDiscoverer
from ..core.schema import TableSchema

_FORMAT_VERSION = 1


def save_engine(engine: FactDiscoverer, path: str) -> None:
    """Write a JSON snapshot of ``engine`` to ``path``."""
    schema = engine.schema
    rows = [record.as_dict(schema) for record in engine.table]
    doc = {
        "format_version": _FORMAT_VERSION,
        "algorithm": engine.algorithm.name,
        "schema": {
            "dimensions": list(schema.dimensions),
            "measures": list(schema.measures),
            "preferences": dict(schema.preferences),
        },
        "config": asdict(engine.config),
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)


def load_engine(path: str, score: bool = True) -> FactDiscoverer:
    """Rebuild a :class:`FactDiscoverer` from a snapshot written by
    :func:`save_engine`.

    Raises ``ValueError`` for unknown snapshot versions.
    """
    with open(path) as fh:
        doc = json.load(fh)
    version = doc.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    schema = TableSchema(
        dimensions=tuple(doc["schema"]["dimensions"]),
        measures=tuple(doc["schema"]["measures"]),
        preferences=doc["schema"]["preferences"],
    )
    config = DiscoveryConfig(**doc["config"])
    engine = FactDiscoverer(
        schema, algorithm=doc["algorithm"], config=config, score=score
    )
    for row in doc["rows"]:
        engine.observe(row)
    return engine
