"""Engine snapshots: persist a discovery session and resume it later.

The snapshot is *logical*: schema, config, algorithm name, and the live
rows in arrival order, as one JSON document.  Loading replays the rows
through a fresh engine, which rebuilds every store exactly (the
algorithms are deterministic functions of the stream).  This trades
reload CPU for a format that is human-readable, diff-able, and immune
to internal-layout changes — the usual choice for moderate table sizes;
larger deployments would checkpoint the µ stores themselves (the file
store already persists them).

Format v2 adds a ``meta`` section: the engine's ``score`` flag and the
serving configuration (engine kind, worker count, execution mode) so a
:class:`~repro.service.sharding.ShardedDiscoverer` checkpoint restores
as a sharded service — the round-trip behind
:class:`~repro.service.server.StreamServer`'s periodic checkpointing.
Version-1 files (no ``meta``) still load with the old defaults.

Arrival ids are renumbered densely on load (0..n-1); fact outputs are
unaffected since discovery depends only on tuple order and content.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Union

from ..core.config import DiscoveryConfig
from ..core.engine import FactDiscoverer
from ..core.schema import TableSchema

_FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)

#: Rows per replay block on load (observe_many is output-identical to
#: the row-at-a-time loop; batching just amortises the rebuild).
_REPLAY_BATCH = 512


def save_engine(engine, path: str) -> None:
    """Write a JSON snapshot of ``engine`` to ``path``.

    Accepts a :class:`FactDiscoverer` or a
    :class:`~repro.service.sharding.ShardedDiscoverer` (anything with
    ``schema`` / ``config`` / ``table`` / ``score`` and an algorithm
    name).
    """
    schema = engine.schema
    rows = [record.as_dict(schema) for record in engine.table]
    algorithm = getattr(engine, "algorithm_name", None)
    meta = {"score": bool(getattr(engine, "score", True))}
    if algorithm is None:
        algorithm = engine.algorithm.name
        meta["engine"] = "single"
    else:
        meta["engine"] = "sharded"
        meta["n_workers"] = engine.n_workers
        meta["mode"] = engine.mode
    doc = {
        "format_version": _FORMAT_VERSION,
        "algorithm": algorithm,
        "meta": meta,
        "schema": {
            "dimensions": list(schema.dimensions),
            "measures": list(schema.measures),
            "preferences": dict(schema.preferences),
        },
        "config": asdict(engine.config),
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)


def load_engine(path: str, score=None):
    """Rebuild an engine from a snapshot written by :func:`save_engine`.

    Returns a :class:`FactDiscoverer`, or a
    :class:`~repro.service.sharding.ShardedDiscoverer` when the snapshot
    was taken from one (v2 ``meta`` section).  ``score`` overrides the
    persisted flag when given; v1 snapshots carry no flag and default to
    scored.  Raises ``ValueError`` for unknown snapshot versions.
    """
    with open(path) as fh:
        doc = json.load(fh)
    version = doc.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported snapshot version {version!r} "
            f"(this build reads versions {_READABLE_VERSIONS})"
        )
    schema = TableSchema(
        dimensions=tuple(doc["schema"]["dimensions"]),
        measures=tuple(doc["schema"]["measures"]),
        preferences=doc["schema"]["preferences"],
    )
    config = DiscoveryConfig(**doc["config"])
    meta = doc.get("meta", {})
    if score is None:
        score = bool(meta.get("score", True))
    if meta.get("engine") == "sharded":
        from ..service.sharding import ShardedDiscoverer

        engine: Union[FactDiscoverer, ShardedDiscoverer] = ShardedDiscoverer(
            schema,
            config,
            n_workers=int(meta.get("n_workers", 2)),
            mode=meta.get("mode", "serial"),
            score=score,
        )
    else:
        engine = FactDiscoverer(
            schema, algorithm=doc["algorithm"], config=config, score=score
        )
    rows = doc["rows"]
    for start in range(0, len(rows), _REPLAY_BATCH):
        engine.observe_many(rows[start : start + _REPLAY_BATCH])
    return engine
