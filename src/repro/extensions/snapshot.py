"""Engine snapshots: persist a discovery session and resume it later.

The snapshot is *logical*: the engine's declarative
:class:`~repro.api.spec.EngineSpec` plus the input rows in arrival
order, as one JSON document.  Loading re-opens the spec through
:func:`repro.api.open_engine` and replays the rows, which rebuilds every
store exactly (the algorithms are deterministic functions of the
stream).  This trades reload CPU for a format that is human-readable,
diff-able, and immune to internal-layout changes — the usual choice for
moderate table sizes; larger deployments would checkpoint the µ stores
themselves (the file store already persists them).

Format history
--------------
* **v3** (current) embeds the full ``EngineSpec`` (``spec`` section), so
  *any* composition — single, sharded, windowed, aggregate — round-trips
  through a checkpoint.  The persisted rows are the engine's replay
  journal (:meth:`EngineBase.snapshot_rows`): the live table for most
  engines, the base-row journal for aggregate engines (their table holds
  derived tuples that must not be re-aggregated).
* **v2** added a ``meta`` section (scored flag, engine kind / worker
  count / execution mode) so sharded checkpoints restored sharded.
* **v1** carried schema / config / algorithm / rows only.

All three versions load; v1/v2 documents are translated to an
``EngineSpec`` on the way in.

Arrival ids are renumbered densely on load (0..n-1); fact outputs are
unaffected since discovery depends only on tuple order and content.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from ..api.spec import EngineSpec, ShardingSpec
from ..core.engine_protocol import Engine
from ..service import faults

_FORMAT_VERSION = 3
_READABLE_VERSIONS = (1, 2, 3)

#: Rows per replay block on load (observe_many is output-identical to
#: the row-at-a-time loop; batching just amortises the rebuild).
_REPLAY_BATCH = 512


def save_engine(
    engine: Engine, path: str, journal_seq: Optional[int] = None
) -> None:
    """Write a JSON snapshot of ``engine`` to ``path``, atomically and
    crash-consistently.

    Accepts any :class:`~repro.core.engine_protocol.Engine` — the spec
    (``engine.spec``) and the replay journal (``engine.snapshot_rows()``,
    falling back to the live table) fully describe the session.

    The document lands via temp-file + fsync + ``os.replace`` +
    directory fsync, so a crash at *any* byte boundary leaves either
    the complete new snapshot or the previous one untouched — never a
    torn file at ``path``.

    ``journal_seq`` stamps the last write-ahead-journal sequence this
    snapshot covers (see :mod:`repro.service.journal`): recovery then
    replays exactly the journal suffix past it.
    """
    spec = engine.spec
    rows_of = getattr(engine, "snapshot_rows", None)
    if rows_of is not None:
        rows = rows_of()
    else:  # duck-typed legacy engine
        rows = [record.as_dict(engine.schema) for record in engine.table]
    doc = {
        "format_version": _FORMAT_VERSION,
        "spec": spec.to_dict(),
        "rows": rows,
    }
    if journal_seq is not None:
        doc["journal_seq"] = int(journal_seq)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.flush()
            os.fsync(fh.fileno())
        fault = faults.fire("checkpoint.write")
        if fault is not None and fault.action == "corrupt":
            # Simulate a crash mid-write: a torn temp never replaces
            # the previous checkpoint.
            with open(tmp, "r+b") as fh:
                fh.truncate(max(1, os.path.getsize(tmp) // 2))
            raise OSError("injected fault: checkpoint write torn")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    directory = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic platforms
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - non-fsyncable directory
        pass
    finally:
        os.close(fd)


def _read_snapshot_doc(path: str) -> dict:
    """Parse a snapshot file, translating damage into an actionable
    ``ValueError`` (truncated/garbled JSON must never surface as a
    bare ``JSONDecodeError`` deep in a recovery path)."""
    with open(path) as fh:
        try:
            doc = json.load(fh)
        except ValueError as exc:
            raise ValueError(
                f"snapshot {path!r} is corrupt or truncated "
                f"(not valid JSON: {exc}); the file was probably cut "
                f"short by a crash or partial copy — restore it from a "
                f"backup or recover from the write-ahead journal"
            ) from None
    if not isinstance(doc, dict) or "format_version" not in doc:
        raise ValueError(
            f"snapshot {path!r} parses as JSON but is not a snapshot "
            f"document (no format_version); was the wrong file passed?"
        )
    return doc


def snapshot_journal_seq(path: str) -> int:
    """The journal sequence a snapshot covers (0 when written without
    a journal — replay then starts from the beginning)."""
    return int(_read_snapshot_doc(path).get("journal_seq", 0))


def load_engine(path: str, score: Optional[bool] = None) -> Engine:
    """Rebuild an engine from a snapshot written by :func:`save_engine`.

    Returns whatever composition the snapshot describes, built via
    :func:`repro.api.open_engine` — a sharded snapshot restores sharded,
    a windowed one windowed, and so on.  ``score`` overrides the
    persisted flag when given; v1 snapshots carry no flag and default to
    scored.  Raises ``ValueError`` for unknown snapshot versions and for
    corrupt/truncated files — a damaged snapshot never silently restores
    a partial table.
    """
    doc = _read_snapshot_doc(path)
    version = doc.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported snapshot version {version!r} "
            f"(this build reads versions {_READABLE_VERSIONS})"
        )
    try:
        if version == 3:
            spec = EngineSpec.from_dict(doc["spec"])
        else:
            spec = _spec_from_legacy(doc)
        rows = doc["rows"]
    except (KeyError, TypeError) as exc:
        raise ValueError(
            f"snapshot {path!r} is malformed: missing or invalid "
            f"section ({exc!r}); the file may have been hand-edited or "
            f"corrupted — restore it from a backup"
        ) from None
    spec = spec.with_score(score)

    from ..api.facade import open_engine

    engine = open_engine(spec)
    for start in range(0, len(rows), _REPLAY_BATCH):
        engine.observe_many(rows[start : start + _REPLAY_BATCH])
    return engine


def _spec_from_legacy(doc: dict) -> EngineSpec:
    """Translate a v1/v2 document into an :class:`EngineSpec`."""
    meta = doc.get("meta", {})
    sharding = None
    algorithm = doc["algorithm"]
    if meta.get("engine") == "sharded":
        sharding = ShardingSpec(
            workers=int(meta.get("n_workers", 2)),
            mode=meta.get("mode", "serial"),
        )
        algorithm = "svec"
    spec_doc = {
        "schema": doc["schema"],
        "algorithm": algorithm,
        "config": doc["config"],
        "score": bool(meta.get("score", True)),
    }
    spec = EngineSpec.from_dict(spec_doc)
    if sharding is not None:
        from dataclasses import replace

        spec = replace(spec, sharding=sharding)
    return spec
