"""Constraints and the subsumption partial order (paper Defs. 1, 5, 6).

A constraint ``C`` over dimension space ``D`` is a conjunctive expression
``d1=v1 ∧ … ∧ dn=vn`` where each ``vi`` is a domain value or ``*``
(unbound).  We represent ``C`` as an immutable tuple of values with
``None`` standing for ``*`` — hashable, cheap to compare, and the lattice
operations reduce to tuple/bitmask arithmetic.

Within the lattice of constraints *satisfied by a given tuple* ``t``
(Def. 7), every constraint is uniquely identified by the bitmask of its
bound positions, because each bound position must carry ``t``'s value.
:mod:`repro.core.lattice` exploits that encoding; this module provides
the general, tuple-valued view.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from .schema import TableSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .record import Record

#: The unbound marker ``*`` of the paper.
UNBOUND = None


class Constraint:
    """A conjunctive constraint ``⟨v1, …, vn⟩`` with ``None`` = ``*``.

    Instances are immutable and hashable so they can key the per-pair
    skyline stores ``µ_{C,M}``.

    Examples
    --------
    >>> c = Constraint(("a1", None, "c1"))
    >>> c.bound_count
    2
    >>> c.is_top
    False
    """

    __slots__ = ("values", "_mask", "_hash")

    def __init__(self, values: Sequence[object]) -> None:
        self.values: Tuple[object, ...] = tuple(values)
        mask = 0
        for i, v in enumerate(self.values):
            if v is not UNBOUND:
                mask |= 1 << i
        self._mask = mask
        self._hash = hash(self.values)

    @classmethod
    def from_values_mask(cls, values: Tuple[object, ...], mask: int) -> "Constraint":
        """Fast constructor for callers that already know the bound mask.

        Skips the per-position scan of ``__init__`` — the demotion-repair
        and lattice-traversal hot paths build thousands of constraints
        per arrival from (values, mask) pairs they derive bit-wise.
        ``values`` must be a tuple whose non-``None`` positions are
        exactly the bits of ``mask``.
        """
        self = object.__new__(cls)
        self.values = values
        self._mask = mask
        self._hash = hash(values)
        return self

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constraint) and self.values == other.values

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join("*" if v is UNBOUND else repr(v) for v in self.values)
        return f"Constraint(⟨{inner}⟩)"

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of dimension attributes ``n = |D|``."""
        return len(self.values)

    @property
    def bound_mask(self) -> int:
        """Bitmask of bound positions (bit ``i`` set iff ``di`` is bound)."""
        return self._mask

    @property
    def bound_count(self) -> int:
        """``bound(C)`` — the number of bound attributes (Def. 1)."""
        return bin(self._mask).count("1")

    @property
    def is_top(self) -> bool:
        """True for ``⊤ = ⟨*, …, *⟩``, the most general constraint."""
        return self._mask == 0

    @classmethod
    def top(cls, arity: int) -> "Constraint":
        """The top element ``⊤`` for an ``arity``-dimensional space."""
        return cls((UNBOUND,) * arity)

    @classmethod
    def from_mapping(
        cls, schema: TableSchema, bindings: Mapping[str, object]
    ) -> "Constraint":
        """Build a constraint from ``{dimension_name: value}`` bindings."""
        values: list = [UNBOUND] * schema.n_dimensions
        for name, value in bindings.items():
            values[schema.dimension_index(name)] = value
        return cls(values)

    def to_mapping(self, schema: TableSchema) -> dict:
        """Bound attributes as ``{dimension_name: value}`` (readable form)."""
        return {
            schema.dimensions[i]: v
            for i, v in enumerate(self.values)
            if v is not UNBOUND
        }

    # ------------------------------------------------------------------
    # Satisfaction and subsumption
    # ------------------------------------------------------------------
    def satisfied_by(self, record: "Record") -> bool:
        """True iff the record's dimension values satisfy this constraint
        (Def. 4: every bound attribute matches)."""
        for i, v in enumerate(self.values):
            if v is not UNBOUND and record.dims[i] != v:
                return False
        return True

    def subsumed_by(self, other: "Constraint") -> bool:
        """``self ⊑ other`` (Def. 5): other is equal or more general.

        Holds iff every attribute bound in ``other`` is bound to the same
        value in ``self``.
        """
        for i, v in enumerate(other.values):
            if v is not UNBOUND and self.values[i] != v:
                return False
        return True

    def strictly_subsumed_by(self, other: "Constraint") -> bool:
        """``self ⊏ other`` — subsumed and not equal (Def. 5 cond. 2)."""
        return self != other and self.subsumed_by(other)

    # ------------------------------------------------------------------
    # Lattice neighbours (general poset view; Def. 6)
    # ------------------------------------------------------------------
    def parents(self) -> Iterator["Constraint"]:
        """Constraints obtained by unbinding one bound attribute
        (``P_C``, each has one fewer bound attribute)."""
        for i, v in enumerate(self.values):
            if v is not UNBOUND:
                vals = list(self.values)
                vals[i] = UNBOUND
                yield Constraint(vals)

    def ancestors(self) -> Iterator["Constraint"]:
        """All proper ancestors ``A_C`` — every way of unbinding a
        non-empty subset of bound attributes (``2^bound(C) - 1`` items)."""
        bound_positions = [i for i, v in enumerate(self.values) if v is not UNBOUND]
        k = len(bound_positions)
        for subset in range(1, 1 << k):
            vals = list(self.values)
            for j in range(k):
                if subset & (1 << j):
                    vals[bound_positions[j]] = UNBOUND
            yield Constraint(vals)

    def children_for(self, record: "Record") -> Iterator["Constraint"]:
        """Children within ``C^t`` for tuple ``t=record`` (Def. 7):
        bind one currently-unbound attribute to the record's value."""
        for i, v in enumerate(self.values):
            if v is UNBOUND:
                vals = list(self.values)
                vals[i] = record.dims[i]
                yield Constraint(vals)

    def bind(self, index: int, value: object) -> "Constraint":
        """Return a copy with dimension ``index`` bound to ``value``."""
        vals = list(self.values)
        vals[index] = value
        return Constraint(vals)

    def unbind(self, index: int) -> "Constraint":
        """Return a copy with dimension ``index`` unbound."""
        vals = list(self.values)
        vals[index] = UNBOUND
        return Constraint(vals)

    def describe(self, schema: TableSchema) -> str:
        """Render like the paper's prose, e.g. ``month=Feb ∧ team=Celtics``;
        ``⊤`` renders as ``(no constraint)``."""
        if self.is_top:
            return "(no constraint)"
        parts = [
            f"{schema.dimensions[i]}={v}"
            for i, v in enumerate(self.values)
            if v is not UNBOUND
        ]
        return " ∧ ".join(parts)


def bindable_positions(dims: Sequence[object]) -> int:
    """Bitmask of positions whose value can actually be bound.

    A dimension value equal to the unbound marker collapses every mask
    covering it onto the constraint that leaves the position free, so
    the lattice of *distinct* constraints in ``C^t`` is the boolean
    lattice over this mask.  The traversal algorithms prune and test on
    ``mask & bindable_positions`` — the collapsed canonical mask — so
    duplicate raw masks share one pruning state (see the unbindable
    dimension-value fix discussed in ROADMAP).
    """
    mask = 0
    for i, v in enumerate(dims):
        if v is not UNBOUND:
            mask |= 1 << i
    return mask


def constraint_for_record(record: "Record", mask: int) -> Constraint:
    """The unique constraint in ``C^t`` with bound-position bitmask ``mask``.

    This is the bridge between the bitmask encoding used by the traversal
    algorithms and the value-tuple encoding used by the stores.
    """
    dims = record.dims
    values = tuple(
        dims[i] if mask & (1 << i) else UNBOUND for i in range(len(dims))
    )
    if UNBOUND in dims:
        # Pathological: a dimension value equal to the unbound marker
        # cannot be bound — rescan so bound_mask matches the values.
        return Constraint(values)
    return Constraint.from_values_mask(values, mask)


def satisfied_constraints(record: "Record", max_bound: Optional[int] = None) -> Iterator[Constraint]:
    """Enumerate ``C^t`` — all ``2^n`` constraints satisfied by ``record``
    (paper Alg. 1), optionally capped at ``max_bound`` bound attributes
    (the paper's ``d̂`` parameter, §VI-A).

    Generation order matches Alg. 1: level by level from ``⊤`` downward
    (breadth-first), never generating a constraint twice.
    """
    from .config import effective_bound_cap
    from .lattice import masks_by_level

    n = len(record.dims)
    levels = masks_by_level(n)
    cap = effective_bound_cap(n, max_bound)
    for level in levels[: cap + 1]:
        for mask in level:
            yield constraint_for_record(record, mask)
