"""Relational schema for situational-fact discovery.

The paper (Sec. III) models an append-only relation ``R(D; M)`` where ``D``
is a set of *dimension* attributes (categorical, used to form conjunctive
constraints) and ``M`` is a set of *measure* attributes (numeric, used for
skyline dominance).  :class:`TableSchema` captures that split plus the
per-measure preference direction ("better than" in Def. 2 may mean larger
or smaller, e.g. NBA ``points`` vs ``fouls``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Sequence, Tuple

#: Preference direction meaning "larger values are better".
MAX = "max"
#: Preference direction meaning "smaller values are better".
MIN = "min"

_VALID_PREFERENCES = (MAX, MIN)


class SchemaError(ValueError):
    """Raised for malformed schemas or rows that do not match a schema."""


@dataclass(frozen=True)
class TableSchema:
    """Schema of an append-only relation ``R(D; M)``.

    Parameters
    ----------
    dimensions:
        Ordered names of the dimension attributes ``D`` on which
        conjunctive constraints are specified.
    measures:
        Ordered names of the measure attributes ``M`` on which the
        dominance relation is defined.
    preferences:
        Optional mapping from measure name to :data:`MAX` (larger is
        better, the default) or :data:`MIN` (smaller is better).

    Examples
    --------
    >>> schema = TableSchema(
    ...     dimensions=("player", "season", "team"),
    ...     measures=("points", "fouls"),
    ...     preferences={"fouls": MIN},
    ... )
    >>> schema.n_dimensions, schema.n_measures
    (3, 2)
    """

    dimensions: Tuple[str, ...]
    measures: Tuple[str, ...]
    preferences: Mapping[str, str] = field(default_factory=dict)

    def __init__(
        self,
        dimensions: Sequence[str],
        measures: Sequence[str],
        preferences: Mapping[str, str] | None = None,
    ) -> None:
        object.__setattr__(self, "dimensions", tuple(dimensions))
        object.__setattr__(self, "measures", tuple(measures))
        object.__setattr__(self, "preferences", dict(preferences or {}))
        self._validate()

    def _validate(self) -> None:
        if not self.dimensions:
            raise SchemaError("schema needs at least one dimension attribute")
        if not self.measures:
            raise SchemaError("schema needs at least one measure attribute")
        seen = set(self.dimensions) | set(self.measures)
        if len(seen) != len(self.dimensions) + len(self.measures):
            raise SchemaError("attribute names must be unique across D and M")
        for name, direction in self.preferences.items():
            if name not in self.measures:
                raise SchemaError(f"preference for unknown measure {name!r}")
            if direction not in _VALID_PREFERENCES:
                raise SchemaError(
                    f"preference for {name!r} must be 'max' or 'min', got {direction!r}"
                )

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def n_dimensions(self) -> int:
        """Number of dimension attributes, ``|D|`` (paper: ``n``)."""
        return len(self.dimensions)

    @property
    def n_measures(self) -> int:
        """Number of measure attributes, ``|M|`` (paper: ``s``)."""
        return len(self.measures)

    @property
    def full_measure_mask(self) -> int:
        """Bitmask selecting every measure attribute (the full space ``M``)."""
        return (1 << self.n_measures) - 1

    def dimension_index(self, name: str) -> int:
        """Position of dimension ``name`` within :attr:`dimensions`."""
        try:
            return self.dimensions.index(name)
        except ValueError:
            raise SchemaError(f"unknown dimension attribute {name!r}") from None

    def measure_index(self, name: str) -> int:
        """Position of measure ``name`` within :attr:`measures`."""
        try:
            return self.measures.index(name)
        except ValueError:
            raise SchemaError(f"unknown measure attribute {name!r}") from None

    def preference(self, name: str) -> str:
        """Preference direction for measure ``name`` (default :data:`MAX`)."""
        if name not in self.measures:
            raise SchemaError(f"unknown measure attribute {name!r}")
        return self.preferences.get(name, MAX)

    def measure_signs(self) -> Tuple[int, ...]:
        """Per-measure sign: ``+1`` for max-preferred, ``-1`` for min-preferred.

        Measures are *normalised* at ingestion time by multiplying with this
        sign so that, internally, "larger is better" holds uniformly
        (the paper makes the same without-loss-of-generality assumption
        after Def. 2).
        """
        return tuple(1 if self.preference(m) == MAX else -1 for m in self.measures)

    def measure_mask(self, names: Iterable[str]) -> int:
        """Bitmask for the measure subspace given by ``names``."""
        mask = 0
        for name in names:
            mask |= 1 << self.measure_index(name)
        return mask

    def measure_names(self, mask: int) -> Tuple[str, ...]:
        """Measure names selected by bitmask ``mask`` (inverse of
        :meth:`measure_mask`)."""
        if mask < 0 or mask > self.full_measure_mask:
            raise SchemaError(f"measure mask {mask:#x} out of range")
        return tuple(
            name for i, name in enumerate(self.measures) if mask & (1 << i)
        )

    def project_row(self, row: Mapping[str, object]) -> Tuple[tuple, tuple]:
        """Split a mapping-style row into ``(dims, raw_measures)`` tuples.

        Raises :class:`SchemaError` when an attribute is missing.
        """
        try:
            dims = tuple(row[d] for d in self.dimensions)
        except KeyError as exc:
            raise SchemaError(f"row is missing dimension {exc.args[0]!r}") from None
        try:
            meas = tuple(row[m] for m in self.measures)
        except KeyError as exc:
            raise SchemaError(f"row is missing measure {exc.args[0]!r}") from None
        return dims, meas

    def describe(self) -> Dict[str, object]:
        """Human-readable summary used by ``repr`` and diagnostics."""
        return {
            "dimensions": list(self.dimensions),
            "measures": [
                f"{m} ({self.preference(m)})" for m in self.measures
            ],
        }
