"""`FactDiscoverer` — the library's main entry point.

Wires together a discovery algorithm (§IV–V), the incremental context
counter, prominence scoring and the reporting policy (§VII) behind one
streaming call::

    >>> from repro import DiscoveryConfig, FactDiscoverer, TableSchema
    >>> schema = TableSchema(("player", "team"), ("points", "assists"))
    >>> engine = FactDiscoverer(schema, algorithm="stopdown")
    >>> facts = engine.observe({"player": "Wesley", "team": "Celtics",
    ...                         "points": 12, "assists": 13})
    >>> len(facts) > 0
    True
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Iterable, List, Mapping, Optional, Union

from ..metrics.counters import OpCounters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..algorithms import DiscoveryAlgorithm
    from ..api.spec import EngineSpec
from .config import DiscoveryConfig
from .engine_protocol import EngineBase
from .facts import FactSet, SituationalFact
from .prominence import score_facts, select_reportable
from .record import Record
from .schema import TableSchema

Row = Union[Mapping[str, object], Record]


class FactDiscoverer(EngineBase):
    """Streaming discovery of prominent situational facts.

    Parameters
    ----------
    schema:
        The relation schema ``R(D; M)``.
    algorithm:
        Registry name (``"stopdown"``, ``"bottomup"``, …) or an
        already-constructed :class:`DiscoveryAlgorithm`.
    config:
        ``d̂``/``m̂`` caps, prominence threshold ``τ``, ``top_k``.
    score:
        When True (default) every fact is annotated with context and
        skyline cardinalities so prominence ranking works; turn off for
        raw ``S_t`` streaming at maximum speed.

    ``FactDiscoverer`` is the in-proc implementation of the uniform
    :class:`~repro.core.engine_protocol.Engine` protocol; prefer
    building engines declaratively via
    :func:`repro.api.open_engine` — this constructor remains as the
    back-compat entry point (and the facade's ``"single"`` backend).
    """

    kind = "single"

    def __init__(
        self,
        schema: TableSchema,
        algorithm: Union[str, DiscoveryAlgorithm] = "stopdown",
        config: Optional[DiscoveryConfig] = None,
        score: bool = True,
        **algorithm_kwargs,
    ) -> None:
        # Imported here to keep ``repro.core`` importable on its own
        # (``repro.algorithms`` imports back into the core package).
        from ..algorithms import DiscoveryAlgorithm, make_algorithm

        self.schema = schema
        self.config = config or DiscoveryConfig()
        if isinstance(algorithm, DiscoveryAlgorithm):
            self.algorithm = algorithm
        else:
            self.algorithm = make_algorithm(
                algorithm, schema, self.config, **algorithm_kwargs
            )
        self.context_counter = self.algorithm.make_context_counter(
            self.config.max_bound_dims
        )
        # The algorithm memoises C^t per dims tuple; when its d̂ cap
        # matches the counter's, registration reuses those constraints
        # instead of rebuilding 2^d̂ objects per arrival.
        self._share_constraints = (
            self.algorithm.bound_cap
            == self.config.effective_bound_cap(schema.n_dimensions)
        )
        if not score and (self.config.tau is not None or self.config.top_k is not None):
            raise ValueError(
                "tau/top_k reporting needs prominence scores; "
                "score=False would silently report nothing"
            )
        self.score = score

    # ------------------------------------------------------------------
    # Streaming API
    # ------------------------------------------------------------------
    def observe(self, row: Row) -> List[SituationalFact]:
        """Process one arriving tuple and return its reportable facts.

        The returned list honours the config's reporting policy: all
        ranked facts by default, the prominent ones when ``τ`` is set,
        or the top-k when ``top_k`` is set.
        """
        facts = self.facts_for(row)
        return select_reportable(facts, self.config)

    def facts_for(self, row: Row) -> FactSet:
        """Process one tuple and return the full (scored) ``S_t``."""
        facts = self.algorithm.process(row)
        self.context_counter.register(
            facts.record, self._constraints_of(facts.record)
        )
        if self.score:
            # Vectorized algorithms annotate the fact columns in one
            # bulk pass; everyone else goes through the generic
            # skyline_sizes + score_facts pair.
            if not self.algorithm.score_facts_inplace(
                facts, self.context_counter
            ):
                sizes = self.algorithm.skyline_sizes(facts)
                facts = score_facts(facts, self.context_counter, sizes)
        return facts

    def _constraints_of(self, record: Record):
        """The algorithm's memoised ``C^t`` for counter registration, or
        ``None`` when the caps differ and sharing would miscount."""
        if not self._share_constraints:
            return None
        return self.algorithm.constraint_cache(record).values()

    def observe_all(self, rows: Iterable[Row]) -> List[List[SituationalFact]]:
        """Deprecated alias of :meth:`observe_many` (same contract,
        slower path — it never engaged the batched machinery)."""
        warnings.warn(
            "FactDiscoverer.observe_all is deprecated; use observe_many "
            "(identical output, batched fast path)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.observe_many(rows)

    # ------------------------------------------------------------------
    # Batched streaming API
    # ------------------------------------------------------------------
    def observe_many(self, rows: Iterable[Row]) -> List[List[SituationalFact]]:
        """Batched :meth:`observe`: one reportable-fact list per row.

        Semantically identical to ``[self.observe(r) for r in rows]`` —
        each tuple is still discovered and scored against the relation
        as of *its own* arrival — but the batch size is announced to the
        algorithm upfront (:meth:`DiscoveryAlgorithm.reserve`), so
        vectorized algorithms amortise array growth and per-call
        overhead across the block.
        """
        return [
            select_reportable(facts, self.config)
            for facts in self.facts_for_many(rows)
        ]

    def facts_for_many(self, rows: Iterable[Row]) -> List[FactSet]:
        """Batched :meth:`facts_for`: one full (scored) ``S_t`` per row.

        With scoring enabled, prominence for row ``i`` must be measured
        against the relation state *at arrival ``i``*, so rows are still
        processed one by one (after one upfront capacity reservation) —
        but every per-arrival step stays on the algorithm's columnar
        machinery (vectorized discovery, the store's incremental
        skyline-cardinality index, the interned-key context counter), so
        scored blocks ingest at columnar speed.  With ``score=False``
        the whole block is handed to the algorithm's
        :meth:`DiscoveryAlgorithm.process_many` fast path and the
        context counter's batched registration.
        """
        rows = list(rows)
        if not self.score:
            out = self.algorithm.process_many(rows)
            self.context_counter.register_many([f.record for f in out])
            return out
        self.algorithm.reserve(len(rows))
        return [self.facts_for(row) for row in rows]

    def delete(self, tid: int) -> Record:
        """Remove a previously observed tuple (§VIII deletion extension).

        Repairs the algorithm's skyline stores — tuples the removed one
        was suppressing re-enter their contextual skylines — and reverses
        the context counts used for prominence.  Returns the removed
        record.
        """
        removed = self.algorithm.retract(tid)
        self.context_counter.unregister(removed, self._constraints_of(removed))
        return removed

    def delete_many(self, tids: Iterable[int]) -> List[Record]:
        """Grouped :meth:`delete` (window eviction, bulk expiry).

        Skyline repair stays per-tuple — each retraction must see the
        state the previous one left — but the columnar store defers its
        physical compaction to one pass over the whole group, so
        deleting ``k`` tuples costs one row-slide instead of ``k``.
        """
        removed = self.algorithm.retract_many(list(tids))
        for record in removed:
            self.context_counter.unregister(
                record, self._constraints_of(record)
            )
        return removed

    def update(self, tid: int, row: Mapping[str, object]) -> List[SituationalFact]:
        """Replace a previously observed tuple (§VIII "update of data").

        Implemented as retract-then-observe: the old version leaves every
        skyline it held (suppressed tuples re-enter), and the new version
        is discovered against the repaired state.  The updated tuple
        receives a fresh arrival id; returns its reportable facts.
        """
        self.delete(tid)
        return self.observe(row)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def counters(self) -> OpCounters:
        """The algorithm's operation counters."""
        return self.algorithm.counters

    @property
    def table(self):
        """The underlying append-only relation."""
        return self.algorithm.table

    def _derive_spec(self) -> "EngineSpec":
        """The declarative :class:`EngineSpec` rebuilding this engine
        (via :func:`repro.api.open_engine`); snapshot format v3 persists
        it so checkpoints restore the exact composition."""
        from ..api.spec import EngineSpec

        return EngineSpec(
            schema=self.schema,
            algorithm=self.algorithm.name,
            config=self.config,
            score=self.score,
            sweep_index=getattr(self.algorithm, "sweep_index_mode", "auto"),
        )

    def stats(self) -> dict:
        """Operational metrics snapshot (JSON-able)."""
        out = super().stats()
        out["algorithm"] = self.algorithm.name
        return out

    def __len__(self) -> int:
        return len(self.algorithm.table)

    def __repr__(self) -> str:
        return (
            f"FactDiscoverer(algorithm={self.algorithm.name!r}, "
            f"n={len(self.algorithm.table)})"
        )
