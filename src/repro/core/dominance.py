"""Dominance relation and the subspace partition of Proposition 4.

All measure values are normalised ("larger is better"), so dominance in a
subspace ``M`` (a bitmask over measure positions) is:

    ``t' ≻_M t``  iff  ``t'.m ≥ t.m`` for every ``m ∈ M`` and
                        ``t'.m > t.m`` for at least one ``m ∈ M``.

For the sharing algorithms (Sec. V-C), one full-space comparison of
``t`` and ``t'`` yields the three disjoint sets ``M>``, ``M<``, ``M=``
(here: bitmasks ``gt``, ``lt``, ``eq``), after which Proposition 4
decides dominance in *any* subspace with two bit-operations:

    ``t ≺_M t'``  iff  ``M ∩ M< ≠ ∅`` and ``M ∩ M> = ∅``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Sequence, Tuple

from .lattice import iter_submasks
from .record import Record


@dataclass(frozen=True)
class ComparisonOutcome:
    """Full-space partition of measures for an ordered pair ``(t, other)``.

    ``gt``/``lt``/``eq`` are bitmasks of positions where ``t``'s value is
    greater / less / equal, i.e. the paper's ``M>``, ``M<``, ``M=``.
    """

    gt: int
    lt: int
    eq: int

    def dominated_in(self, subspace: int) -> bool:
        """Proposition 4: is ``t`` dominated by ``other`` in ``subspace``?"""
        return bool(subspace & self.lt) and not (subspace & self.gt)

    def dominates_in(self, subspace: int) -> bool:
        """Symmetric direction: does ``t`` dominate ``other`` in
        ``subspace``?"""
        return bool(subspace & self.gt) and not (subspace & self.lt)

    def dominated_subspaces(self, universe: int) -> Iterator[int]:
        """All non-empty subspaces of ``universe`` in which ``t`` is
        dominated by ``other``: subsets of ``M< ∪ M=`` that intersect
        ``M<`` (Prop. 4 enumerated)."""
        allowed = (self.lt | self.eq) & universe
        for sub in iter_submasks(allowed):
            if sub & self.lt:
                yield sub


def compare(t: Record, other: Record) -> ComparisonOutcome:
    """Partition the full measure space for ``(t, other)`` in one pass."""
    gt = lt = eq = 0
    for i, (a, b) in enumerate(zip(t.values, other.values)):
        if a > b:
            gt |= 1 << i
        elif a < b:
            lt |= 1 << i
        else:
            eq |= 1 << i
    return ComparisonOutcome(gt, lt, eq)


def dominates(a: Record, b: Record, subspace: int) -> bool:
    """``a ≻_M b`` for bitmask subspace ``M`` (Def. 2).

    Empty subspaces never yield dominance.  Iterates set bits only
    (``mask & -mask`` isolates the lowest one), so sparse subspaces —
    the common case across the ``2^|M|`` lattice — cost exactly their
    popcount, not ``|M|`` shifts.
    """
    strict = False
    mask = subspace
    av = a.values
    bv = b.values
    while mask:
        bit = mask & -mask
        i = bit.bit_length() - 1
        va = av[i]
        vb = bv[i]
        if va < vb:
            return False
        if va > vb:
            strict = True
        mask ^= bit
    return strict


def dominated_by_any(t: Record, others: Sequence[Record], subspace: int) -> bool:
    """True iff any record of ``others`` dominates ``t`` in ``subspace``."""
    return any(dominates(o, t, subspace) for o in others)


@lru_cache(maxsize=65536)
def _cached_projection(values: Tuple[float, ...], subspace: int) -> Tuple[float, ...]:
    """Projection of a measure tuple onto ``subspace`` (memoised).

    Keyed on the value tuple itself, so identical measure vectors —
    ubiquitous in bounded-domain streams — share one cached projection
    across records and arrivals.
    """
    out = []
    mask = subspace
    while mask:
        bit = mask & -mask
        out.append(values[bit.bit_length() - 1])
        mask ^= bit
    return tuple(out)


def measure_projection(record: Record, subspace: int) -> Tuple[float, ...]:
    """Normalised measure values of ``record`` restricted to ``subspace``,
    in ascending bit order."""
    return _cached_projection(record.values, subspace)
