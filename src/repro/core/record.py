"""Tuples (records) and the append-only relation.

A :class:`Record` is one row of ``R(D; M)``: an immutable pair of a
dimension-value tuple and a measure-value tuple, plus the tuple id that
orders arrivals.  Measure values are stored twice:

* ``raw`` — exactly as supplied by the caller, used for reporting;
* ``values`` — *normalised* by the schema's per-measure sign so that
  "larger is better" holds uniformly (paper, remark after Def. 2).

:class:`Table` is the append-only relation the paper streams tuples into.
It assigns tuple ids, normalises measures, and offers the relational
helpers (``sigma`` selection, context cardinalities) that algorithms and
the prominence ranker need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Mapping, Sequence, Tuple

from .schema import SchemaError, TableSchema


@dataclass(frozen=True, slots=True)
class Record:
    """One tuple of ``R(D; M)``.

    ``slots=True`` drops the per-instance ``__dict__``: streams hold
    millions of records and every algorithm's hot path walks them, so
    the smaller footprint and faster attribute loads are measurable.

    Attributes
    ----------
    tid:
        Arrival index (0-based); the paper's tuple subscript.
    dims:
        Dimension values, ordered as ``schema.dimensions``.
    values:
        Normalised measure values ("larger is better" on every attribute).
    raw:
        Measure values as supplied, for display.
    """

    tid: int
    dims: Tuple[object, ...]
    values: Tuple[float, ...]
    raw: Tuple[float, ...]

    def dim(self, index: int) -> object:
        """Dimension value at position ``index``."""
        return self.dims[index]

    def measure(self, index: int) -> float:
        """Normalised measure value at position ``index``."""
        return self.values[index]

    def as_dict(self, schema: TableSchema) -> dict:
        """Render the record as an attribute-name-keyed mapping."""
        out = dict(zip(schema.dimensions, self.dims))
        out.update(zip(schema.measures, self.raw))
        return out


class Table:
    """Append-only relation ``R(D; M)`` (paper, Problem Statement).

    Tuples may only be appended (the paper's model); a best-effort
    :meth:`delete` is provided as the paper's future-work extension and is
    exercised by the engine's repair path.

    Examples
    --------
    >>> schema = TableSchema(("d1",), ("m1",))
    >>> table = Table(schema)
    >>> r = table.append({"d1": "a", "m1": 3})
    >>> r.tid, len(table)
    (0, 1)
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._records: List[Record] = []
        self._signs = schema.measure_signs()
        self._next_tid = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, row: Mapping[str, object] | Record) -> Record:
        """Append one row and return the stored :class:`Record`.

        Accepts either a mapping keyed by attribute names or an existing
        :class:`Record` (whose tid is re-assigned to preserve arrival
        order).
        """
        if isinstance(row, Record):
            record = Record(self._next_tid, row.dims, row.values, row.raw)
        else:
            dims, raw = self.schema.project_row(row)
            values = self._normalise(raw)
            record = Record(self._next_tid, dims, values, tuple(raw))
        self._records.append(record)
        self._next_tid += 1
        return record

    def make_record(self, row: Mapping[str, object]) -> Record:
        """Build (but do not append) the :class:`Record` a row would become.

        Discovery algorithms need the incoming tuple *before* it is added
        to ``R`` (the paper compares ``t`` against historical tuples
        first, appending at the end — e.g. Alg. 2 line 10).
        """
        dims, raw = self.schema.project_row(row)
        return Record(self._next_tid, dims, self._normalise(raw), tuple(raw))

    def delete(self, tid: int) -> Record:
        """Remove the record with id ``tid`` (future-work extension, §VIII).

        Returns the removed record.  Raises ``KeyError`` if absent.
        """
        for i, rec in enumerate(self._records):
            if rec.tid == tid:
                return self._records.pop(i)
        raise KeyError(f"no record with tid={tid}")

    def _normalise(self, raw: Sequence[float]) -> Tuple[float, ...]:
        try:
            return tuple(s * float(v) for s, v in zip(self._signs, raw))
        except (TypeError, ValueError):
            raise SchemaError(f"non-numeric measure values in {raw!r}") from None

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, index: int) -> Record:
        return self._records[index]

    @property
    def records(self) -> Sequence[Record]:
        """All records in arrival order (read-only view)."""
        return tuple(self._records)

    @property
    def arrivals(self) -> int:
        """Total tuples ever appended (monotone: deletions do not
        decrease it).  The serving layer uses the delta across a failed
        batch to tell exactly which rows were applied before the
        failure."""
        return self._next_tid

    def sigma(self, predicate: Callable[[Record], bool]) -> List[Record]:
        """Relational selection ``σ``: records satisfying ``predicate``."""
        return [rec for rec in self._records if predicate(rec)]

    def select_constraint(self, constraint: "Constraint") -> List[Record]:
        """``σ_C(R)`` — records satisfying conjunctive ``constraint``."""
        return [rec for rec in self._records if constraint.satisfied_by(rec)]


# Deferred import solely for the type used in ``select_constraint``.
from .constraint import Constraint  # noqa: E402  (cycle-free: constraint does not import record)
