"""Core data model: schema, records, constraints, dominance, skylines,
prominence, and the :class:`FactDiscoverer` engine."""

from .config import DiscoveryConfig
from .constraint import Constraint, constraint_for_record, satisfied_constraints
from .dominance import ComparisonOutcome, compare, dominates
from .engine import FactDiscoverer
from .facts import FactSet, SituationalFact
from .prominence import (
    ColumnarContextCounter,
    ContextCounter,
    score_facts,
    select_reportable,
)
from .record import Record, Table
from .schema import MAX, MIN, SchemaError, TableSchema
from .skyline import contextual_skyline, is_contextual_skyline_tuple, skyline_bnl

__all__ = [
    "DiscoveryConfig",
    "Constraint",
    "constraint_for_record",
    "satisfied_constraints",
    "ComparisonOutcome",
    "compare",
    "dominates",
    "FactDiscoverer",
    "FactSet",
    "SituationalFact",
    "ColumnarContextCounter",
    "ContextCounter",
    "score_facts",
    "select_reportable",
    "Record",
    "Table",
    "MAX",
    "MIN",
    "SchemaError",
    "TableSchema",
    "contextual_skyline",
    "is_contextual_skyline_tuple",
    "skyline_bnl",
]
