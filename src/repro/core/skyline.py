"""Reference skyline operators ``λ_M`` (Def. 2/3).

These are the *oracles* the incremental algorithms are validated against:
a block-nested-loop skyline and a presort-based skyline, plus contextual
variants that first apply ``σ_C``.  They recompute from scratch, so they
are deliberately simple and obviously correct.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .constraint import Constraint
from .dominance import dominates, measure_projection
from .record import Record


def skyline_bnl(records: Sequence[Record], subspace: int) -> List[Record]:
    """Block-nested-loop skyline of ``records`` in bitmask ``subspace``.

    The classic window algorithm of Börzsönyi et al. [5]: keep a window of
    incomparable tuples; each candidate either is dominated, evicts
    dominated window members, or both survive.
    """
    if subspace == 0:
        return []
    window: List[Record] = []
    for cand in records:
        dominated = False
        survivors: List[Record] = []
        for w in window:
            if dominates(w, cand, subspace):
                dominated = True
                survivors = window  # unchanged; cand discarded
                break
            if not dominates(cand, w, subspace):
                survivors.append(w)
        if not dominated:
            survivors.append(cand)
            window = survivors
    return window


def skyline_presort(records: Sequence[Record], subspace: int) -> List[Record]:
    """Sort-filter skyline (SFS): presort by descending measure sum so a
    tuple can only be dominated by earlier ones, then one filtering pass.

    Same output set as :func:`skyline_bnl` (order may differ).
    """
    if subspace == 0:
        return []
    order = sorted(
        records,
        key=lambda r: (sum(measure_projection(r, subspace)), r.tid),
        reverse=True,
    )
    window: List[Record] = []
    for cand in order:
        if not any(dominates(w, cand, subspace) for w in window):
            window.append(cand)
    return window


def contextual_skyline(
    records: Iterable[Record], constraint: Constraint, subspace: int
) -> List[Record]:
    """``λ_M(σ_C(R))`` — the contextual skyline of Def. 3, recomputed
    from scratch.  Used as the correctness oracle for every incremental
    algorithm and for Invariant 1/2 property tests."""
    context = [r for r in records if constraint.satisfied_by(r)]
    return skyline_bnl(context, subspace)


def is_contextual_skyline_tuple(
    t: Record, records: Iterable[Record], constraint: Constraint, subspace: int
) -> bool:
    """True iff ``t ∈ λ_M(σ_C(R ∪ {t}))`` — i.e. no tuple in the context
    dominates ``t`` (Proposition 1 direction used by the baselines)."""
    if subspace == 0:
        return False
    for r in records:
        if r.tid != t.tid and constraint.satisfied_by(r) and dominates(r, t, subspace):
            return False
    return True
