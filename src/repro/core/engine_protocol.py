"""The one engine contract every discovery composition honours.

Historically the library grew four divergent entry points — the in-proc
:class:`~repro.core.engine.FactDiscoverer`, the subspace-sharded
:class:`~repro.service.sharding.ShardedDiscoverer`, and the windowed /
aggregate wrappers under ``repro.extensions`` — each hand-wiring schema,
config, scoring, snapshots and queries differently.  This module pins
down the single :class:`Engine` protocol they all implement, so serving,
checkpointing and querying code can take *any* engine:

=====================  =================================================
Member                 Contract
=====================  =================================================
``observe(row)``       Process one arrival → reportable facts (policy
                       applied: ``τ`` / ``top_k`` / all-ranked).
``observe_many(rows)`` Batched ``observe``; identical output, amortised
                       overhead.
``facts_for(row)``     One arrival → the full (scored) ``S_t`` FactSet.
``facts_for_many``     Batched ``facts_for``.
``delete(tid)``        §VIII retraction; returns the removed Record.
``delete_many(tids)``  Grouped retraction; one store compaction pass
                       for the whole group instead of per tid.
``update(tid, row)``   Retract-then-observe replacement.
``query()``            A contextual query engine over the live state
                       (forward skyline / skyband / prominence).
``snapshot(path)``     Persist a restorable snapshot (format v3 embeds
                       the engine's :class:`~repro.api.spec.EngineSpec`).
``stats()``            One JSON-able dict of operational metrics.
``close()``            Release workers/files; idempotent.  Engines are
                       context managers (``with open_engine(spec): …``).
``__len__``            Live tuple count.
=====================  =================================================

Plus the data members every engine exposes: ``schema`` (the *input* row
schema), ``discovery_schema`` (the relation facts are discovered over —
differs from ``schema`` only for aggregate engines), ``config``,
``table``, ``counters``, ``score`` and ``spec`` (the declarative
:class:`~repro.api.spec.EngineSpec` that re-creates the engine via
:func:`~repro.api.facade.open_engine`).

:class:`EngineBase` supplies the derivable members (reporting-policy
application, update, context management, snapshots, stats, the query
facade) so concrete engines implement only their core streaming calls.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Union,
    runtime_checkable,
)

from .facts import FactSet, SituationalFact
from .prominence import select_reportable
from .record import Record

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.spec import EngineSpec
    from ..query.contextual import ContextualQueryEngine
    from .config import DiscoveryConfig
    from .schema import TableSchema

Row = Union[Mapping[str, object], Record]


@runtime_checkable
class Engine(Protocol):
    """Structural type of every discovery engine (see module docstring).

    Methods only — ``runtime_checkable`` protocols verify callables, so
    ``isinstance(engine, Engine)`` works on every supported Python; the
    data members (``schema`` / ``config`` / ``table`` / ``spec`` / …)
    are part of the contract too and are asserted by the conformance
    suite in ``tests/test_engine_api.py``.
    """

    def observe(self, row: Row) -> List[SituationalFact]: ...

    def observe_many(self, rows: Iterable[Row]) -> List[List[SituationalFact]]: ...

    def facts_for(self, row: Row) -> FactSet: ...

    def facts_for_many(self, rows: Iterable[Row]) -> List[FactSet]: ...

    def delete(self, tid: int) -> Record: ...

    def delete_many(self, tids: Iterable[int]) -> List[Record]: ...

    def update(self, tid: int, row: Mapping[str, object]) -> List[SituationalFact]: ...

    def query(self) -> "ContextualQueryEngine": ...

    def snapshot(self, path: Optional[str] = None) -> str: ...

    def stats(self) -> Dict[str, object]: ...

    def close(self) -> None: ...

    def __len__(self) -> int: ...


class EngineBase:
    """Shared default implementations of the :class:`Engine` contract.

    Subclasses provide ``facts_for`` / ``facts_for_many`` / ``delete``
    plus the ``schema`` / ``config`` / ``table`` / ``counters``
    attributes; everything else is derived here (and may be overridden
    where a composition has a faster or semantically different path).
    """

    #: Engine-kind tag surfaced by :meth:`stats` and snapshots.
    kind: str = "engine"

    # -- reporting policy ------------------------------------------------
    def observe(self, row: Row) -> List[SituationalFact]:
        """Process one arriving tuple and return its reportable facts."""
        return select_reportable(self.facts_for(row), self.config)

    def observe_many(self, rows: Iterable[Row]) -> List[List[SituationalFact]]:
        """Batched :meth:`observe`: one reportable-fact list per row."""
        return [
            select_reportable(facts, self.config)
            for facts in self.facts_for_many(rows)
        ]

    def delete_many(self, tids: Iterable[int]) -> List[Record]:
        """Grouped :meth:`delete`: retract several tuples, returning the
        removed records in argument order.  Engines whose storage can
        batch the physical reclamation (the columnar store's deferred
        compaction) override this; the default simply loops."""
        return [self.delete(tid) for tid in tids]

    def update(self, tid: int, row: Mapping[str, object]) -> List[SituationalFact]:
        """Replace a previously observed tuple (retract-then-observe)."""
        self.delete(tid)
        return self.observe(row)

    # -- schemas ---------------------------------------------------------
    @property
    def discovery_schema(self) -> "TableSchema":
        """Schema of the relation facts are discovered over.

        Equals :attr:`schema` except for aggregate engines, whose input
        rows are base tuples while facts describe the aggregate
        relation.
        """
        return self.schema

    @property
    def arrivals(self) -> int:
        """Monotone count of tuples ever observed (deletions do not
        decrease it) — the serving layer's applied-prefix marker when a
        batch fails midway."""
        return self.table.arrivals

    # -- spec / persistence ---------------------------------------------
    #: Set by :func:`repro.api.open_engine` (and the middleware layers)
    #: so the exact opening spec — checkpoint policy included — is
    #: authoritative over the attribute-derived reconstruction.
    _spec_override = None

    @property
    def spec(self) -> "EngineSpec":
        """The declarative spec that rebuilds this engine."""
        if self._spec_override is not None:
            return self._spec_override
        return self._derive_spec()

    def _derive_spec(self) -> "EngineSpec":
        """Reconstruct a spec from live attributes (engines built
        directly, without :func:`~repro.api.open_engine`)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not expose an EngineSpec"
        )

    def snapshot(self, path: Optional[str] = None) -> str:
        """Write a restorable snapshot; returns the path written.

        ``path`` defaults to the spec's checkpoint policy.  Restore with
        :func:`repro.api.restore` (or ``repro.extensions.load_engine``).
        """
        from ..extensions.snapshot import save_engine

        if path is None:
            policy = getattr(self.spec, "checkpoint", None)
            path = policy.path if policy is not None else None
        if path is None:
            raise ValueError(
                "no snapshot path: pass one or set spec.checkpoint"
            )
        save_engine(self, path)
        return path

    def snapshot_rows(self) -> List[dict]:
        """The input rows a snapshot must replay to rebuild this engine.

        Default: the live table in arrival order.  Aggregate engines
        override this with their base-row journal (their table holds
        derived tuples that must not be re-aggregated).
        """
        schema = self.schema
        return [record.as_dict(schema) for record in self.table]

    # -- queries ---------------------------------------------------------
    def query(self) -> "ContextualQueryEngine":
        """A forward contextual-skyline query engine over the live state.

        The engine's incremental context counter rides along so covered
        ``|σ_C|`` statistics answer in O(1) (see
        :meth:`~repro.query.contextual.ContextualQueryEngine.batch`).
        """
        from ..query.contextual import ContextualQueryEngine

        return ContextualQueryEngine(
            self._query_view(),
            context_counter=getattr(self, "context_counter", None),
        )

    def _query_view(self):
        """The algorithm-shaped state object queries run against."""
        return self.algorithm

    # -- metrics / lifecycle ---------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Operational metrics snapshot (JSON-able)."""
        return {
            "kind": self.kind,
            "rows": len(self),
            "score": bool(getattr(self, "score", True)),
            "counters": self.counters.snapshot(),
        }

    def close(self) -> None:
        """Release resources (workers, files).  Idempotent no-op here."""

    def __len__(self) -> int:
        return len(self.table)

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()
