"""Situational facts — the discovery output (Problem Statement, §III).

A *situational fact* pertinent to a new tuple ``t`` is one
constraint–measure pair ``(C, M)`` for which ``t`` is a contextual
skyline tuple.  :class:`FactSet` is ``S_t``, the set of all such pairs,
enriched (when the engine computes prominence) with context / skyline
cardinalities so facts can be ranked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Tuple

from .constraint import Constraint
from .record import Record
from .schema import TableSchema


@dataclass(slots=True)
class SituationalFact:
    """One discovered fact: ``t`` is in the skyline of ``(C, M)``.

    ``prominence`` is ``|σ_C(R)| / |λ_M(σ_C(R))|`` (§VII); ``None`` when
    the producing algorithm was run without prominence evaluation.
    Instances are created unscored by the discovery algorithms; the
    engine fills ``context_size`` / ``skyline_size`` in afterwards
    (mutable on purpose — ``S_t`` can hold thousands of facts per
    arrival and re-creating them measurably hurts throughput).
    """

    record: Record
    constraint: Constraint
    subspace: int
    context_size: Optional[int] = None
    skyline_size: Optional[int] = None

    @property
    def prominence(self) -> Optional[float]:
        """Cardinality ratio of context tuples to skyline tuples; larger
        means rarer, hence more prominent."""
        if self.context_size is None or not self.skyline_size:
            return None
        return self.context_size / self.skyline_size

    @property
    def pair(self) -> Tuple[Constraint, int]:
        """The raw ``(C, M)`` pair, the paper's element of ``S_t``."""
        return (self.constraint, self.subspace)

    def describe(self, schema: TableSchema) -> str:
        """Readable one-liner, e.g.
        ``(month=Feb ∧ team=Celtics, {points}) prominence=5.0``."""
        measures = ", ".join(schema.measure_names(self.subspace))
        prom = self.prominence
        suffix = f" prominence={prom:.3g}" if prom is not None else ""
        return f"({self.constraint.describe(schema)}, {{{measures}}}){suffix}"

    def to_json_dict(self, schema: TableSchema) -> dict:
        """JSON-serialisable rendering (CLI ``--json``, integrations)."""
        return {
            "tuple_id": self.record.tid,
            "tuple": self.record.as_dict(schema),
            "constraint": self.constraint.to_mapping(schema),
            "measures": list(schema.measure_names(self.subspace)),
            "context_size": self.context_size,
            "skyline_size": self.skyline_size,
            "prominence": self.prominence,
        }


class FactSet:
    """``S_t`` — all facts pertinent to one arriving tuple.

    Iterates in insertion order; :meth:`ranked` orders by descending
    prominence (§VII).  Supports membership tests on ``(C, M)`` pairs so
    algorithm-equivalence tests can compare outputs cheaply.

    Internally the set is *columnar*: parallel constraint / subspace /
    context-size / skyline-size columns, with the
    :class:`SituationalFact` objects materialised lazily on first
    object-level read.  Discovery emits tens of pairs per arrival on hot
    streams, and both raw-``S_t`` consumers (benches, the equivalence
    oracle, ``score=False`` engines reading only :attr:`pairs`) and the
    vectorized scoring pipeline (which annotates whole columns via
    :meth:`set_scores`) never pay for objects they do not touch.
    """

    __slots__ = (
        "record",
        "_constraints",
        "_subspaces",
        "_context",
        "_skyline",
        "_facts",
        "_pair_cache",
    )

    def __init__(self, record: Record) -> None:
        self.record = record
        self._constraints: List[Constraint] = []
        self._subspaces: List[int] = []
        self._context: Optional[List[Optional[int]]] = None
        self._skyline: Optional[List[Optional[int]]] = None
        self._facts: Optional[List[SituationalFact]] = None
        self._pair_cache: Optional[Set[Tuple[Constraint, int]]] = None

    def add(self, fact: SituationalFact) -> None:
        """Add an already-built fact (object identity is preserved).

        Callers (the discovery algorithms) visit each ``(C, M)`` pair at
        most once per arrival, so no duplicate check is performed here;
        ``S_t`` can hold thousands of facts and the hash-set guard was a
        measurable cost.  :attr:`pairs` deduplicates defensively.
        """
        facts = self._materialise()
        self._constraints.append(fact.constraint)
        self._subspaces.append(fact.subspace)
        if self._context is not None:
            self._context.append(fact.context_size)
            self._skyline.append(fact.skyline_size)
        facts.append(fact)
        self._pair_cache = None

    def add_pair(self, constraint: Constraint, subspace: int) -> None:
        """Convenience: add a bare ``(C, M)`` pair without prominence."""
        self._constraints.append(constraint)
        self._subspaces.append(subspace)
        if self._context is not None:
            # Keep score columns parallel when pairs arrive after a
            # scoring pass (the late fact materialises unscored).
            self._context.append(None)
            self._skyline.append(None)
        self._pair_cache = None

    def add_pairs(self, constraints, subspaces) -> None:
        """Bulk :meth:`add_pair`: extend both columns in one call (the
        bitset lattice walker emits a whole arrival's pairs at once)."""
        self._constraints.extend(constraints)
        self._subspaces.extend(subspaces)
        if self._context is not None:
            added = len(self._constraints) - len(self._context)
            self._context.extend([None] * added)
            self._skyline.extend([None] * added)
        self._pair_cache = None

    def iter_pairs(self) -> Iterator[Tuple[Constraint, int]]:
        """The ``(C, M)`` pairs in insertion order, *without*
        materialising fact objects (the scoring pipelines iterate the
        columns directly)."""
        return zip(self._constraints, self._subspaces)

    def columns(self):
        """The raw parallel columns ``(constraints, subspaces,
        context_sizes, skyline_sizes)`` in insertion order; the score
        columns are ``None`` on unscored sets.  Read-only — the
        per-arrival folds (feed maintenance) walk these directly
        instead of materialising fact objects."""
        return self._constraints, self._subspaces, self._context, self._skyline

    def set_scores(self, context_sizes, skyline_sizes) -> None:
        """Attach whole score columns (parallel to insertion order).

        The vectorized scoring path computes both cardinality columns in
        bulk; fact objects, if any were already materialised, are kept
        consistent in place.
        """
        if len(context_sizes) != len(self._constraints) or len(
            skyline_sizes
        ) != len(self._constraints):
            raise ValueError("score columns must cover every fact")
        self._context = list(context_sizes)
        self._skyline = list(skyline_sizes)
        if self._facts:
            for fact, ctx, sky in zip(self._facts, self._context, self._skyline):
                fact.context_size = ctx
                fact.skyline_size = sky

    def _materialise(self) -> List[SituationalFact]:
        facts = self._facts
        if facts is None:
            facts = self._facts = []
        start = len(facts)
        total = len(self._constraints)
        if start < total:
            record = self.record
            constraints = self._constraints
            subspaces = self._subspaces
            context = self._context
            skyline = self._skyline
            if context is None:
                facts.extend(
                    SituationalFact(record, constraints[i], subspaces[i])
                    for i in range(start, total)
                )
            else:
                facts.extend(
                    SituationalFact(
                        record,
                        constraints[i],
                        subspaces[i],
                        context[i],
                        skyline[i],
                    )
                    for i in range(start, total)
                )
        return facts

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[SituationalFact]:
        return iter(self._materialise())

    def __contains__(self, pair: Tuple[Constraint, int]) -> bool:
        return pair in self.pairs

    @property
    def pairs(self) -> Set[Tuple[Constraint, int]]:
        """The set of raw ``(C, M)`` pairs (order-free comparison form)."""
        if self._pair_cache is None:
            self._pair_cache = set(zip(self._constraints, self._subspaces))
        return self._pair_cache

    def ranked(self) -> List[SituationalFact]:
        """Facts in descending prominence; facts lacking prominence sort
        last, ties broken by more-general-constraint-first then smaller
        subspace."""
        return sorted(
            self._materialise(),
            key=lambda f: (
                -(f.prominence if f.prominence is not None else float("-inf")),
                f.constraint.bound_count,
                bin(f.subspace).count("1"),
            ),
        )

    def prominent(self, tau: float) -> List[SituationalFact]:
        """The paper's *prominent facts*: those attaining the highest
        prominence in ``S_t``, provided it is ``≥ τ`` (ties all kept)."""
        scored = [f for f in self._materialise() if f.prominence is not None]
        if not scored:
            return []
        best = max(f.prominence for f in scored)  # type: ignore[arg-type, return-value]
        if best < tau:
            return []
        return [f for f in scored if f.prominence == best]

    def top_k(self, k: int) -> List[SituationalFact]:
        """The ``k`` most prominent facts (ties at the cut kept)."""
        ranked = self.ranked()
        if len(ranked) <= k:
            return ranked
        cutoff = ranked[k - 1].prominence
        out = ranked[:k]
        for fact in ranked[k:]:
            if fact.prominence is not None and fact.prominence == cutoff:
                out.append(fact)
            else:
                break
        return out
