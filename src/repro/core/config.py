"""Discovery configuration knobs (paper §VI-A parameters).

``d̂`` (``max_bound_dims``) caps the number of bound dimension attributes
in a constraint and ``m̂`` (``max_measure_dims``) caps measure-subspace
dimensionality — both exist to avoid over-specific, trivial facts.  ``τ``
(``tau``) is the prominence threshold of §VII.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


def effective_bound_cap(n_dimensions: int, max_bound_dims: Optional[int]) -> int:
    """``min(d̂, n)`` — the bound-attribute count actually reachable.

    The single definition behind every ``C^t`` skeleton: the algorithms'
    ``masks_top_down``, ``satisfied_constraints``, the context counters,
    and the engine's constraint-sharing guard all derive their lattice
    truncation from this, so the caps cannot drift apart.
    """
    if max_bound_dims is None:
        return n_dimensions
    return min(n_dimensions, max_bound_dims)


@dataclass(frozen=True)
class DiscoveryConfig:
    """Tunable parameters shared by every discovery algorithm.

    Attributes
    ----------
    max_bound_dims:
        The paper's ``d̂``: constraints may bind at most this many
        dimension attributes.  ``None`` means unrestricted (all ``2^d``).
    max_measure_dims:
        The paper's ``m̂``: measure subspaces may contain at most this
        many attributes.  ``None`` means unrestricted.
    tau:
        Prominence threshold ``τ`` (§VII): a fact is *prominent* only if
        ``|σ_C(R)| / |λ_M(σ_C(R))| ≥ tau``.  ``None`` disables
        thresholding (all facts reported).
    top_k:
        When set, :meth:`repro.core.engine.FactDiscoverer.observe`
        returns only the ``k`` most prominent facts (ties kept).
    """

    max_bound_dims: Optional[int] = None
    max_measure_dims: Optional[int] = None
    tau: Optional[float] = None
    top_k: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_bound_dims is not None and self.max_bound_dims < 0:
            raise ValueError("max_bound_dims must be >= 0")
        if self.max_measure_dims is not None and self.max_measure_dims < 1:
            raise ValueError("max_measure_dims must be >= 1")
        if self.tau is not None and self.tau < 1:
            raise ValueError("tau is a cardinality ratio; it must be >= 1")
        if self.top_k is not None and self.top_k < 1:
            raise ValueError("top_k must be >= 1")

    def effective_bound_cap(self, n_dimensions: int) -> int:
        """``min(d̂, n)`` for an ``n``-dimensional schema (see
        :func:`effective_bound_cap`)."""
        return effective_bound_cap(n_dimensions, self.max_bound_dims)

    def allows_constraint_mask(self, mask: int) -> bool:
        """True iff a constraint with bound-position ``mask`` respects
        ``d̂``."""
        if self.max_bound_dims is None:
            return True
        return bin(mask).count("1") <= self.max_bound_dims

    def allows_subspace(self, mask: int) -> bool:
        """True iff a non-empty measure subspace ``mask`` respects
        ``m̂``."""
        if mask == 0:
            return False
        if self.max_measure_dims is None:
            return True
        return bin(mask).count("1") <= self.max_measure_dims
