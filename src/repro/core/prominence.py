"""Prominence measure and context bookkeeping (paper §VII).

The prominence of a fact ``(C, M)`` is ``|σ_C(R)| / |λ_M(σ_C(R))|`` —
the cardinality ratio of the context to its skyline.  Large ratios mean
the new tuple is one of very few skyline tuples among many, i.e. a rare,
newsworthy event.

``|σ_C(R)|`` is maintained incrementally by :class:`ContextCounter`:
every arriving tuple increments the count of each constraint it
satisfies (at most ``2^d̂`` per tuple).  ``|λ_M(σ_C(R))|`` comes from the
algorithm's skyline store (or a from-scratch oracle fallback).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .config import DiscoveryConfig, effective_bound_cap
from .constraint import UNBOUND, Constraint, satisfied_constraints
from .facts import FactSet, SituationalFact
from .lattice import masks_by_level
from .record import Record


class ContextCounter:
    """Incremental ``|σ_C(R)|`` for every constraint seen so far.

    Only constraints actually satisfied by some tuple have entries, so
    memory is bounded by distinct dimension-value combinations, not by
    ``|C_D| = Π(|dom(di)|+1)``.
    """

    def __init__(self, max_bound_dims: Optional[int] = None) -> None:
        self._counts: Dict[Constraint, int] = defaultdict(int)
        self._max_bound = max_bound_dims
        self._saw_unbindable = False

    def register(
        self, record: Record, constraints: Optional[Iterable[Constraint]] = None
    ) -> None:
        """Account for one appended tuple: bump every ``C ∈ C^t``.

        ``constraints`` lets callers that already hold ``C^t`` (the
        discovery algorithms memoise it per dims tuple — see
        ``DiscoveryAlgorithm.constraint_cache``) share it instead of
        re-deriving the same ``2^d̂`` objects here.
        """
        counts = self._counts
        if UNBOUND in record.dims:
            self._saw_unbindable = True
        if constraints is None:
            constraints = satisfied_constraints(record, self._max_bound)
        for constraint in constraints:
            counts[constraint] += 1

    def register_many(self, records: Iterable[Record]) -> None:
        """Batched :meth:`register` (no per-record result is needed, so
        callers ingesting blocks skip the per-call dispatch)."""
        for record in records:
            self.register(record)

    def unregister(
        self, record: Record, constraints: Optional[Iterable[Constraint]] = None
    ) -> None:
        """Reverse :meth:`register` (deletion extension, §VIII)."""
        counts = self._counts
        if constraints is None:
            constraints = satisfied_constraints(record, self._max_bound)
        for constraint in constraints:
            remaining = counts[constraint] - 1
            if remaining <= 0:
                del counts[constraint]
            else:
                counts[constraint] = remaining

    def count(self, constraint: Constraint) -> int:
        """Current ``|σ_C(R)|``."""
        return self._counts.get(constraint, 0)

    def covers(self, constraint: Constraint) -> bool:
        """True when :meth:`count` is *exactly* ``|σ_C(R)|`` for this
        constraint.

        Two things break exactness: a mask beyond the ``d̂`` cap was
        never registered (count is 0, not the context size), and a
        registered tuple with an unbindable (``None``) dimension value
        collapses several masks onto one constraint and bumps it once
        per covering mask — a multiset multiplicity, not a cardinality.
        """
        if self._saw_unbindable:
            return False
        cap = effective_bound_cap(constraint.arity, self._max_bound)
        return constraint.bound_count <= cap

    def __len__(self) -> int:
        return len(self._counts)


class ColumnarContextCounter:
    """``|σ_C(R)|`` with interned integer keys and batched registration.

    Drop-in replacement for :class:`ContextCounter` used by the
    vectorized engine: dimension values are interned to per-column
    integer ids once, and each constraint of ``C^t`` is counted under
    the key ``(bound_mask, ids-at-bound-positions)`` instead of a
    materialised :class:`Constraint` — no tuple-of-values hashing, no
    constraint objects per ``(row, mask)``.  :meth:`register_many`
    ingests whole blocks with one grouped ``np.unique`` per mask, so
    unscored batch ingestion touches the count table once per distinct
    key rather than once per row.

    A dimension *value* equal to the unbound marker (``None``) cannot be
    bound, so masks covering such positions collapse onto the constraint
    that leaves them free — exactly like the scalar counter, which
    counts the collapsed constraint once per covering mask.
    """

    def __init__(
        self, n_dimensions: int, max_bound_dims: Optional[int] = None
    ) -> None:
        self._n = n_dimensions
        self._max_bound = max_bound_dims
        cap = effective_bound_cap(n_dimensions, max_bound_dims)
        levels = masks_by_level(n_dimensions)
        #: Allowed bound masks (the ``C^t`` skeleton under ``d̂``).
        self._masks: Tuple[int, ...] = tuple(
            m for level in levels[: cap + 1] for m in level
        )
        self._positions: Dict[int, Tuple[int, ...]] = {
            mask: tuple(i for i in range(n_dimensions) if (mask >> i) & 1)
            for mask in self._masks
        }
        self._tables: List[Dict[object, int]] = [
            {} for _ in range(n_dimensions)
        ]
        self._counts: Dict[Tuple[int, Tuple[int, ...]], int] = defaultdict(int)
        #: Memo of :meth:`_keys` by dims tuple — bounded-domain streams
        #: repeat dimension combinations constantly, and the engine
        #: derives the keys twice per arrival (count registration and
        #: the bulk scoring probe).  FIFO-capped like the algorithms'
        #: constraint cache.
        self._keys_memo: Dict[Tuple[object, ...], List[Tuple[int, Tuple[int, ...]]]] = {}

    # ------------------------------------------------------------------
    # Key derivation
    # ------------------------------------------------------------------
    def _intern(self, dims: Tuple[object, ...]) -> List[int]:
        ids = []
        for i, value in enumerate(dims):
            table = self._tables[i]
            vid = table.get(value)
            if vid is None:
                vid = len(table)
                table[value] = vid
            ids.append(vid)
        return ids

    def _keys(self, dims: Tuple[object, ...]) -> List[Tuple[int, Tuple[int, ...]]]:
        """One count key per allowed mask (multiset — masks covering an
        unbindable ``None`` value collapse, preserving multiplicity).
        Memoised per dims tuple."""
        memo = self._keys_memo
        keys = memo.get(dims)
        if keys is not None:
            return keys
        ids = self._intern(dims)
        positions = self._positions
        if UNBOUND in dims:
            keys = []
            for mask in self._masks:
                eff_mask = 0
                eff_ids = []
                for i in positions[mask]:
                    if dims[i] is not UNBOUND:
                        eff_mask |= 1 << i
                        eff_ids.append(ids[i])
                keys.append((eff_mask, tuple(eff_ids)))
        else:
            keys = [
                (mask, tuple(ids[i] for i in positions[mask]))
                for mask in self._masks
            ]
        if len(memo) >= 16384:
            memo.pop(next(iter(memo)))
        memo[dims] = keys
        return keys

    # ------------------------------------------------------------------
    # ContextCounter API
    # ------------------------------------------------------------------
    def register(
        self, record: Record, constraints: Optional[Iterable[Constraint]] = None
    ) -> None:
        """Account for one appended tuple (``constraints`` is accepted
        for interface parity and ignored — keys come from the ids)."""
        counts = self._counts
        for key in self._keys(record.dims):
            counts[key] += 1

    def register_many(self, records: Iterable[Record]) -> None:
        """Batched registration: group the block's rows per mask with
        ``np.unique`` and bump each distinct key once."""
        records = list(records)
        if len(records) < 16 or any(UNBOUND in r.dims for r in records):
            for record in records:
                self.register(record)
            return
        import numpy as np

        ids = np.asarray(
            [self._intern(r.dims) for r in records], dtype=np.int64
        )
        counts = self._counts
        block = len(records)
        for mask in self._masks:
            positions = self._positions[mask]
            if not positions:
                counts[(0, ())] += block
                continue
            uniq, per_key = np.unique(
                ids[:, positions], axis=0, return_counts=True
            )
            for key_ids, bump in zip(uniq.tolist(), per_key.tolist()):
                counts[(mask, tuple(key_ids))] += bump

    def unregister(
        self, record: Record, constraints: Optional[Iterable[Constraint]] = None
    ) -> None:
        """Reverse :meth:`register` (deletion extension, §VIII)."""
        counts = self._counts
        for key in self._keys(record.dims):
            remaining = counts[key] - 1
            if remaining <= 0:
                del counts[key]
            else:
                counts[key] = remaining

    def count(self, constraint: Constraint) -> int:
        """Current ``|σ_C(R)|`` (0 for never-seen values or masks beyond
        ``d̂`` — same contract as the scalar counter)."""
        ids = []
        for i, value in enumerate(constraint.values):
            if value is UNBOUND:
                continue
            vid = self._tables[i].get(value)
            if vid is None:
                return 0
            ids.append(vid)
        return self._counts.get((constraint.bound_mask, tuple(ids)), 0)

    def covers(self, constraint: Constraint) -> bool:
        """True when :meth:`count` is *exactly* ``|σ_C(R)|`` for this
        constraint: the mask is within the maintained ``C^t`` skeleton
        and no registered row carried an unbindable (``None``) dimension
        value — whose mask collapse makes counts multiset multiplicities
        rather than context sizes (see :meth:`_keys`).
        """
        if constraint.bound_mask not in self._positions:
            return False
        return not any(UNBOUND in table for table in self._tables)

    def counts_for_dims(self, dims: Tuple[object, ...]) -> Dict[int, int]:
        """``{mask: |σ_C|}`` for every allowed constraint of ``C^t``.

        One interning sweep plus one dict probe per mask — the columnar
        scoring path reads a whole arrival's context cardinalities here
        instead of calling :meth:`count` once per fact constraint.
        Masks collapsing onto one constraint (unbindable values) map to
        that constraint's count, exactly like :meth:`count` on the
        collapsed constraint.
        """
        counts = self._counts
        return {
            mask: counts.get(key, 0)
            for mask, key in zip(self._masks, self._keys(dims))
        }

    def __len__(self) -> int:
        return len(self._counts)


def score_facts(
    facts: FactSet,
    counter: ContextCounter,
    sizes_by_pair: Mapping,
) -> FactSet:
    """Attach context / skyline cardinalities to every fact in ``S_t``.

    ``sizes_by_pair[(C, M)]`` must be ``|λ_M(σ_C(R))|`` *after* the new
    tuple has been incorporated (algorithms produce it in bulk via
    :meth:`~repro.algorithms.base.DiscoveryAlgorithm.skyline_sizes`).
    Whole score columns are attached in one pass over the fact set's
    ``(C, M)`` columns — no fact objects are materialised here, and any
    already-materialised objects are annotated in place by
    :meth:`FactSet.set_scores`.  The same :class:`FactSet` is returned.
    """
    count_cache: Dict[Constraint, int] = {}
    context_sizes: List[int] = []
    skyline_sizes: List[int] = []
    for constraint, subspace in facts.iter_pairs():
        size = count_cache.get(constraint)
        if size is None:
            size = counter.count(constraint)
            count_cache[constraint] = size
        context_sizes.append(size)
        skyline_sizes.append(sizes_by_pair[(constraint, subspace)])
    facts.set_scores(context_sizes, skyline_sizes)
    return facts


def select_reportable(facts: FactSet, config: DiscoveryConfig) -> List[SituationalFact]:
    """Apply the reporting policy of §VII to a scored ``S_t``.

    * ``tau`` set → the *prominent facts*: ties at the maximum
      prominence, provided it reaches ``τ``;
    * ``top_k`` set → the ``k`` most prominent (ties kept);
    * neither → everything, ranked.
    """
    if config.tau is not None:
        return facts.prominent(config.tau)
    if config.top_k is not None:
        return facts.top_k(config.top_k)
    return facts.ranked()


