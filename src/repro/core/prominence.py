"""Prominence measure and context bookkeeping (paper §VII).

The prominence of a fact ``(C, M)`` is ``|σ_C(R)| / |λ_M(σ_C(R))|`` —
the cardinality ratio of the context to its skyline.  Large ratios mean
the new tuple is one of very few skyline tuples among many, i.e. a rare,
newsworthy event.

``|σ_C(R)|`` is maintained incrementally by :class:`ContextCounter`:
every arriving tuple increments the count of each constraint it
satisfies (at most ``2^d̂`` per tuple).  ``|λ_M(σ_C(R))|`` comes from the
algorithm's skyline store (or a from-scratch oracle fallback).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping, Optional

from .config import DiscoveryConfig
from .constraint import Constraint, satisfied_constraints
from .facts import FactSet, SituationalFact
from .record import Record


class ContextCounter:
    """Incremental ``|σ_C(R)|`` for every constraint seen so far.

    Only constraints actually satisfied by some tuple have entries, so
    memory is bounded by distinct dimension-value combinations, not by
    ``|C_D| = Π(|dom(di)|+1)``.
    """

    def __init__(self, max_bound_dims: Optional[int] = None) -> None:
        self._counts: Dict[Constraint, int] = defaultdict(int)
        self._max_bound = max_bound_dims

    def register(self, record: Record) -> None:
        """Account for one appended tuple: bump every ``C ∈ C^t``."""
        for constraint in satisfied_constraints(record, self._max_bound):
            self._counts[constraint] += 1

    def unregister(self, record: Record) -> None:
        """Reverse :meth:`register` (deletion extension, §VIII)."""
        for constraint in satisfied_constraints(record, self._max_bound):
            remaining = self._counts[constraint] - 1
            if remaining <= 0:
                del self._counts[constraint]
            else:
                self._counts[constraint] = remaining

    def count(self, constraint: Constraint) -> int:
        """Current ``|σ_C(R)|``."""
        return self._counts.get(constraint, 0)

    def __len__(self) -> int:
        return len(self._counts)


def score_facts(
    facts: FactSet,
    counter: ContextCounter,
    sizes_by_pair: Mapping,
) -> FactSet:
    """Attach context / skyline cardinalities to every fact in ``S_t``.

    ``sizes_by_pair[(C, M)]`` must be ``|λ_M(σ_C(R))|`` *after* the new
    tuple has been incorporated (algorithms produce it in bulk via
    :meth:`~repro.algorithms.base.DiscoveryAlgorithm.skyline_sizes`).
    Facts are annotated in place; the same :class:`FactSet` is returned.
    """
    count_cache: Dict[Constraint, int] = {}
    for fact in facts:
        constraint = fact.constraint
        size = count_cache.get(constraint)
        if size is None:
            size = counter.count(constraint)
            count_cache[constraint] = size
        fact.context_size = size
        fact.skyline_size = sizes_by_pair[fact.pair]
    return facts


def select_reportable(facts: FactSet, config: DiscoveryConfig) -> List[SituationalFact]:
    """Apply the reporting policy of §VII to a scored ``S_t``.

    * ``tau`` set → the *prominent facts*: ties at the maximum
      prominence, provided it reaches ``τ``;
    * ``top_k`` set → the ``k`` most prominent (ties kept);
    * neither → everything, ranked.
    """
    if config.tau is not None:
        return facts.prominent(config.tau)
    if config.top_k is not None:
        return facts.top_k(config.top_k)
    return facts.ranked()


