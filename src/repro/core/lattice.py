"""Bitmask machinery for the lattice of tuple-satisfied constraints.

Within ``C^t`` (Def. 7) each constraint is determined by the set of bound
positions, so the whole lattice is the boolean lattice of bitmasks over
``n = |D|`` bits:

* ``⊤`` (no constraint)          → mask ``0``
* ``⊥(C^t)`` (all attrs bound)   → mask ``(1 << n) - 1``
* *ancestor* (more general)      → **proper submask**
* *parent*                       → clear one set bit
* *child*                        → set one clear bit
* ``C^{t,t'}`` lattice intersection (Def. 8) → all submasks of the
  *agreement mask* (positions where ``t`` and ``t'`` carry equal values).

The same boolean-lattice encoding doubles for measure subspaces
(bitmasks over ``|M|`` bits), so everything here is shared by both axes.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, List, Sequence, Tuple


def popcount(mask: int) -> int:
    """Number of set bits (``bound(C)`` or ``|M|``)."""
    return bin(mask).count("1")


def popcount_array(array):
    """Element-wise popcount of a non-negative integer NumPy array.

    The bitset lattice walker counts ``µ`` bucket sizes as popcounts over
    per-row anchor bitsets; NumPy grew a native ``bitwise_count`` only in
    2.0, so older installs take the SWAR ladder below.  Values must stay
    below ``2^62`` (constraint-mask bitsets are at most ``2^32`` wide),
    which keeps every intermediate, including the final multiply-gather,
    inside the positive ``int64`` range.
    """
    import numpy as np

    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(array)
    x = array.astype(np.int64, copy=True)
    x -= (x >> 1) & 0x5555555555555555
    x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
    x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0F
    return (x * 0x0101010101010101) >> 56


def iter_submasks(mask: int) -> Iterator[int]:
    """All submasks of ``mask``, including ``0`` and ``mask`` itself.

    Uses the classic ``sub = (sub - 1) & mask`` walk, emitting masks in
    decreasing numeric order.

    >>> sorted(iter_submasks(0b101))
    [0, 1, 4, 5]
    """
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def iter_supermasks(mask: int, universe: int) -> Iterator[int]:
    """All supermasks of ``mask`` within ``universe``.

    >>> sorted(iter_supermasks(0b001, 0b111))
    [1, 3, 5, 7]
    """
    free = universe & ~mask
    sub = free
    while True:
        yield mask | sub
        if sub == 0:
            return
        sub = (sub - 1) & free


def parents_of(mask: int) -> Iterator[int]:
    """Parent masks: clear one set bit (one fewer bound attribute)."""
    m = mask
    while m:
        bit = m & -m
        yield mask & ~bit
        m ^= bit


def children_of(mask: int, universe: int) -> Iterator[int]:
    """Child masks within ``universe``: set one clear bit."""
    free = universe & ~mask
    while free:
        bit = free & -free
        yield mask | bit
        free ^= bit


def iter_masks_by_level(n_bits: int, ascending: bool = True) -> Iterator[int]:
    """All masks over ``n_bits`` grouped by popcount.

    ``ascending=True`` yields ``⊤`` first (top-down traversal order);
    ``False`` yields ``⊥`` first (bottom-up).
    """
    levels: List[List[int]] = [[] for _ in range(n_bits + 1)]
    for mask in range(1 << n_bits):
        levels[popcount(mask)].append(mask)
    ordered = levels if ascending else list(reversed(levels))
    for level in ordered:
        yield from level


@lru_cache(maxsize=64)
def masks_by_level(n_bits: int) -> Tuple[Tuple[int, ...], ...]:
    """Masks over ``n_bits`` bucketed by popcount (cached)."""
    levels: List[List[int]] = [[] for _ in range(n_bits + 1)]
    for mask in range(1 << n_bits):
        levels[popcount(mask)].append(mask)
    return tuple(tuple(level) for level in levels)


@lru_cache(maxsize=32)
def submask_closure_table(n_bits: int) -> Tuple[int, ...]:
    """``table[mask]`` = bitset (over the ``2^n`` constraint masks) of all
    submasks of ``mask``.

    Lets the sharing algorithms mark a whole pruned family
    ``C^{t,t'}`` with one ``|=`` (used by the ``pruned[C][M]`` matrix of
    Alg. 6).  Built via DP: closure(mask) = {mask} ∪ closure(mask − bit).
    """
    size = 1 << n_bits
    table = [0] * size
    table[0] = 1  # closure of ⊤ is {⊤}
    for mask in range(1, size):
        acc = 1 << mask
        m = mask
        while m:
            bit = m & -m
            acc |= table[mask & ~bit]
            m ^= bit
        table[mask] = acc
    return tuple(table)


@lru_cache(maxsize=32)
def supermask_closure_table(n_bits: int) -> Tuple[int, ...]:
    """``table[mask]`` = bitset (over the ``2^n`` constraint masks) of all
    supermasks of ``mask`` within the full universe.

    Dual of :func:`submask_closure_table`: ``(table[a] >> m) & 1`` iff
    ``a ⊆ m``.  The columnar anchor index ORs these per anchored
    constraint, so "is the tuple anchored at an ancestor of ``C``?"
    becomes one integer AND (prominence scoring, demotion repair).
    Built by the mirrored DP: closure(mask) = {mask} ∪ closure(mask + bit).
    """
    size = 1 << n_bits
    universe = size - 1
    table = [0] * size
    table[universe] = 1 << universe  # closure of ⊥ is {⊥}
    for mask in range(universe - 1, -1, -1):
        acc = 1 << mask
        free = universe & ~mask
        while free:
            bit = free & -free
            acc |= table[mask | bit]
            free ^= bit
        table[mask] = acc
    return tuple(table)


def agreement_mask(dims_a: Sequence[object], dims_b: Sequence[object]) -> int:
    """Bitmask of positions where two dimension tuples agree.

    ``⊥(C^{t,t'})`` of Def. 8 is exactly the constraint with this bound
    mask, and the intersection lattice ``C^{t,t'}`` is its submask set.
    """
    mask = 0
    for i, (a, b) in enumerate(zip(dims_a, dims_b)):
        if a == b:
            mask |= 1 << i
    return mask


def is_submask(sub: int, sup: int) -> bool:
    """True iff every bit of ``sub`` is set in ``sup``."""
    return sub & ~sup == 0


def nonempty_subspaces(universe: int, max_size: int | None = None) -> List[int]:
    """All non-empty measure-subspace masks within ``universe``, optionally
    capped at ``max_size`` attributes (the paper's ``m̂``), ordered by
    decreasing size so the full space comes first."""
    out = [
        m
        for m in iter_submasks(universe)
        if m != 0 and (max_size is None or popcount(m) <= max_size)
    ]
    out.sort(key=popcount, reverse=True)
    return out
