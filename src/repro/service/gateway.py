"""HTTP + WebSocket read gateway over the materialized feed tier.

:class:`FeedGateway` fronts a :class:`~repro.service.server.StreamServer`
whose engine carries a ``feeds`` spec: REST reads page the materialized
:class:`~repro.service.feeds.FeedStore` with cursors, and WebSocket
subscribers receive per-segment snapshot/update frames as feed versions
advance — no read ever touches the engine, so fan-out scales with
subscriber count instead of ingest throughput (ROADMAP item 1: the
millions-of-users read path).

Both protocols are hand-rolled over asyncio streams (HTTP/1.1 request
parsing, RFC 6455 frames) — the container policy is stdlib-only.

Endpoints
---------
``GET /healthz``
    Liveness: ``{"ok": true, "running": …}``.
``GET /stats``
    The server's full stats snapshot (gateway counters included).
``GET /feeds``
    Segment directory: key, version, entry count, staleness, evictions.
``GET /feeds/<segment>?cursor=&limit=&top_k=&tau=``
    One cursor page of a segment's ranked feed (percent-encode the
    segment key).  Cursors are ``v<version>:<offset>``; a cursor minted
    against an older version restarts at offset 0 with
    ``"restarted": true``.
``GET /subscribe?segment=&entity=&measures=&tau=`` (WebSocket upgrade)
    Push stream.  On connect, one ``snapshot`` frame per matching
    segment; afterwards an ``update`` frame per segment version change.

Backpressure
------------
Each subscriber connection holds a bounded *dirty-segment* set, not a
frame queue: frames are rendered from current store state at send time,
so a slow consumer automatically coalesces every missed version of a
segment into the next frame (``gateway_frames_coalesced``).  If even the
dirty set overflows (``max_pending_segments``), it is cleared
(``gateway_frames_dropped``) and the connection is scheduled for one
full resync — memory per connection stays bounded no matter how slow
the consumer, and the catch-up is a snapshot, never a replay.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import struct
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket opcodes.
OP_TEXT, OP_CLOSE, OP_PING, OP_PONG = 0x1, 0x8, 0x9, 0xA


def ws_accept_key(key: str) -> str:
    """RFC 6455 §4.2.2 Sec-WebSocket-Accept derivation."""
    digest = hashlib.sha1((key + _WS_GUID).encode()).digest()
    return base64.b64encode(digest).decode()


def ws_encode_frame(payload: bytes, opcode: int = OP_TEXT, mask: bool = False) -> bytes:
    """One FIN-flagged frame; clients must set ``mask`` (RFC 6455 §5.3)."""
    head = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack(">H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", length)
    if mask:
        key = os.urandom(4)
        head += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


async def ws_read_frame(reader) -> Tuple[int, bytes]:
    """Read one frame, unmasking if needed; raises
    :class:`asyncio.IncompleteReadError` on a closed peer."""
    b1, b2 = await reader.readexactly(2)
    opcode = b1 & 0x0F
    masked = bool(b2 & 0x80)
    length = b2 & 0x7F
    if length == 126:
        (length,) = struct.unpack(">H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await reader.readexactly(8))
    key = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(length) if length else b""
    if key:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


class SubscriptionFilter:
    """Per-connection filter: segment key, entity binding, measure
    subspace, and a prominence floor.

    * ``segment`` — exact segment-key match;
    * ``entity`` — ``dim=value`` (must appear among the key's bindings)
      or a bare value (matches any binding's value);
    * ``measures`` — entry's measure set must be a subset;
    * ``tau`` — entry prominence floor (on top of the spec's).
    """

    __slots__ = ("segment", "entity", "measures", "tau")

    def __init__(
        self,
        segment: Optional[str] = None,
        entity: Optional[str] = None,
        measures: Optional[Iterable[str]] = None,
        tau: Optional[float] = None,
    ) -> None:
        self.segment = segment
        self.entity = entity
        self.measures = frozenset(measures) if measures is not None else None
        self.tau = tau

    def match_segment(self, key: str) -> bool:
        if self.segment is not None and key != self.segment:
            return False
        if self.entity:
            parts = key.split(",")
            if "=" in self.entity:
                if self.entity not in parts:
                    return False
            elif not any(
                part.split("=", 1)[1] == self.entity
                for part in parts
                if "=" in part
            ):
                return False
        return True

    def match_entry(self, entry: dict) -> bool:
        if self.tau is not None and (entry["prominence"] or 0.0) < self.tau:
            return False
        if self.measures is not None and not (
            set(entry["measures"]) <= self.measures
        ):
            return False
        return True


class _Subscriber:
    """One WebSocket connection's delivery state (bounded)."""

    __slots__ = ("filters", "dirty", "resync", "wake", "known", "writer")

    def __init__(self, filters: SubscriptionFilter, writer) -> None:
        self.filters = filters
        #: Segments with undelivered changes, in first-dirtied order.
        #: Values are irrelevant — an OrderedDict for ordered pops.
        self.dirty: "OrderedDict[str, None]" = OrderedDict()
        #: Set when the dirty set overflowed: deliver one full snapshot
        #: sweep instead of per-segment updates.
        self.resync = False
        self.wake = asyncio.Event()
        #: Segments already delivered at least once (frame typing).
        self.known: Set[str] = set()
        self.writer = writer


class FeedGateway:
    """Asyncio HTTP/WebSocket front-end over a server's feed store."""

    def __init__(
        self,
        server,
        *,
        max_pending_segments: int = 256,
    ) -> None:
        if server.feeds is None:
            raise ValueError(
                "FeedGateway needs a StreamServer with a feed store "
                "(EngineSpec.feeds)"
            )
        if max_pending_segments < 1:
            raise ValueError("max_pending_segments must be >= 1")
        self.server = server
        self.feeds = server.feeds
        self.stats = server.stats
        self.max_pending_segments = max_pending_segments
        self._listener: Optional[asyncio.AbstractServer] = None
        self._subscribers: Set[_Subscriber] = set()
        self._conn_tasks: Set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0):
        """Listen for HTTP/WebSocket clients; returns the asyncio
        server (ephemeral port via ``sockets[0].getsockname()``)."""
        if self._listener is not None:
            raise RuntimeError("FeedGateway already started")
        self._listener = await asyncio.start_server(self._handle, host, port)
        self.server.add_feed_listener(self._on_feed_change)
        return self._listener

    async def stop(self) -> None:
        if self._listener is None:
            return
        self._listener.close()
        await self._listener.wait_closed()
        self._listener = None
        for task in list(self._conn_tasks):
            task.cancel()
        for task in list(self._conn_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._conn_tasks.clear()
        self._subscribers.clear()
        self.stats.gateway_subscribers = 0

    # ------------------------------------------------------------------
    # Change fan-out
    # ------------------------------------------------------------------
    def _on_feed_change(self, changed: Set[str]) -> None:
        for conn in self._subscribers:
            hit = False
            for key in changed:
                if not conn.filters.match_segment(key):
                    continue
                hit = True
                if key in conn.dirty:
                    # Already pending: the eventual frame reads current
                    # state, so this version is coalesced into it.
                    self.stats.gateway_frames_coalesced += 1
                elif conn.resync:
                    self.stats.gateway_frames_coalesced += 1
                elif len(conn.dirty) >= self.max_pending_segments:
                    # Bounded memory: collapse the backlog into one
                    # resync snapshot instead of queueing further.
                    self.stats.gateway_frames_dropped += len(conn.dirty) + 1
                    conn.dirty.clear()
                    conn.resync = True
                else:
                    conn.dirty[key] = None
            if hit:
                conn.wake.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, headers = request
            if method != "GET":
                await self._respond(
                    writer, 405, {"error": "only GET is supported"}
                )
                return
            if headers.get("upgrade", "").lower() == "websocket":
                await self._serve_ws(reader, writer, path, query, headers)
            else:
                self.stats.gateway_http_requests += 1
                await self._serve_http(writer, path, query)
        except (
            ConnectionResetError,
            asyncio.IncompleteReadError,
            BrokenPipeError,
            asyncio.CancelledError,
        ):
            # CancelledError: gateway stop() tears connections down;
            # swallowing here keeps the streams callback quiet.
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):  # pragma: no cover
                pass

    async def _read_request(self, reader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        parts = urlsplit(target)
        query = {
            name: values[-1] for name, values in parse_qs(parts.query).items()
        }
        return method, parts.path, query, headers

    async def _respond(self, writer, status: int, payload: dict) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed"}.get(status, "OK")
        body = json.dumps(payload).encode()
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            + body
        )
        await writer.drain()

    # ------------------------------------------------------------------
    # REST reads (materialized state only)
    # ------------------------------------------------------------------
    async def _serve_http(self, writer, path: str, query: dict) -> None:
        if path == "/healthz":
            await self._respond(
                writer,
                200,
                {"ok": bool(self.server._running),
                 "running": bool(self.server._running)},
            )
            return
        if path == "/stats":
            await self._respond(writer, 200, {"stats": self.server.stats_snapshot()})
            return
        if path == "/feeds":
            await self._respond(
                writer, 200, {"segments": self.feeds.segments()}
            )
            return
        if path.startswith("/feeds/"):
            key = unquote(path[len("/feeds/"):])
            try:
                page = self.feeds.read(
                    key,
                    top_k=(
                        int(query["top_k"]) if "top_k" in query else None
                    ),
                    tau=float(query["tau"]) if "tau" in query else None,
                    cursor=query.get("cursor"),
                    limit=int(query.get("limit", 50)),
                )
            except ValueError as exc:
                await self._respond(writer, 400, {"error": str(exc)})
                return
            if page is None:
                await self._respond(
                    writer, 404, {"error": f"unknown segment {key!r}"}
                )
                return
            await self._respond(writer, 200, page)
            return
        await self._respond(writer, 404, {"error": f"no route {path!r}"})

    # ------------------------------------------------------------------
    # WebSocket subscriptions
    # ------------------------------------------------------------------
    def _parse_filters(self, query: dict) -> SubscriptionFilter:
        measures = None
        if "measures" in query:
            measures = [
                m.strip() for m in query["measures"].split(",") if m.strip()
            ]
        return SubscriptionFilter(
            segment=query.get("segment"),
            entity=query.get("entity"),
            measures=measures,
            tau=float(query["tau"]) if "tau" in query else None,
        )

    async def _serve_ws(self, reader, writer, path, query, headers) -> None:
        if path not in ("/subscribe", "/ws"):
            await self._respond(writer, 404, {"error": f"no route {path!r}"})
            return
        key = headers.get("sec-websocket-key")
        if not key:
            await self._respond(
                writer, 400, {"error": "missing Sec-WebSocket-Key"}
            )
            return
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {ws_accept_key(key)}\r\n\r\n"
            ).encode()
        )
        await writer.drain()
        conn = _Subscriber(self._parse_filters(query), writer)
        self._subscribers.add(conn)
        self.stats.gateway_subscribers += 1
        # Initial state: every matching segment is delivered as a
        # snapshot (through the same bounded dirty set as updates).
        for seg_key in self.feeds.segment_keys():
            if conn.filters.match_segment(seg_key):
                if len(conn.dirty) >= self.max_pending_segments:
                    conn.dirty.clear()
                    conn.resync = True
                    break
                conn.dirty[seg_key] = None
        conn.wake.set()
        pump = asyncio.ensure_future(self._pump(conn))
        self._conn_tasks.add(pump)
        try:
            while True:
                opcode, payload = await ws_read_frame(reader)
                if opcode == OP_CLOSE:
                    break
                if opcode == OP_PING:
                    conn.writer.write(ws_encode_frame(payload, OP_PONG))
                    await conn.writer.drain()
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        finally:
            pump.cancel()
            try:
                await pump
            except (asyncio.CancelledError, Exception):
                pass
            self._conn_tasks.discard(pump)
            self._subscribers.discard(conn)
            self.stats.gateway_subscribers -= 1

    def _render(self, conn: _Subscriber, key: str, resync: bool) -> bytes:
        """One frame for ``key`` from *current* store state (renders at
        send time — every version missed by a slow consumer is folded
        into this one frame)."""
        entries = [
            e.to_json_dict(self.feeds.schema)
            for e in self.feeds.entries_ranked(key)
        ]
        if conn.filters.tau is not None or conn.filters.measures is not None:
            entries = [e for e in entries if conn.filters.match_entry(e)]
        with self.feeds._lock:
            segment = self.feeds._segments.get(key)
            version = segment.version if segment is not None else 0
        frame_type = "update" if key in conn.known else "snapshot"
        if resync:
            frame_type = "snapshot"
        conn.known.add(key)
        payload = {
            "type": frame_type,
            "segment": key,
            "version": version,
            "entries": entries,
        }
        if resync:
            payload["resync"] = True
        return ws_encode_frame(json.dumps(payload).encode())

    async def _pump(self, conn: _Subscriber) -> None:
        """Per-connection writer: drain the dirty set (or run a resync
        sweep) at whatever pace the socket accepts.  ``drain()`` is the
        only await that can block on the consumer, so backlog only ever
        accumulates in the bounded dirty set."""
        try:
            while True:
                await conn.wake.wait()
                conn.wake.clear()
                while conn.dirty or conn.resync:
                    if conn.resync:
                        conn.resync = False
                        conn.dirty.clear()
                        keys = [
                            k
                            for k in self.feeds.segment_keys()
                            if conn.filters.match_segment(k)
                        ]
                        for key in keys:
                            conn.writer.write(self._render(conn, key, True))
                            await conn.writer.drain()
                            self.stats.gateway_frames_sent += 1
                        continue
                    key, _ = conn.dirty.popitem(last=False)
                    conn.writer.write(self._render(conn, key, False))
                    await conn.writer.drain()
                    self.stats.gateway_frames_sent += 1
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


# ----------------------------------------------------------------------
# Minimal clients (tests, benches, CLI probes)
# ----------------------------------------------------------------------
async def fetch_json(
    host: str, port: int, path: str, timeout: float = 5.0
) -> dict:
    """One ``GET`` against the gateway; returns the decoded JSON body."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        writer.write(
            (
                f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    payload = json.loads(body) if body else {}
    if status >= 400:
        raise ValueError(
            f"HTTP {status} for {path}: {payload.get('error', '?')}"
        )
    return payload


class FeedClient:
    """Minimal WebSocket subscriber (handshake + masked text frames)."""

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        path: str = "/subscribe",
        timeout: float = 5.0,
    ) -> "FeedClient":
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
        key = base64.b64encode(os.urandom(16)).decode()
        writer.write(
            (
                f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                "Upgrade: websocket\r\nConnection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n\r\n"
            ).encode()
        )
        await writer.drain()
        status = await asyncio.wait_for(reader.readline(), timeout)
        if b"101" not in status:
            writer.close()
            raise ConnectionError(f"handshake refused: {status!r}")
        accept = None
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "sec-websocket-accept":
                accept = value.strip()
        if accept != ws_accept_key(key):
            writer.close()
            raise ConnectionError("bad Sec-WebSocket-Accept")
        return cls(reader, writer)

    async def recv(self, timeout: float = 5.0) -> dict:
        """Next text frame as JSON (transparently answers pings)."""
        while True:
            opcode, payload = await asyncio.wait_for(
                ws_read_frame(self._reader), timeout
            )
            if opcode == OP_TEXT:
                return json.loads(payload)
            if opcode == OP_PING:
                self._writer.write(
                    ws_encode_frame(payload, OP_PONG, mask=True)
                )
                await self._writer.drain()
            elif opcode == OP_CLOSE:
                raise ConnectionError("server closed the subscription")

    async def close(self) -> None:
        try:
            self._writer.write(ws_encode_frame(b"", OP_CLOSE, mask=True))
            await self._writer.drain()
        except (ConnectionResetError, OSError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass
