"""Serving layer: sharded subspace-parallel ingestion + async front-end.

The library discovers situational facts one call at a time; this package
turns it into a *service*:

* :mod:`repro.service.sharding` — :class:`ShardedDiscoverer` partitions
  the measure-subspace axis across worker engines (in-process, threaded,
  or one OS process each) and recombines per-arrival facts in canonical
  emission order, property-tested identical to the unsharded engine;
* :mod:`repro.service.server` — :class:`StreamServer`, an asyncio
  front-end with a bounded ingest queue, adaptive micro-batching,
  backpressure, fact subscriptions, periodic snapshot checkpointing and
  graceful drain, plus an optional NDJSON-over-TCP listener.
"""

from .sharding import (
    ShardedDiscoverer,
    canonical_subspace_keys,
    partition_subspaces,
)
from .server import StreamServer

__all__ = [
    "ShardedDiscoverer",
    "StreamServer",
    "canonical_subspace_keys",
    "partition_subspaces",
]
