"""Serving layer: sharded subspace-parallel ingestion + async front-end.

The library discovers situational facts one call at a time; this package
turns it into a *service*:

* :mod:`repro.service.sharding` — :class:`ShardedDiscoverer` partitions
  the measure-subspace axis across worker engines (in-process, threaded,
  or one OS process each) and recombines per-arrival facts in canonical
  emission order, property-tested identical to the unsharded engine;
* :mod:`repro.service.server` — :class:`StreamServer`, an asyncio
  front-end with a bounded ingest queue, adaptive micro-batching,
  backpressure, fact subscriptions, periodic snapshot checkpointing and
  graceful drain, plus an optional NDJSON-over-TCP listener;
* :mod:`repro.service.journal` — the append-only write-ahead journal
  of accepted ops; recovery = latest snapshot + journal suffix;
* :mod:`repro.service.supervisor` — crash detection, restart with
  backoff, and deterministic state rebuild for process-mode workers;
* :mod:`repro.service.remote` — the length-prefixed, CRC-framed socket
  protocol (versioned handshake, per-request timeouts) that turns any
  machine running ``repro-facts shard-worker`` into a pool member;
* :mod:`repro.service.cluster` — replica sets per shard (read fan-out,
  promotion failover, deterministic re-observe on join) and the
  cost-fed :class:`PlacementModel` behind ``mode="remote"`` sharding;
* :mod:`repro.service.faults` — the spec/env-driven fault-injection
  registry the chaos tests (and the CI chaos job) drive;
* :mod:`repro.service.feeds` — :class:`FeedStore`, materialized
  per-segment top-k feeds maintained incrementally (and exactly) off the
  fact stream, with cursor pagination and checkpoint sidecars;
* :mod:`repro.service.gateway` — :class:`FeedGateway`, the hand-rolled
  HTTP + WebSocket fan-out front-end over the feed store, with bounded
  per-connection backpressure (coalesced snapshots for slow consumers).
"""

from .cluster import PlacementModel, ReplicaSet, cluster_status
from .feeds import FeedStore
from .gateway import FeedClient, FeedGateway, fetch_json
from .journal import JournalWriter, RecoveryReport, recover_engine
from .remote import RemoteWorker, SocketWorkerServer, run_worker
from .sharding import (
    ShardedDiscoverer,
    canonical_subspace_keys,
    partition_subspaces,
)
from .server import StreamServer
from .supervisor import SupervisedWorker, SupervisorPolicy, WorkerCrashed, WorkerGaveUp

__all__ = [
    "FeedClient",
    "FeedGateway",
    "FeedStore",
    "JournalWriter",
    "PlacementModel",
    "RecoveryReport",
    "RemoteWorker",
    "ReplicaSet",
    "ShardedDiscoverer",
    "SocketWorkerServer",
    "StreamServer",
    "SupervisedWorker",
    "SupervisorPolicy",
    "WorkerCrashed",
    "WorkerGaveUp",
    "canonical_subspace_keys",
    "cluster_status",
    "fetch_json",
    "partition_subspaces",
    "recover_engine",
    "run_worker",
]
