"""Serving layer: sharded subspace-parallel ingestion + async front-end.

The library discovers situational facts one call at a time; this package
turns it into a *service*:

* :mod:`repro.service.sharding` — :class:`ShardedDiscoverer` partitions
  the measure-subspace axis across worker engines (in-process, threaded,
  or one OS process each) and recombines per-arrival facts in canonical
  emission order, property-tested identical to the unsharded engine;
* :mod:`repro.service.server` — :class:`StreamServer`, an asyncio
  front-end with a bounded ingest queue, adaptive micro-batching,
  backpressure, fact subscriptions, periodic snapshot checkpointing and
  graceful drain, plus an optional NDJSON-over-TCP listener;
* :mod:`repro.service.journal` — the append-only write-ahead journal
  of accepted ops; recovery = latest snapshot + journal suffix;
* :mod:`repro.service.supervisor` — crash detection, restart with
  backoff, and deterministic state rebuild for process-mode workers;
* :mod:`repro.service.faults` — the spec/env-driven fault-injection
  registry the chaos tests (and the CI chaos job) drive.
"""

from .journal import JournalWriter, RecoveryReport, recover_engine
from .sharding import (
    ShardedDiscoverer,
    canonical_subspace_keys,
    partition_subspaces,
)
from .server import StreamServer
from .supervisor import SupervisedWorker, SupervisorPolicy, WorkerCrashed, WorkerGaveUp

__all__ = [
    "JournalWriter",
    "RecoveryReport",
    "ShardedDiscoverer",
    "StreamServer",
    "SupervisedWorker",
    "SupervisorPolicy",
    "WorkerCrashed",
    "WorkerGaveUp",
    "canonical_subspace_keys",
    "partition_subspaces",
    "recover_engine",
]
