"""Socket wire protocol for remote shard workers.

This module promotes the process-mode worker pipe protocol of
:mod:`repro.service.sharding` to a socket protocol any machine can
speak, so a shard pool is no longer confined to one OS process tree
(see :mod:`repro.service.cluster` for the replica/placement layer on
top, and the ``repro-facts shard-worker`` CLI command that turns a
machine into a pool member).

Wire format — length-prefixed, CRC-framed, mirroring the journal's
frame layout (:mod:`repro.service.journal`)::

    <u32 payload_len> <u32 crc32(payload)> <payload bytes>

with the payload a pickled ``(op, payload)`` 2-tuple (pickle, not JSON:
rows and replies carry the same Python values the pipe protocol already
pickles — tuples, ``None`` dimension markers, numpy scalars).  The CRC
rejects torn or corrupted frames at the receiver; a mismatch closes the
connection rather than desyncing the FIFO.  The protocol is a trusted
*internal* transport (pickle executes arbitrary code by design): bind
workers to loopback or a private network, never the open internet.

Session layout:

* **handshake** — the client opens with ``("hello", {"version": N})``;
  the worker answers in kind or replies ``("error", reason)`` and closes
  on a version mismatch, so routers and workers from different releases
  fail loudly at connect time instead of mid-stream;
* **requests** — ``(op, payload)`` frames, strictly FIFO per
  connection, the same op vocabulary as the pipe protocol (``rows`` /
  ``delete`` / ``counters`` / ``skyline`` / ``skyband`` / ``top_k`` /
  ``replay``) plus ``configure`` (install a shard engine), ``ping``
  (heartbeat), ``stats`` (worker-side tallies for ``cluster-status``),
  ``stop`` (end this connection) and ``shutdown`` (end the worker);
* **replies** — ``("ok", result)`` or ``("error", reason)`` frames.

Per-request timeouts: the router side sets the socket timeout to the
sharding ``op_timeout``, so a worker that hangs (or whose reply a
``worker.reply`` fault drops, or whose ``worker.op`` fault sleeps past
the budget) surfaces as a :class:`~repro.service.supervisor.\
WorkerCrashed` — the same signal the supervised pipe workers raise —
and the replica layer fails over.  Worker-side, the handler loop fires
the :mod:`repro.service.faults` ``worker.op`` / ``worker.reply`` hook
points exactly like the pipe loop, so the chaos suite drives socket
workers with the same fault specs.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import sys
import threading
import zlib
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Tuple

from . import faults
from .sharding import IngestReply, _apply_worker_fault, _build_shard_engine
from .supervisor import WorkerCrashed

#: Version exchanged in the handshake; bumped on any frame/op change.
PROTOCOL_VERSION = 1

#: Frame header: little-endian payload length + CRC32 of the payload
#: (the journal's frame layout, reused byte for byte).
_FRAME = struct.Struct("<II")

#: Upper bound on one frame's payload — a corrupted length prefix must
#: not make the receiver try to allocate gigabytes.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class FrameError(ConnectionError):
    """A frame failed to parse: short read, CRC mismatch, oversize."""


class HandshakeError(ConnectionError):
    """The peer spoke a different protocol version (or no hello)."""


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``"host:port"`` (the placement-map address format)."""
    host, _, port = str(address).rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected 'host:port', got {address!r}")
    return host, int(port)


def send_msg(sock: socket.socket, op: str, payload: object) -> None:
    """Frame and send one ``(op, payload)`` message."""
    body = pickle.dumps((op, payload), protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"refusing to send a {len(body)}-byte frame "
            f"(MAX_FRAME_BYTES={MAX_FRAME_BYTES})"
        )
    sock.sendall(
        _FRAME.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body
    )


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        piece = sock.recv(n - len(buf))
        if not piece:
            raise FrameError(
                f"connection closed mid-frame ({len(buf)}/{n} bytes)"
            )
        buf.extend(piece)
    return bytes(buf)


def recv_msg(sock: socket.socket) -> Tuple[str, object]:
    """Receive one framed message; raises :class:`FrameError` on a
    short read, an implausible length, or a CRC mismatch."""
    length, crc = _FRAME.unpack(_recv_exact(sock, _FRAME.size))
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length)
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise FrameError("frame CRC mismatch (corrupted payload)")
    return pickle.loads(body)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class SocketWorkerServer:
    """One shard-worker pool member: a socket server hosting a single
    shard-restricted ``svec`` engine.

    The engine is installed by the router's ``configure`` op (the same
    pickle-light spec dict the pipe workers receive, including the
    forwarded fault list) and serialized under a lock, so a second
    connection — ``cluster-status`` pinging mid-stream, a replica-join
    replay — interleaves safely with the primary ingest connection.

    ``start()`` runs the accept loop on a daemon thread (tests embed
    workers in-process on ephemeral ports); :func:`run_worker` runs it
    in the foreground (the CLI / a dedicated worker process).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self.address = f"{self.host}:{self.port}"
        self._engine = None
        self._engine_lock = threading.Lock()
        self._index: Optional[int] = None
        self._shard_keys: List[int] = []
        self._stop = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        #: Worker-side tallies served to ``stats`` probes.
        self.rows_applied = 0
        self.deletes_applied = 0
        self.busy_seconds = 0.0
        self.op_counts: Dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------
    def start(self) -> "SocketWorkerServer":
        """Serve on a daemon thread (in-process embedding)."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept connections until a ``shutdown`` op (or :meth:`stop`);
        one handler thread per connection."""
        try:
            while not self._stop.is_set():
                try:
                    conn, _addr = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:  # pragma: no cover - listener closed
                    break
                threading.Thread(
                    target=self._serve_connection, args=(conn,), daemon=True
                ).start()
        finally:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def stop(self) -> None:
        """Stop accepting and wind the server down (idempotent)."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if (
            self._accept_thread is not None
            and self._accept_thread is not threading.current_thread()
        ):
            self._accept_thread.join(timeout=2.0)

    # -- connection handling -----------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            try:
                op, payload = recv_msg(conn)
            except (FrameError, OSError, pickle.UnpicklingError, EOFError):
                return
            if (
                op != "hello"
                or not isinstance(payload, Mapping)
                or payload.get("version") != PROTOCOL_VERSION
            ):
                got = (
                    payload.get("version")
                    if isinstance(payload, Mapping)
                    else None
                )
                try:
                    send_msg(
                        conn,
                        "error",
                        f"protocol version mismatch: worker speaks "
                        f"{PROTOCOL_VERSION}, client sent {got!r}",
                    )
                except OSError:
                    pass
                return
            send_msg(
                conn,
                "hello",
                {
                    "version": PROTOCOL_VERSION,
                    "pid": os.getpid(),
                    "configured": self._engine is not None,
                },
            )
            while not self._stop.is_set():
                try:
                    op, payload = recv_msg(conn)
                except (FrameError, OSError, pickle.UnpicklingError, EOFError):
                    break
                self.op_counts[op] = self.op_counts.get(op, 0) + 1
                if op == "stop":
                    break
                if op == "shutdown":
                    try:
                        send_msg(conn, "ok", "shutting down")
                    except OSError:
                        pass
                    self._stop.set()
                    break
                # The pipe loop's fault hook points, verbatim: a dropped
                # op / reply is silence the router's op_timeout notices.
                if _apply_worker_fault(
                    faults.fire("worker.op", worker=self._index, op=op)
                ):
                    continue
                try:
                    reply = self._dispatch(op, payload)
                    status = "ok"
                except Exception as exc:
                    status, reply = "error", f"{type(exc).__name__}: {exc}"
                if _apply_worker_fault(
                    faults.fire("worker.reply", worker=self._index, op=op)
                ):
                    continue
                try:
                    send_msg(conn, status, reply)
                except OSError:
                    break
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _dispatch(self, op: str, payload) -> object:
        with self._engine_lock:
            if op == "configure":
                spec = dict(payload)
                self._index = spec.get("worker_index")
                if spec.get("faults"):
                    # Router-forwarded faults, like the pipe spawn spec.
                    # An empty list leaves any env-armed faults alone.
                    faults.install(spec["faults"])
                self._engine = _build_shard_engine(spec)
                self._shard_keys = list(spec["shard"])
                self.rows_applied = 0
                self.deletes_applied = 0
                self.busy_seconds = 0.0
                return {"shard": self._index, "keys": len(self._shard_keys)}
            if op == "ping":
                return {
                    "configured": self._engine is not None,
                    "rows": self.rows_applied,
                    "busy_seconds": self.busy_seconds,
                }
            if op == "stats":
                return {
                    "version": PROTOCOL_VERSION,
                    "pid": os.getpid(),
                    "configured": self._engine is not None,
                    "shard": self._index,
                    "keys": len(self._shard_keys),
                    "rows": self.rows_applied,
                    "deletes": self.deletes_applied,
                    "busy_seconds": round(self.busy_seconds, 6),
                    "op_counts": dict(self.op_counts),
                }
            engine = self._engine
            if engine is None:
                raise RuntimeError(
                    f"worker not configured (op {op!r} before 'configure')"
                )
            if op == "rows":
                reply = engine.ingest(payload)
                self.rows_applied += len(payload)
                self.busy_seconds += reply[4]
                return reply
            if op == "delete":
                engine.delete(payload)
                self.deletes_applied += 1
                return ("ok", payload)
            if op == "counters":
                return engine.counters()
            if op == "skyline":
                return engine.skyline_tids(*payload)
            if op == "skyband":
                return engine.skyband_tids(*payload)
            if op == "top_k":
                return engine.top_k_stats(*payload)
            if op == "replay":
                # Deterministic re-observe on replica join/reconfigure:
                # a slice of the router's committed op prefix.
                for kind, data in payload:
                    if kind == "rows":
                        engine.ingest(data)
                        self.rows_applied += len(data)
                    else:
                        engine.delete(data)
                        self.deletes_applied += 1
                return ("replayed", len(payload))
            raise ValueError(f"unknown op {op!r}")


def run_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    ready=None,
    banner: bool = True,
) -> int:
    """Run one shard worker in the foreground (the ``repro-facts
    shard-worker`` entry point; also spawnable as a
    ``multiprocessing.Process`` target — ``ready.put(port)`` publishes
    the bound ephemeral port to the parent)."""
    faults.install_from_env()
    server = SocketWorkerServer(host, port)
    if ready is not None:
        ready.put(server.port)
    if banner:
        print(
            f"listening on {server.host}:{server.port}",
            file=sys.stderr,
            flush=True,
        )
    server.serve_forever()
    return 0


# ----------------------------------------------------------------------
# Router side
# ----------------------------------------------------------------------
class RemoteWorker:
    """Router-side handle of one remote replica: the pipe-worker
    surface over a framed socket, with every round-trip bounded by
    ``op_timeout`` (a silent worker raises
    :class:`~repro.service.supervisor.WorkerCrashed` rather than
    blocking the router forever — the replica layer's failover signal).
    """

    def __init__(
        self,
        index: int,
        address: str,
        spec: Optional[Mapping[str, object]] = None,
        op_timeout: float = 60.0,
        connect_timeout: float = 5.0,
    ) -> None:
        self.index = index
        self.address = str(address)
        self.op_timeout = op_timeout
        self.busy_seconds = 0.0
        host, port = parse_address(address)
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            raise WorkerCrashed(
                index, f"cannot connect to {address}: {exc}"
            ) from None
        self._sock.settimeout(op_timeout)
        try:
            self._send("hello", {"version": PROTOCOL_VERSION, "role": "router"})
            op, payload = self._recv()
            if op == "error":
                raise HandshakeError(f"{address}: {payload}")
            if op != "hello" or (
                not isinstance(payload, Mapping)
                or payload.get("version") != PROTOCOL_VERSION
            ):
                raise HandshakeError(
                    f"{address}: bad handshake reply {op!r} "
                    f"(router speaks version {PROTOCOL_VERSION})"
                )
            if spec is not None:
                self.request("configure", dict(spec))
        except (WorkerCrashed, HandshakeError):
            self._sock.close()
            raise

    # -- framed round-trips with crash detection ---------------------
    def _send(self, op: str, payload: object) -> None:
        try:
            send_msg(self._sock, op, payload)
        except (OSError, FrameError) as exc:
            raise WorkerCrashed(
                self.index, f"{self.address}: send failed ({exc})"
            ) from None

    def _recv(self) -> Tuple[str, object]:
        try:
            return recv_msg(self._sock)
        except socket.timeout:
            raise WorkerCrashed(
                self.index,
                f"{self.address}: no reply within "
                f"op_timeout={self.op_timeout}s",
            ) from None
        except (OSError, FrameError, EOFError, pickle.UnpicklingError) as exc:
            raise WorkerCrashed(
                self.index,
                f"{self.address}: {type(exc).__name__}: {exc}",
            ) from None

    def _reply(self):
        status, payload = self._recv()
        if status == "error":
            raise WorkerCrashed(
                self.index, f"{self.address}: remote error: {payload}"
            )
        return payload

    def request(self, op: str, payload: object = None):
        """One synchronous ``(op → reply)`` round-trip."""
        self._send(op, payload)
        return self._reply()

    # -- worker surface (mirrors _ProcessWorker) ---------------------
    def submit_rows(self, rows) -> None:
        self._send("rows", rows)

    def result(self) -> IngestReply:
        reply = self._reply()
        self.busy_seconds += reply[4]
        return reply

    def delete(self, tid: int) -> None:
        self.request("delete", int(tid))

    def counters(self) -> Dict[str, int]:
        return self.request("counters")

    def skyline(self, values, subspace: int) -> List[int]:
        return self.request("skyline", (values, subspace))

    def skyband(self, values, subspace: int, k: int, limit=None) -> List[int]:
        return self.request("skyband", (values, subspace, k, limit))

    def top_k(self, values, subspace: int, limit) -> Tuple[int, int, List[int]]:
        return self.request("top_k", (values, subspace, limit))

    def replay(self, ops) -> None:
        self.request("replay", list(ops))

    def ping(self) -> Tuple[float, Mapping[str, object]]:
        """Heartbeat: round-trip time plus the worker's liveness
        payload.  Issue only while no ingest replies are outstanding —
        the per-connection protocol is strictly FIFO."""
        start = perf_counter()
        payload = self.request("ping")
        return perf_counter() - start, payload

    def stats_probe(self) -> Mapping[str, object]:
        return self.request("stats")

    def abandon(self) -> None:
        """Drop the connection without the polite stop (the peer is
        presumed dead or desynced)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def close(self) -> None:
        try:
            send_msg(self._sock, "stop", None)
        except (OSError, FrameError):
            pass
        self.abandon()


def probe_worker(address: str, timeout: float = 2.0) -> Dict[str, object]:
    """One-shot status probe of a pool member (``cluster-status``):
    connect, handshake, ``stats``, disconnect.  Raises on an
    unreachable or protocol-incompatible worker."""
    host, port = parse_address(address)
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(timeout)
    try:
        send_msg(sock, "hello", {"version": PROTOCOL_VERSION, "role": "status"})
        op, payload = recv_msg(sock)
        if op == "error":
            raise HandshakeError(f"{address}: {payload}")
        start = perf_counter()
        send_msg(sock, "stats", None)
        status, stats = recv_msg(sock)
        rtt = perf_counter() - start
        if status != "ok":
            raise ConnectionError(f"{address}: {stats}")
        try:
            send_msg(sock, "stop", None)
        except OSError:  # pragma: no cover - peer already gone
            pass
        return dict(stats, rtt_seconds=rtt)
    finally:
        sock.close()
