"""Append-only write-ahead journal of ingest/delete ops.

The paper's discovery model is strictly incremental: every fact set is
a deterministic function of the arrival/deletion prefix.  Exact crash
recovery therefore reduces to *journaling the prefix*:

    recovered state = latest v3 snapshot + replay of the journal suffix

:class:`JournalWriter` appends one CRC-framed record per accepted op
(``ingest`` row / ``delete`` tid) to segment files under a directory;
:func:`read_ops` streams them back in order, tolerating a torn or
truncated tail (the expected artifact of a crash mid-append) while
refusing mid-file corruption with an actionable ``ValueError`` — a
silent partial restore is never an option.  :func:`recover_engine`
glues the two halves together for the serving layer.

Frame format (one per op)::

    <u32 payload_len> <u32 crc32(payload)> <payload: UTF-8 JSON>

(the same length+CRC frame the remote shard-worker socket protocol
reuses on the wire — see :mod:`repro.service.remote`) with payload
``{"seq": n, "op": "ingest", "row": {...}}`` or
``{"seq": n, "op": "delete", "tid": k}``.  Sequence numbers are global
and monotone from 1; a checkpoint records the sequence it covers
(``journal_seq`` in the snapshot document), so replay applies exactly
the ops with ``seq > journal_seq``.

Durability is a knob (``fsync``):

* ``"never"`` — buffered writes only; the OS flushes.  Near-zero
  overhead (the bench-guard budget is <= 5% of the scored
  ``observe_many`` marginal); a host crash can lose the tail, a mere
  process crash cannot (the file buffer is flushed per batch).
* ``"batch"`` (default) — one ``fsync`` per micro-batch commit.
* ``"always"`` — ``fsync`` after every record (group-commit of one).

Segments rotate when they exceed ``segment_max_bytes`` and — anchored
at checkpoints — on :meth:`JournalWriter.checkpoint`, which also prunes
segments wholly covered by the durably-written snapshot.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from . import faults

#: Segment header: magic + format version (torn below this is "empty").
_HEADER = b"RPWAL1\n"
_FRAME = struct.Struct("<II")

#: Segment file name: ``wal-<first_seq, 12 digits>.log``.
_SEG_PREFIX = "wal-"
_SEG_SUFFIX = ".log"

_FSYNC_POLICIES = ("never", "batch", "always")

#: Default rotation threshold (bytes) — small enough that replay after
#: a checkpoint touches few files, large enough that rotation is rare.
DEFAULT_SEGMENT_BYTES = 16 * 1024 * 1024


class JournalCorruptError(ValueError):
    """Journal bytes are damaged somewhere other than the torn tail."""


def _segment_path(directory: str, first_seq: int) -> str:
    return os.path.join(
        directory, f"{_SEG_PREFIX}{first_seq:012d}{_SEG_SUFFIX}"
    )


def list_segments(directory: str) -> List[Tuple[int, str]]:
    """``(first_seq, path)`` of every segment, ascending."""
    out = []
    for name in os.listdir(directory):
        if name.startswith(_SEG_PREFIX) and name.endswith(_SEG_SUFFIX):
            digits = name[len(_SEG_PREFIX):-len(_SEG_SUFFIX)]
            if digits.isdigit():
                out.append((int(digits), os.path.join(directory, name)))
    out.sort()
    return out


def _fsync_dir(directory: str) -> None:
    """Flush directory metadata (new/renamed/removed entries)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic platforms
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. dirs not fsyncable
        pass
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
@dataclass
class SegmentScan:
    """Result of parsing one segment file."""

    ops: List[dict]
    #: Byte offset of the first unusable byte (== file size when clean).
    good_until: int
    #: True when a torn/truncated tail was dropped.
    torn: bool


def scan_segment(path: str, tolerate_tail: bool) -> SegmentScan:
    """Parse one segment's frames.

    A *torn tail* — a final frame whose bytes run out at end-of-file,
    or whose CRC fails with nothing after it — is tolerated when
    ``tolerate_tail`` (the crash-mid-append artifact on the newest
    segment).  Damage anywhere else (bad header, a CRC-failed frame
    with more data behind it, corruption on a non-final segment) raises
    :class:`JournalCorruptError` with the offset — never a silent
    partial restore.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    if not data.startswith(_HEADER):
        if tolerate_tail and len(data) < len(_HEADER):
            # Crash between creating the segment and writing its header.
            return SegmentScan([], 0, torn=bool(data))
        raise JournalCorruptError(
            f"journal segment {path!r} has a bad header; the file is "
            f"not a journal segment or its start was overwritten — "
            f"restore from the latest checkpoint or remove the segment "
            f"after inspecting it"
        )
    ops: List[dict] = []
    offset = len(_HEADER)
    size = len(data)
    while offset < size:
        torn_reason = None
        if size - offset < _FRAME.size:
            torn_reason = "frame header truncated"
            frame_end = size
        else:
            length, crc = _FRAME.unpack_from(data, offset)
            frame_end = offset + _FRAME.size + length
            if frame_end > size:
                torn_reason = "frame payload truncated"
                frame_end = size
            else:
                payload = data[offset + _FRAME.size : frame_end]
                if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                    torn_reason = "frame CRC mismatch"
        if torn_reason is None:
            try:
                ops.append(json.loads(payload))
            except ValueError:
                torn_reason = "frame payload is not valid JSON"
        if torn_reason is not None:
            tail = frame_end >= size
            if tolerate_tail and tail:
                return SegmentScan(ops, offset, torn=True)
            raise JournalCorruptError(
                f"journal segment {path!r} is corrupt at byte {offset} "
                f"({torn_reason}"
                f"{'' if tail else ', with further records behind it'}); "
                f"a torn tail is only tolerated on the newest segment — "
                f"restore from the latest checkpoint or truncate the "
                f"segment at byte {offset} after inspecting it"
            )
        offset = frame_end
    return SegmentScan(ops, offset, torn=False)


def read_ops(directory: str, after_seq: int = 0) -> Tuple[List[dict], bool]:
    """All journal ops with ``seq > after_seq`` in order, plus whether
    a torn tail was dropped from the newest segment."""
    segments = list_segments(directory)
    ops: List[dict] = []
    torn = False
    for index, (first_seq, path) in enumerate(segments):
        last = index == len(segments) - 1
        scan = scan_segment(path, tolerate_tail=last)
        torn = torn or scan.torn
        for op in scan.ops:
            if op.get("seq", 0) > after_seq:
                ops.append(op)
    return ops, torn


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
class JournalWriter:
    """Append-only journal over segment files (see module docstring).

    Opening an existing directory resumes after the last intact record:
    a torn tail left by a crash is truncated away first so the writer
    never appends after garbage.
    """

    def __init__(
        self,
        directory: str,
        fsync: str = "batch",
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        if fsync not in _FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {_FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_max_bytes < 1024:
            raise ValueError("segment_max_bytes must be >= 1024")
        self.directory = directory
        self.fsync = fsync
        self.segment_max_bytes = segment_max_bytes
        os.makedirs(directory, exist_ok=True)
        self._fh = None
        self._segment_size = 0
        self.last_seq = 0
        #: Ops whose records were appended but not yet committed
        #: (flushed/fsynced per policy).
        self._uncommitted = 0
        self._resume()

    # -- lifecycle -------------------------------------------------------
    def _resume(self) -> None:
        segments = list_segments(self.directory)
        for index, (first_seq, path) in enumerate(segments):
            last = index == len(segments) - 1
            scan = scan_segment(path, tolerate_tail=last)
            if scan.ops:
                self.last_seq = max(self.last_seq, scan.ops[-1]["seq"])
            elif last:
                self.last_seq = max(self.last_seq, first_seq - 1)
            if last and scan.torn:
                # Truncate the torn tail so appends restart on a clean
                # record boundary.
                with open(path, "r+b") as fh:
                    fh.truncate(max(scan.good_until, len(_HEADER)))
        if segments:
            _, path = segments[-1]
            self._fh = open(path, "ab")
            self._segment_size = self._fh.tell()
        else:
            self._open_segment(self.last_seq + 1)

    def _open_segment(self, first_seq: int) -> None:
        if self._fh is not None:
            self._fh.flush()
            if self.fsync != "never":
                os.fsync(self._fh.fileno())
            self._fh.close()
        path = _segment_path(self.directory, first_seq)
        self._fh = open(path, "ab")
        if self._fh.tell() == 0:
            self._fh.write(_HEADER)
            self._fh.flush()
        self._segment_size = self._fh.tell()
        _fsync_dir(self.directory)

    def close(self) -> None:
        if self._fh is not None:
            self.commit()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- appending -------------------------------------------------------
    def append(self, doc: Dict[str, object]) -> int:
        """Append one op record; returns its sequence number.

        The record is buffered; durability follows the ``fsync`` policy
        (``"always"`` syncs here, ``"batch"`` at :meth:`commit`).
        """
        if self._fh is None:
            raise ValueError("journal is closed")
        seq = self.last_seq + 1
        doc = dict(doc)
        doc["seq"] = seq
        payload = json.dumps(doc, separators=(",", ":")).encode()
        frame = _FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        fault = faults.fire("journal.append")
        if fault is not None and fault.action == "corrupt":
            # Simulate a crash mid-append: a torn, partial frame.
            torn = (frame + payload)[: max(1, (len(frame) + len(payload)) // 2)]
            self._fh.write(torn)
            self._fh.flush()
            raise OSError(
                "injected fault: journal append torn mid-record"
            )
        self._fh.write(frame)
        self._fh.write(payload)
        self.last_seq = seq
        self._uncommitted += 1
        self._segment_size += len(frame) + len(payload)
        if self.fsync == "always":
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._uncommitted = 0
        if self._segment_size >= self.segment_max_bytes:
            self.commit()
            self._open_segment(seq + 1)
        return seq

    def append_ingest(self, row: Dict[str, object]) -> int:
        return self.append({"op": "ingest", "row": row})

    def append_delete(self, tid: int) -> int:
        return self.append({"op": "delete", "tid": int(tid)})

    def commit(self) -> None:
        """Make appended records durable per the ``fsync`` policy
        (called once per micro-batch by the server)."""
        if self._fh is None or not self._uncommitted:
            return
        self._fh.flush()
        if self.fsync != "never":
            os.fsync(self._fh.fileno())
        self._uncommitted = 0

    # -- checkpoint anchoring -------------------------------------------
    def checkpoint(self, covered_seq: int) -> None:
        """Anchor a durably-written checkpoint covering ``covered_seq``:
        rotate to a fresh segment and prune segments wholly covered by
        the checkpoint (their ops can never be needed again — recovery
        replays only ``seq > covered_seq``)."""
        self.commit()
        self._open_segment(self.last_seq + 1)
        for first_seq, path in list_segments(self.directory):
            # A segment is wholly covered when the *next* segment starts
            # at or below covered_seq + 1 (its last op <= covered_seq).
            nxt = [s for s, _ in list_segments(self.directory) if s > first_seq]
            if nxt and nxt[0] <= covered_seq + 1:
                os.remove(path)
        _fsync_dir(self.directory)


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
@dataclass
class RecoveryReport:
    """What :func:`recover_engine` did, for stats/operators."""

    #: Ops replayed from the journal suffix.
    ops_replayed: int = 0
    #: Sequence the loaded checkpoint covered (0 = none usable).
    checkpoint_seq: int = 0
    #: True when a torn journal tail was dropped.
    torn_tail: bool = False
    #: "checkpoint+journal", "journal", "checkpoint", or "fresh".
    source: str = "fresh"
    #: Populated when the checkpoint existed but was unreadable and the
    #: journal alone still covered the full history.
    checkpoint_error: Optional[str] = None
    #: Rows that failed to re-apply during replay (poison rows whose
    #: records predate dead-lettering; they are skipped and reported).
    replay_errors: List[str] = field(default_factory=list)


def replay_ops(engine, ops: List[dict], report: Optional[RecoveryReport] = None):
    """Apply journal ops to ``engine`` in order (ingest/delete)."""
    report = report if report is not None else RecoveryReport()
    batch: List[dict] = []

    def flush() -> None:
        if batch:
            engine.facts_for_many(batch)
            del batch[:]

    for op in ops:
        kind = op.get("op")
        try:
            if kind == "ingest":
                batch.append(op["row"])
                if len(batch) >= 512:
                    flush()
            elif kind == "delete":
                flush()
                engine.delete(op["tid"])
            else:
                raise ValueError(f"unknown journal op {kind!r}")
        except Exception as exc:  # keep replaying: one bad op must not
            del batch[:]          # shadow the rest of the journal
            report.replay_errors.append(
                f"seq {op.get('seq')}: {type(exc).__name__}: {exc}"
            )
            continue
        report.ops_replayed += 1
    flush()
    return report


def recover_engine(spec) -> Tuple[object, RecoveryReport]:
    """Rebuild the engine a crashed service was running.

    ``spec`` is an :class:`~repro.api.spec.EngineSpec` whose
    ``checkpoint`` policy names the snapshot path and ``journal_dir``.
    Recovery loads the latest durable snapshot (if any), then replays
    the journal suffix (``seq >`` the snapshot's ``journal_seq``),
    tolerating a torn tail.  An unreadable checkpoint falls back to a
    full journal replay when the journal still starts at sequence 1;
    otherwise it raises ``ValueError`` — the truncated state would be
    silently wrong.
    """
    from ..api.facade import open_engine
    from ..extensions.snapshot import load_engine, snapshot_journal_seq

    policy = spec.checkpoint
    if policy is None:
        raise ValueError("recovery needs spec.checkpoint (path + journal_dir)")
    report = RecoveryReport()
    engine = None
    if os.path.exists(policy.path):
        try:
            engine = load_engine(policy.path)
            report.checkpoint_seq = snapshot_journal_seq(policy.path)
            report.source = "checkpoint"
        except ValueError as exc:
            report.checkpoint_error = str(exc)
    if engine is None:
        engine = open_engine(spec)
    if policy.journal_dir and os.path.isdir(policy.journal_dir):
        ops, torn = read_ops(policy.journal_dir, after_seq=report.checkpoint_seq)
        report.torn_tail = torn
        if report.checkpoint_error is not None:
            first_seq = min((op["seq"] for op in ops), default=None)
            if ops and first_seq != 1:
                engine.close()
                raise ValueError(
                    f"checkpoint {policy.path!r} is unreadable "
                    f"({report.checkpoint_error}) and the journal only "
                    f"covers sequences >= {first_seq} — earlier segments "
                    f"were pruned, so a full replay is impossible; "
                    f"restore an intact checkpoint file"
                )
        replay_ops(engine, ops, report)
        if report.ops_replayed:
            report.source = (
                "checkpoint+journal" if report.source == "checkpoint" else "journal"
            )
    elif report.checkpoint_error is not None:
        engine.close()
        raise ValueError(
            f"checkpoint {policy.path!r} is unreadable "
            f"({report.checkpoint_error}) and no journal exists at "
            f"{policy.journal_dir!r}; nothing to recover from"
        )
    return engine, report
