"""Subspace-axis sharding: parallel ``svec`` workers behind one router.

The paper's per-arrival work factors cleanly along the measure-subspace
axis: every per-subspace decision of the vectorized STopDown engine —
Prop. 4 pruning, fact emission, maximal-constraint promotion, demotion
repair, the skyline-cardinality index — is derived from the arrival's
dominance sweep against the *registered* history, never from another
subspace's store (see :class:`~repro.algorithms.s_vectorized.\
SVectorized`).  :class:`ShardedDiscoverer` exploits that: ``N`` worker
engines each run the existing ``svec`` machinery restricted to a
partition cell of the subspace keys (the shard holding the full measure
space runs the root pass; the others run pure node passes), and the
router recombines each arrival's facts in canonical emission order —
output identical to the unsharded engine in facts, scores, op-counter
totals and deletions, which ``tests/test_sharding.py`` property-tests.

Division of labour per arrival:

* every worker registers the row into its columnar history (the sweep
  substrate is deliberately replicated — it is a small fraction of the
  per-arrival cost and keeps workers share-nothing);
* each worker walks only its own subspace keys, mutates only its own
  stores, and answers skyline cardinalities from its own scoring index;
* the router owns the canonical :class:`~repro.core.record.Table`, the
  single :class:`~repro.core.prominence.ColumnarContextCounter` (context
  cardinalities are subspace-independent, so counting them once replaces
  ``N`` duplicated counters), constraint reconstruction from the
  workers' pickle-light ``(mask, subspace, skyline)`` columns, and the
  reporting policy over the merged ``S_t``.

Execution modes: ``serial`` (in-process, deterministic — the testing
reference), ``thread`` (one single-thread executor per worker),
``process`` (one OS process per worker over a pipe, the throughput
mode — NumPy sweeps and lattice walks run truly in parallel), and
``remote`` (each shard served by a replica set of socket workers at
the addresses of a ``remote`` placement map — the multi-machine tier;
see :mod:`repro.service.remote` for the wire protocol and
:mod:`repro.service.cluster` for replicas, failover and the cost-fed
:class:`~repro.service.cluster.PlacementModel`).  Batched ingestion is
pipelined chunk-wise: while the workers chew on chunk ``k+1``, the
router merges, scores and ranks chunk ``k``.
"""

from __future__ import annotations

import itertools
import os
import time
from collections import deque
from dataclasses import asdict
from time import perf_counter
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.config import DiscoveryConfig
from ..core.constraint import Constraint, constraint_for_record
from ..core.engine_protocol import EngineBase
from ..core.facts import FactSet
from ..core.lattice import nonempty_subspaces
from ..core.prominence import ColumnarContextCounter
from ..core.record import Record, Table
from ..core.schema import TableSchema
from ..metrics.counters import OpCounters
from ..query.contextual import ContextualQueryEngine
from . import faults
from .supervisor import SupervisedWorker, SupervisorPolicy, WorkerGaveUp

Row = Union[Mapping[str, object], Record]

#: Ingestion is pipelined in chunks of this many rows (workers process
#: chunk k+1 while the router merges chunk k); one pipe message each way
#: per chunk per worker.
_PIPELINE_CHUNK = 96

_MODES = ("serial", "thread", "process", "remote")


def canonical_subspace_keys(
    schema: TableSchema, config: Optional[DiscoveryConfig] = None
) -> List[int]:
    """The maintained subspace keys in canonical emission order.

    Full measure space first (the sharing substrate / root pass), then
    the remaining non-empty subspaces exactly as the unsharded engine
    orders them — the merger's sort rank and the partitioner both key
    off this list.
    """
    config = config or DiscoveryConfig()
    full = schema.full_measure_mask
    return [full] + [
        s
        for s in nonempty_subspaces(full, config.max_measure_dims)
        if s != full
    ]


#: Load weight of the root (full-space) key relative to a node key in
#: :func:`partition_subspaces` — the root pass traverses every
#: constraint and scans every µ bucket along ``C^t``, costing roughly
#: two node passes on the standard anticorrelated workloads.
_ROOT_WEIGHT = 2.0


def partition_subspaces(
    keys: Sequence[int],
    n_workers: int,
    root_weight: float = _ROOT_WEIGHT,
    weights: Optional[Mapping[int, float]] = None,
) -> List[List[int]]:
    """Partition the canonical keys into ``min(n_workers, len(keys))``
    non-empty shards, balancing load greedily.

    Shard 0 receives the first key (the full space, hence the root
    pass) at ``root_weight`` node-key equivalents; each remaining key
    goes to the currently lightest shard (ties to the lowest index), so
    the root shard carries correspondingly fewer node keys and the
    slowest worker — the parallel wall-clock — stays minimal.

    ``weights`` overrides the static root/node prior with measured
    per-key costs (unlisted keys weigh 1.0) — the hook a
    :class:`~repro.service.cluster.PlacementModel` uses to seed a
    cluster placement from observed load instead of the prior.

    >>> partition_subspaces([7, 1, 2, 4, 3], 2)
    [[7, 4], [1, 2, 3]]
    >>> partition_subspaces([7, 1], 4)
    [[7], [1]]
    >>> partition_subspaces([7, 1, 2], 1)
    [[7, 1, 2]]
    >>> partition_subspaces([7, 1, 2, 4], 2, weights={7: 1.0})
    [[7, 2], [1, 4]]
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    n = min(n_workers, len(keys))
    if n == 1:
        return [list(keys)]
    shards: List[List[int]] = [[] for _ in range(n)]
    loads = [0.0] * n
    shards[0].append(keys[0])
    loads[0] = (
        root_weight if weights is None else float(weights.get(keys[0], 1.0))
    )
    for index, key in enumerate(keys[1:]):
        # Seed every shard before balancing so none ends up empty.
        target = index + 1 if index + 1 < n else min(
            range(n), key=loads.__getitem__
        )
        shards[target].append(key)
        loads[target] += (
            1.0 if weights is None else float(weights.get(key, 1.0))
        )
    return shards


# ----------------------------------------------------------------------
# Worker side: one shard-restricted svec engine + columnar reply format
# ----------------------------------------------------------------------

#: Ingest reply: per-row fact counts, flat bound-mask / subspace /
#: skyline-size columns (skyline ``None`` when unscored), busy seconds.
IngestReply = Tuple[
    List[int], List[int], List[int], Optional[List[int]], float
]


class _ShardEngine:
    """The in-worker compute core (shared by every execution mode)."""

    def __init__(
        self,
        schema: TableSchema,
        config: DiscoveryConfig,
        shard: Sequence[int],
        score: bool,
        sweep_index: str = "auto",
    ) -> None:
        from ..algorithms.s_vectorized import SVectorized

        self.algorithm = SVectorized(
            schema, config, shard_subspaces=shard, sweep_index=sweep_index
        )
        self.score = score
        self._query_engine = None

    def ingest(self, rows: List[Mapping[str, object]]) -> IngestReply:
        start = perf_counter()
        algorithm = self.algorithm
        algorithm.reserve(len(rows))
        counts: List[int] = []
        masks: List[int] = []
        subs: List[int] = []
        skys: Optional[List[int]] = [] if self.score else None
        for row in rows:
            facts = algorithm.process(row)
            before = len(masks)
            if skys is not None:
                sizes = algorithm.skyline_sizes(facts)
                for pair in facts.iter_pairs():
                    masks.append(pair[0].bound_mask)
                    subs.append(pair[1])
                    skys.append(sizes[pair])
            else:
                for constraint, subspace in facts.iter_pairs():
                    masks.append(constraint.bound_mask)
                    subs.append(subspace)
            counts.append(len(masks) - before)
        return counts, masks, subs, skys, perf_counter() - start

    def delete(self, tid: int) -> None:
        self.algorithm.retract(tid)

    def counters(self) -> Dict[str, int]:
        return self.algorithm.counters.snapshot()

    def _queries(self):
        """The worker-side query engine (kernels over this worker's full
        replicated columnar history), built once."""
        if self._query_engine is None:
            from ..query.contextual import ContextualQueryEngine

            self._query_engine = ContextualQueryEngine(self.algorithm)
        return self._query_engine

    def skyline_tids(self, values: Tuple[object, ...], subspace: int) -> List[int]:
        """Answer one contextual-skyline query from this shard's stores
        (pickle-light: tids only; the router re-projects records).
        Every worker replicates the full row history, so non-maintained
        subspaces answer exactly here too, via the columnar kernels."""
        constraint = Constraint(tuple(values))
        skyline = self._queries().skyline(constraint, subspace)
        return sorted(record.tid for record in skyline)

    def skyband_tids(
        self,
        values: Tuple[object, ...],
        subspace: int,
        k: int,
        limit: Optional[int] = None,
    ) -> List[int]:
        """One k-skyband query, optionally bounded: the router (or a TCP
        client) receives at most ``limit`` tids instead of the whole
        band."""
        constraint = Constraint(tuple(values))
        records = self._queries().skyband(constraint, subspace, k)
        tids = sorted(record.tid for record in records)
        return tids if limit is None else tids[:limit]

    def top_k_stats(
        self, values: Tuple[object, ...], subspace: int, limit: Optional[int]
    ) -> Tuple[int, int, List[int]]:
        """``(|σ_C|, |λ_M(σ_C)|, first-limit skyline tids)`` — the
        statistics push-down.  ``limit=0`` is the planner's pure
        statistics probe (O(1) off the scoring index when the pair is
        covered); ``limit=None`` returns every skyline tid."""
        constraint = Constraint(tuple(values))
        queries = self._queries()
        ctx = queries.context_size(constraint)
        size = queries._skyline_size_indexed(constraint, subspace)
        if size is not None and limit == 0:
            return ctx, size, []
        skyline = queries.skyline(constraint, subspace)
        tids = sorted(record.tid for record in skyline)
        return ctx, len(tids), tids if limit is None else tids[:limit]


def _build_shard_engine(spec: Mapping[str, object]) -> _ShardEngine:
    schema = TableSchema(
        dimensions=tuple(spec["dimensions"]),
        measures=tuple(spec["measures"]),
        preferences=dict(spec["preferences"]),
    )
    return _ShardEngine(
        schema,
        DiscoveryConfig(**spec["config"]),
        list(spec["shard"]),
        bool(spec["score"]),
        sweep_index=str(spec.get("sweep_index", "auto")),
    )


def _apply_worker_fault(fault) -> bool:
    """Act on a fired fault inside a worker process; returns True when
    the current op/reply must be swallowed (``drop``)."""
    if fault is None:
        return False
    if fault.action == "crash":
        # A real crash, not an orderly unwind: skip every finaliser.
        os._exit(fault.exit_code)
    if fault.action == "delay":
        time.sleep(fault.delay)
        return False
    return fault.action == "drop"


def _shard_worker_main(conn, spec) -> None:
    """Entry point of one shard process: serve ops off the pipe FIFO.

    ``spec`` may carry ``worker_index`` (fault scoping) and ``faults``
    (the router's armed fault list, forwarded so injection behaves the
    same under ``fork`` — which would otherwise inherit router state —
    and ``spawn``, which would otherwise have none).
    """
    index = spec.get("worker_index")
    faults.clear()
    if spec.get("faults"):
        faults.install(spec["faults"])
    engine = _build_shard_engine(spec)
    while True:
        try:
            op, payload = conn.recv()
        except EOFError:
            break
        if _apply_worker_fault(faults.fire("worker.op", worker=index, op=op)):
            continue  # dropped op: the router sees silence
        if op == "rows":
            reply = engine.ingest(payload)
        elif op == "delete":
            engine.delete(payload)
            reply = ("ok", payload)
        elif op == "counters":
            reply = engine.counters()
        elif op == "skyline":
            reply = engine.skyline_tids(*payload)
        elif op == "skyband":
            reply = engine.skyband_tids(*payload)
        elif op == "top_k":
            reply = engine.top_k_stats(*payload)
        elif op == "replay":
            # Deterministic state rebuild after a restart: re-observe a
            # slice of the router's committed op prefix.
            for kind, data in payload:
                if kind == "rows":
                    engine.ingest(data)
                else:
                    engine.delete(data)
            reply = ("replayed", len(payload))
        elif op == "stop":
            break
        else:  # pragma: no cover - protocol guard
            reply = ("error", f"unknown op {op!r}")
        if _apply_worker_fault(
            faults.fire("worker.reply", worker=index, op=op)
        ):
            continue  # dropped reply
        conn.send(reply)
    conn.close()


class _InlineWorker:
    """Serial mode: compute happens lazily at :meth:`result` so the
    router's pipelining logic stays mode-agnostic."""

    def __init__(self, engine: _ShardEngine) -> None:
        self._engine = engine
        self._pending: deque = deque()
        self.busy_seconds = 0.0

    def submit_rows(self, rows) -> None:
        self._pending.append(rows)

    def result(self) -> IngestReply:
        reply = self._engine.ingest(self._pending.popleft())
        self.busy_seconds += reply[4]
        return reply

    def delete(self, tid: int) -> None:
        self._engine.delete(tid)

    def counters(self) -> Dict[str, int]:
        return self._engine.counters()

    def skyline(self, values, subspace: int) -> List[int]:
        return self._engine.skyline_tids(values, subspace)

    def skyband(self, values, subspace: int, k: int, limit=None) -> List[int]:
        return self._engine.skyband_tids(values, subspace, k, limit)

    def top_k(self, values, subspace: int, limit) -> Tuple[int, int, List[int]]:
        return self._engine.top_k_stats(values, subspace, limit)

    def close(self) -> None:
        pass


class _ThreadWorker:
    """Thread mode: one single-thread executor per worker — per-worker
    FIFO (the engine is not thread-safe), parallel across workers."""

    def __init__(self, engine: _ShardEngine) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._engine = engine
        self._pool = ThreadPoolExecutor(max_workers=1)
        self._futures: deque = deque()
        self.busy_seconds = 0.0

    def submit_rows(self, rows) -> None:
        self._futures.append(self._pool.submit(self._engine.ingest, rows))

    def result(self) -> IngestReply:
        reply = self._futures.popleft().result()
        self.busy_seconds += reply[4]
        return reply

    def delete(self, tid: int) -> None:
        self._pool.submit(self._engine.delete, tid).result()

    def counters(self) -> Dict[str, int]:
        return self._pool.submit(self._engine.counters).result()

    def skyline(self, values, subspace: int) -> List[int]:
        return self._pool.submit(
            self._engine.skyline_tids, values, subspace
        ).result()

    def skyband(self, values, subspace: int, k: int, limit=None) -> List[int]:
        return self._pool.submit(
            self._engine.skyband_tids, values, subspace, k, limit
        ).result()

    def top_k(self, values, subspace: int, limit) -> Tuple[int, int, List[int]]:
        return self._pool.submit(
            self._engine.top_k_stats, values, subspace, limit
        ).result()

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class _ProcessWorker:
    """Process mode: one OS process per shard over a duplex pipe.

    The protocol is strictly FIFO and the router never interleaves a
    counters/ingest request with an outstanding ingest reply, so plain
    ``send``/``recv`` pairing is safe.
    """

    def __init__(self, spec: Mapping[str, object], ctx) -> None:
        self._conn, child = ctx.Pipe()
        self._process = ctx.Process(
            target=_shard_worker_main, args=(child, spec), daemon=True
        )
        self._process.start()
        child.close()
        self.busy_seconds = 0.0

    def submit_rows(self, rows) -> None:
        self._conn.send(("rows", rows))

    def result(self) -> IngestReply:
        reply = self._conn.recv()
        self.busy_seconds += reply[4]
        return reply

    def delete(self, tid: int) -> None:
        self._conn.send(("delete", tid))
        self._conn.recv()

    def counters(self) -> Dict[str, int]:
        self._conn.send(("counters", None))
        return self._conn.recv()

    def skyline(self, values, subspace: int) -> List[int]:
        self._conn.send(("skyline", (values, subspace)))
        return self._conn.recv()

    def skyband(self, values, subspace: int, k: int, limit=None) -> List[int]:
        self._conn.send(("skyband", (values, subspace, k, limit)))
        return self._conn.recv()

    def top_k(self, values, subspace: int, limit) -> Tuple[int, int, List[int]]:
        self._conn.send(("top_k", (values, subspace, limit)))
        return self._conn.recv()

    def close(self) -> None:
        """Shut down without ever hanging, even on an already-dead or
        wedged child: polite stop with a bounded grace period (keeping
        the pipe drained so a child blocked mid-send can progress to
        the stop op), then escalate terminate → kill."""
        process, conn = self._process, self._conn
        try:
            conn.send(("stop", None))
        except (BrokenPipeError, OSError, ValueError):
            pass
        deadline = time.monotonic() + 5.0
        while process.is_alive() and time.monotonic() < deadline:
            try:
                while conn.poll(0):
                    conn.recv()
            except (EOFError, OSError):
                break
            process.join(timeout=0.05)
        if process.is_alive():  # pragma: no cover - defensive
            process.terminate()
            process.join(timeout=5)
        if process.is_alive():  # pragma: no cover - defensive
            getattr(process, "kill", process.terminate)()
            process.join(timeout=5)
        try:
            while conn.poll(0):
                conn.recv()
        except (EOFError, OSError):
            pass
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


# ----------------------------------------------------------------------
# Router-side queries
# ----------------------------------------------------------------------
class _RouterQueryView:
    """Algorithm-shaped view of the router's canonical state, so the
    generic :class:`~repro.query.contextual.ContextualQueryEngine`
    machinery (selection, skyband, statistics) runs router-side."""

    def __init__(self, sharded: "ShardedDiscoverer") -> None:
        self.schema = sharded.schema
        self.table = sharded.table
        self._keys = {key for shard in sharded.shards for key in shard}

    def maintained_subspaces(self) -> List[int]:
        return list(self._keys)


class ShardedQueryEngine(ContextualQueryEngine):
    """Forward contextual queries over a :class:`ShardedDiscoverer`.

    Every read pushes down to a worker: a maintained subspace goes to
    the worker *owning* its key (answered from that shard's µ stores /
    scoring index), a non-maintained one to a deterministic fallback
    worker — every worker replicates the full row history, so its
    columnar kernels answer any pair exactly.  Workers reply with
    pickle-light (bounded) tid lists or ``(|σ_C|, |λ_M|)`` statistics;
    the router re-projects records against its canonical table and
    serves ``|σ_C|`` in O(1) from its own context counter when covered.
    A crashed worker degrades-and-retries exactly like the write path.
    """

    def __init__(self, sharded: "ShardedDiscoverer") -> None:
        super().__init__(
            _RouterQueryView(sharded),
            context_counter=sharded.context_counter,
        )
        self._sharded = sharded

    # -- routing -----------------------------------------------------
    def _route(self, subspace: int) -> int:
        """The worker answering queries for ``subspace``: its owner for
        maintained keys, a deterministic fallback otherwise (any worker
        holds the full history)."""
        sharded = self._sharded
        owner = sharded._shard_of.get(subspace)
        if owner is None:
            owner = subspace % len(sharded._workers)
        return owner

    def _pushed(self, owner: int, call):
        """Run one query op against a worker with the standard
        degrade-and-retry on a crashed process."""
        sharded = self._sharded
        sharded._check_open()
        try:
            return call(sharded._workers[owner])
        except WorkerGaveUp as crash:
            sharded._degrade(crash)
            return call(sharded._workers[owner])

    def _project(self, tids: List[int]) -> List[Record]:
        by_tid = {record.tid: record for record in self._sharded.table}
        return [by_tid[tid] for tid in tids if tid in by_tid]

    # -- reads -------------------------------------------------------
    def skyline(self, constraint: Constraint, subspace: int) -> List[Record]:
        values = tuple(constraint.values)
        tids = self._pushed(
            self._route(subspace), lambda w: w.skyline(values, subspace)
        )
        return self._project(tids)

    def skyband(
        self, constraint: Constraint, subspace: int, k: int
    ) -> List[Record]:
        if k < 1:
            raise ValueError("k must be >= 1")
        values = tuple(constraint.values)
        tids = self._pushed(
            self._route(subspace), lambda w: w.skyband(values, subspace, k)
        )
        return self._project(tids)

    def context_size(self, constraint: Constraint) -> int:
        counted = self._counted_context(constraint)
        if counted is not None:
            return counted
        values = tuple(constraint.values)
        ctx, _sky, _tids = self._pushed(
            self._route(0), lambda w: w.top_k(values, 0, 0)
        )
        return ctx

    def prominence(self, constraint: Constraint, subspace: int) -> Optional[float]:
        values = tuple(constraint.values)
        ctx, sky, _tids = self._pushed(
            self._route(subspace), lambda w: w.top_k(values, subspace, 0)
        )
        return None if sky == 0 else ctx / sky

    def _fast_statistics(
        self, constraint: Constraint, subspace: int
    ) -> Optional[Tuple[int, int]]:
        """Planner statistics: router counter for ``|σ_C|`` plus one
        ``top_k(limit=0)`` probe of the owning worker's scoring index.
        A counter-covered constraint is within ``d̂``, so the worker
        answers without materialising anything."""
        sharded = self._sharded
        ctx = self._counted_context(constraint)
        if ctx is None:
            return None
        if ctx == 0:
            return 0, 0
        owner = sharded._shard_of.get(subspace)
        if owner is None:
            return None
        values = tuple(constraint.values)
        _ctx, sky, _tids = self._pushed(
            owner, lambda w: w.top_k(values, subspace, 0)
        )
        return ctx, sky


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
class ShardedDiscoverer(EngineBase):
    """Drop-in :class:`~repro.core.engine.FactDiscoverer` running the
    subspace axis across ``n_workers`` shard engines.

    Parameters
    ----------
    schema, config, score:
        As for the engine; workers always run the ``svec`` algorithm.
    n_workers:
        Requested shard count; clamped to the number of maintained
        subspace keys (every shard must own at least one).
    mode:
        ``"serial"`` (in-process), ``"thread"``, ``"process"`` or
        ``"remote"`` (socket replica sets; requires ``remote``).
    remote:
        Placement map ``{shard_name: [host:port, ...]}`` assigning each
        shard a replica set of socket workers (see
        :mod:`repro.service.cluster`).  Shard names sort numerically
        when numeric; the number of shards fixes the worker count.
        Supplying it implies/requires ``mode="remote"``.
    chunk_size:
        Pipelining granularity of the batched API (rows per worker
        round-trip).
    supervise:
        Supervise process-mode workers (crash detection, restart with
        backoff, deterministic rebuild from the router's committed op
        log; see :mod:`repro.service.supervisor`).  Ignored for
        serial/thread modes, whose workers share the router's fate.
        Supervision keeps the full arrival/deletion op log in router
        memory (the rebuild source), roughly doubling row storage.
    op_timeout:
        Seconds to wait on any single worker pipe round-trip before the
        worker is treated as hung.
    max_restarts:
        Per-worker circuit breaker: one more crash after this many
        restarts degrades the whole pool to in-router serial execution
        (``degraded`` flips True; service keeps answering) instead of
        dying.
    """

    kind = "sharded"

    def __init__(
        self,
        schema: TableSchema,
        config: Optional[DiscoveryConfig] = None,
        n_workers: int = 2,
        mode: str = "process",
        score: bool = True,
        chunk_size: int = _PIPELINE_CHUNK,
        supervise: bool = True,
        op_timeout: float = 60.0,
        max_restarts: int = 3,
        sweep_index: str = "auto",
        remote: Optional[Mapping[str, Sequence[str]]] = None,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if remote:
            remote = {
                str(name): [str(a) for a in addresses]
                for name, addresses in dict(remote).items()
            }
            if not all(remote.values()):
                raise ValueError(
                    "every remote shard needs at least one host:port replica"
                )
            if mode == "process":
                # The constructor default; a placement map implies the
                # remote mode without callers having to say it twice.
                mode = "remote"
            if mode != "remote":
                raise ValueError(
                    f"a remote placement map requires mode='remote', "
                    f"got {mode!r}"
                )
            n_workers = len(remote)
        elif mode == "remote":
            raise ValueError(
                "mode='remote' needs a remote placement map "
                "({shard: [host:port, ...]})"
            )
        self.remote = remote or None
        if sweep_index not in ("auto", "on", "off"):
            raise ValueError(
                "sweep_index must be 'auto', 'on' or 'off', "
                f"got {sweep_index!r}"
            )
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if op_timeout <= 0:
            raise ValueError("op_timeout must be > 0 seconds")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        config = config or DiscoveryConfig()
        if not score and (config.tau is not None or config.top_k is not None):
            raise ValueError(
                "tau/top_k reporting needs prominence scores; "
                "score=False would silently report nothing"
            )
        self.schema = schema
        self.config = config
        self.score = score
        self.mode = mode
        self.chunk_size = chunk_size
        self.supervise = supervise
        self.op_timeout = op_timeout
        self.max_restarts = max_restarts
        self.sweep_index = sweep_index
        #: True once the circuit breaker fell back to in-router serial
        #: execution (the pool keeps serving, just without parallelism).
        self.degraded = False
        #: Committed arrival/deletion ops in order — the deterministic
        #: rebuild source for restarted/degraded workers.  Maintained
        #: only under supervision (it is the memory cost of it).
        self._oplog: List[Tuple[str, object]] = []
        # Remote mode always keeps the op log: it is the rebuild source
        # for degrades, replica joins AND rebalance snapshot-handoffs.
        self._track_oplog = (mode == "process" and supervise) or (
            mode == "remote"
        )
        #: Fault counters of workers discarded by a degrade.
        self._restart_base = 0
        self._retry_base = 0
        self._failover_base = 0
        self.table = Table(schema)
        self.context_counter = ColumnarContextCounter(
            schema.n_dimensions, config.max_bound_dims
        )
        keys = canonical_subspace_keys(schema, config)
        self.shards = partition_subspaces(keys, n_workers)
        self.n_workers = len(self.shards)
        self._root_key = keys[0]
        from .cluster import PlacementModel, shard_sort_key

        #: Live per-shard cost model fed by every chunk's worker
        #: replies; prices placements and plans rebalances (applied as
        #: snapshot-handoffs in remote mode, advisory elsewhere).
        self.placement = PlacementModel(root_weight=_ROOT_WEIGHT)
        if self.remote is not None:
            # Deterministic shard-name → worker-index mapping; a map
            # with more pools than maintained keys leaves the extra
            # pools unused (shards are clamped to the key count).
            self._remote_order = sorted(self.remote, key=shard_sort_key)[
                : self.n_workers
            ]
        else:
            self._remote_order = None
        #: Merge rank: canonical position of each subspace key.
        self._rank = {key: i for i, key in enumerate(keys)}
        #: Owning worker index per maintained subspace key (query routing).
        self._shard_of = {
            key: w for w, shard in enumerate(self.shards) for key in shard
        }
        self._cons_memo: Dict[Tuple[object, ...], Dict[int, Constraint]] = {}
        self._workers = self._spawn_workers()
        self._closed = False

    def _spawn_workers(self):
        if self.mode == "remote":
            from .cluster import ReplicaSet

            return [
                ReplicaSet(
                    w,
                    self.remote[self._remote_order[w]],
                    dict(
                        self._worker_spec(shard, w),
                        faults=faults.active_dicts(),
                    ),
                    op_timeout=self.op_timeout,
                    oplog=self._oplog,
                )
                for w, shard in enumerate(self.shards)
            ]
        if self.mode == "process":
            import multiprocessing as mp

            method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            ctx = mp.get_context(method)
            if self.supervise:
                policy = SupervisorPolicy(
                    op_timeout=self.op_timeout,
                    max_restarts=self.max_restarts,
                )
                return [
                    SupervisedWorker(
                        w,
                        self._worker_spec(shard, w),
                        _shard_worker_main,
                        ctx,
                        self._oplog,
                        policy,
                    )
                    for w, shard in enumerate(self.shards)
                ]
            return [
                _ProcessWorker(
                    dict(
                        self._worker_spec(shard, w),
                        faults=faults.active_dicts(),
                    ),
                    ctx,
                )
                for w, shard in enumerate(self.shards)
            ]
        engines = [
            _ShardEngine(
                self.schema, self.config, shard, self.score, self.sweep_index
            )
            for shard in self.shards
        ]
        cls = _ThreadWorker if self.mode == "thread" else _InlineWorker
        return [cls(engine) for engine in engines]

    def _worker_spec(
        self, shard: Sequence[int], index: Optional[int] = None
    ) -> Dict[str, object]:
        """Pickle-light worker description (spawn-safe)."""
        return {
            "dimensions": tuple(self.schema.dimensions),
            "measures": tuple(self.schema.measures),
            "preferences": dict(self.schema.preferences),
            "config": asdict(self.config),
            "shard": list(shard),
            "score": self.score,
            "sweep_index": self.sweep_index,
            "worker_index": index,
        }

    # ------------------------------------------------------------------
    # Streaming API (Engine protocol; observe/observe_many/update come
    # from EngineBase)
    # ------------------------------------------------------------------
    def facts_for(self, row: Row) -> FactSet:
        """Process one tuple and return the full (scored) ``S_t``."""
        return self.facts_for_many([row])[0]

    def facts_for_many(self, rows: Iterable[Row]) -> List[FactSet]:
        """Batched :meth:`facts_for`, pipelined chunk-wise across the
        workers (the router merges chunk ``k`` while the shards process
        chunk ``k+1``)."""
        self._check_open()
        out: List[FactSet] = []
        rows = iter(rows)
        pending: Optional[Tuple[List[Record], List[Mapping[str, object]]]] = None
        while True:
            try:
                chunk = list(itertools.islice(rows, self.chunk_size))
                records, payload = self._admit(chunk) if chunk else ([], [])
            except Exception:
                # A bad row (or row iterator) must not leave a
                # submitted chunk unmerged — collect it first so the
                # router, counter and workers stay consistent, exactly
                # like the unsharded engine raising mid-stream.
                if pending is not None:
                    self._merge_committed(pending)
                raise
            if chunk:
                for worker in self._workers:
                    worker.submit_rows(payload)
            if pending is not None:
                out.extend(self._merge_committed(pending))
            if not chunk:
                break
            pending = (records, payload)
        return out

    def delete(self, tid: int) -> Record:
        """Remove a previously observed tuple on every shard (§VIII)."""
        self._check_open()
        removed = self.table.delete(tid)
        try:
            for worker in self._workers:
                worker.delete(tid)
        except WorkerGaveUp as crash:
            # The degraded replacements rebuilt from the oplog *before*
            # this deletion (it commits below), so every one of them —
            # including those that acked over the pipe pre-crash, now
            # rebuilt fresh — needs it applied exactly once here.
            self._degrade(crash)
            for worker in self._workers:
                worker.delete(tid)
        if self._track_oplog:
            self._oplog.append(("delete", int(removed.tid)))
        self.context_counter.unregister(removed)
        return removed

    # ------------------------------------------------------------------
    # Admission + merge
    # ------------------------------------------------------------------
    def _admit(
        self, chunk: List[Row]
    ) -> Tuple[List[Record], List[Mapping[str, object]]]:
        """Append the chunk to the canonical table and render the
        pickle-light row payload the workers re-project (worker tid
        assignment tracks the router's ``Table`` counter exactly).

        Every row is validated/normalised *before* anything is
        appended: a malformed row mid-chunk must raise without mutating
        the table, or the router and the workers would desync for the
        rest of the stream.
        """
        staged: List[Record] = []
        for row in chunk:
            if isinstance(row, Record):
                staged.append(row)
            else:
                # Raises SchemaError on missing attributes or
                # non-numeric measures; tids are re-assigned on append.
                staged.append(self.table.make_record(row))
        records: List[Record] = []
        payload: List[Mapping[str, object]] = []
        for row, made in zip(chunk, staged):
            record = self.table.append(made)
            records.append(record)
            payload.append(
                row if isinstance(row, Mapping) else record.as_dict(self.schema)
            )
        return records, payload

    def _constraints_for(self, record: Record) -> Dict[int, Constraint]:
        """Per-dims memo of ``mask → Constraint`` (mirrors the
        algorithms' ``constraint_cache``, filled lazily per mask)."""
        cached = self._cons_memo.get(record.dims)
        if cached is None:
            if len(self._cons_memo) >= 16384:
                self._cons_memo.pop(next(iter(self._cons_memo)))
            cached = self._cons_memo[record.dims] = {}
        return cached

    def _merge_committed(
        self, pending: Tuple[List[Record], List[Mapping[str, object]]]
    ) -> List[FactSet]:
        """Merge one chunk, then commit it to the op log — from this
        point a restarted worker rebuilds *with* the chunk and is never
        re-sent it (exactly-once across crashes)."""
        records, payload = pending
        facts = self._merge_chunk(records, payload)
        if self._track_oplog:
            self._oplog.append(("rows", payload))
        return facts

    def _merge_chunk(
        self,
        records: List[Record],
        payload: Optional[List[Mapping[str, object]]] = None,
    ) -> List[FactSet]:
        """Recombine one chunk's worker replies in canonical order.

        Each worker emits its facts subspace-major in *its* key order,
        which is a subsequence of the global canonical order — so the
        merge is a stable sort of per-subspace segments by global rank,
        and within a segment the worker's ``masks_top_down`` order is
        already the scalar engine's.
        """
        replies = []
        for w in range(len(self._workers)):
            try:
                replies.append(self._workers[w].result())
            except WorkerGaveUp as crash:
                # Workers 0..w-1 already delivered this (uncommitted)
                # chunk, so their degraded replacements must replay it;
                # the rest still hold it pending and answer it live.
                self._degrade(crash, merging=payload, delivered=w)
                replies.append(self._workers[w].result())
        placement = self.placement
        for w, reply in enumerate(replies):
            # Scored-marginal EWMA + queue depth per shard: the inputs
            # the PlacementModel prices rebalance candidates with.
            placement.observe(
                w,
                len(records),
                reply[4],
                weight=self._shard_weight(w),
                queue_depth=len(
                    getattr(self._workers[w], "pending_ops", list)()
                ),
            )
        rank = self._rank
        score = self.score
        counter = self.context_counter
        cursors = [0] * len(replies)
        out: List[FactSet] = []
        for i, record in enumerate(records):
            counter.register(record)
            ctx_by_mask = counter.counts_for_dims(record.dims) if score else None
            cons = self._constraints_for(record)
            segments = []
            for w, reply in enumerate(replies):
                counts, masks, subs, _skys, _busy = reply
                start = cursors[w]
                stop = start + counts[i]
                cursors[w] = stop
                j = start
                while j < stop:
                    subspace = subs[j]
                    run_end = j + 1
                    while run_end < stop and subs[run_end] == subspace:
                        run_end += 1
                    segments.append((rank[subspace], w, j, run_end))
                    j = run_end
            segments.sort()
            facts = FactSet(record)
            context_col: List[int] = []
            skyline_col: List[int] = []
            for _, w, start, stop in segments:
                _counts, masks, subs, skys, _busy = replies[w]
                subspace = subs[start]
                run_cons = []
                for j in range(start, stop):
                    mask = masks[j]
                    constraint = cons.get(mask)
                    if constraint is None:
                        constraint = cons[mask] = constraint_for_record(
                            record, mask
                        )
                    run_cons.append(constraint)
                    if score:
                        context_col.append(ctx_by_mask.get(mask, 0))
                        skyline_col.append(skys[j])
                facts.add_pairs(run_cons, [subspace] * len(run_cons))
            if score:
                facts.set_scores(context_col, skyline_col)
            out.append(facts)
        return out

    # ------------------------------------------------------------------
    # Degraded mode (circuit breaker)
    # ------------------------------------------------------------------
    def _degrade(
        self,
        crash: WorkerGaveUp,
        merging: Optional[List[Mapping[str, object]]] = None,
        delivered: int = 0,
    ) -> None:
        """Fall back to in-router serial execution after a worker spent
        its restart budget (see :class:`~repro.service.supervisor.\
WorkerGaveUp`): every shard is rebuilt deterministically from the
        committed op log into an :class:`_InlineWorker`, preserving
        utilization tallies and the submitted-unmerged chunks each dead
        worker still owed.  The pool keeps answering — just without
        parallelism — instead of dying mid-stream.

        ``merging``/``delivered`` describe a merge in progress: workers
        ``< delivered`` already delivered the currently-merging (hence
        uncommitted) chunk, so their replacements replay it; the others
        still hold it pending and will answer it live.
        """
        old = self._workers
        self._restart_base += sum(getattr(w, "restarts", 0) for w in old)
        self._retry_base += sum(getattr(w, "chunks_retried", 0) for w in old)
        self._failover_base += sum(getattr(w, "failovers", 0) for w in old)
        pendings = [
            getattr(w, "pending_ops", lambda: [])() for w in old
        ]
        busys = [w.busy_seconds for w in old]
        for worker in old:
            try:
                worker.close()
            except Exception:  # pragma: no cover - already dead/wedged
                pass
        replacements = []
        for w, shard in enumerate(self.shards):
            engine = _ShardEngine(self.schema, self.config, shard, self.score)
            for kind, data in self._oplog:
                if kind == "rows":
                    engine.ingest(data)
                else:
                    engine.delete(data)
            if merging is not None and w < delivered:
                engine.ingest(merging)
            worker = _InlineWorker(engine)
            worker.busy_seconds = busys[w]
            for payload in pendings[w]:
                worker.submit_rows(payload)
            replacements.append(worker)
        self._workers = replacements
        self.degraded = True
        # Inline workers share the router's fate: the rebuild source is
        # no longer needed, free it.
        self._track_oplog = False
        self._oplog = []

    def fault_counters(self) -> Dict[str, int]:
        """Supervision tallies (surfaced through ``ServiceStats``)."""
        return {
            "worker_restarts": self._restart_base
            + sum(getattr(w, "restarts", 0) for w in self._workers),
            "chunks_retried": self._retry_base
            + sum(getattr(w, "chunks_retried", 0) for w in self._workers),
            "replica_failovers": self._failover_base
            + sum(getattr(w, "failovers", 0) for w in self._workers),
            "degraded": int(self.degraded),
        }

    # ------------------------------------------------------------------
    # Placement: per-shard load breakdown + cost-fed rebalancing
    # ------------------------------------------------------------------
    def _shard_weight(self, w: int) -> float:
        """Static weighted key load of shard ``w`` (the prior the
        placement model normalises its observed rates by)."""
        return sum(
            _ROOT_WEIGHT if key == self._root_key else 1.0
            for key in self.shards[w]
        )

    def shard_stats(self) -> List[Dict[str, object]]:
        """Per-shard operational breakdown — key counts, busy seconds,
        queue depth, the placement model's EWMA, and (remote mode) live
        replica membership — surfaced through
        :class:`~repro.metrics.service.ServiceStats` so operators and
        the placement model see the same numbers."""
        out: List[Dict[str, object]] = []
        for w, worker in enumerate(self._workers):
            entry: Dict[str, object] = {
                "shard": w,
                "keys": len(self.shards[w]),
                "root": self._root_key in self.shards[w],
                "weight": self._shard_weight(w),
                "busy_seconds": round(worker.busy_seconds, 6),
                "queue_depth": len(
                    getattr(worker, "pending_ops", list)()
                ),
                "restarts": getattr(worker, "restarts", 0),
                "chunks_retried": getattr(worker, "chunks_retried", 0),
                "ewma_seconds_per_row": self.placement.rate(w),
            }
            if self.mode == "remote" and not self.degraded:
                entry["replicas"] = list(getattr(worker, "replicas", []))
                entry["failovers"] = getattr(worker, "failovers", 0)
            out.append(entry)
        return out

    def rebalance(self, apply: bool = True) -> List["Move"]:
        """Plan (and in remote mode execute) placement moves.

        The :class:`~repro.service.cluster.PlacementModel` prices the
        current assignment from its observed per-shard EWMAs and emits
        greedy :class:`~repro.service.cluster.Move`s while the predicted
        wall-clock improves.  With ``apply=True`` on a healthy remote
        pool the moves run as snapshot-handoff reconfigures: each
        affected replica set installs its new key list and rebuilds
        deterministically from the committed op log (call between
        batches — never with chunks in flight).  Other modes (and
        ``apply=False``) return the plan without touching workers.
        The merge rank is global and unchanged, so a rebalanced pool
        stays output-identical to the unsharded engine."""
        self._check_open()
        moves = self.placement.rebalance_plan(self.shards, self._root_key)
        if not moves or not apply or self.mode != "remote" or self.degraded:
            return moves
        shards = [list(shard) for shard in self.shards]
        touched = set()
        for move in moves:
            shards[move.src].remove(move.key)
            shards[move.dst].append(move.key)
            touched.add(move.src)
            touched.add(move.dst)
        for w in touched:
            # Keep each shard's key list in canonical order so worker
            # emission order stays a subsequence of the global rank.
            shards[w].sort(key=self._rank.__getitem__)
        self.shards = shards
        self._shard_of = {
            key: w for w, shard in enumerate(shards) for key in shard
        }
        try:
            for w in sorted(touched):
                self._workers[w].reconfigure(shards[w])
        except WorkerGaveUp as crash:
            # A replica set died mid-handoff: the degrade path rebuilds
            # every shard from the op log against the new assignment.
            self._degrade(crash)
        return moves

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def counters(self) -> OpCounters:
        """Summed operation counters across all shards (equals the
        unsharded engine's totals — the subspace keys partition)."""
        self._check_open()
        total = OpCounters()
        for w in range(len(self._workers)):
            try:
                snap = self._workers[w].counters()
            except WorkerGaveUp as crash:
                self._degrade(crash)
                snap = self._workers[w].counters()
            total.comparisons += snap["comparisons"]
            total.traversed_constraints += snap["traversed_constraints"]
            total.stored_tuples += snap["stored_tuples"]
            total.file_reads += snap["file_reads"]
            total.file_writes += snap["file_writes"]
        return total

    @property
    def algorithm_name(self) -> str:
        return "svec"

    def _derive_spec(self):
        """The declarative :class:`~repro.api.spec.EngineSpec` that
        rebuilds this composition via :func:`repro.api.open_engine`."""
        from ..api.spec import EngineSpec, ShardingSpec

        # Only the pools actually serving a shard (a placement map with
        # more pools than maintained keys is clamped at construction).
        remote = (
            {name: list(self.remote[name]) for name in self._remote_order}
            if self.remote is not None
            else None
        )
        return EngineSpec(
            schema=self.schema,
            algorithm="svec",
            config=self.config,
            score=self.score,
            sweep_index=self.sweep_index,
            sharding=ShardingSpec(
                workers=self.n_workers,
                mode=self.mode,
                chunk_size=self.chunk_size,
                supervise=self.supervise,
                op_timeout=self.op_timeout,
                max_restarts=self.max_restarts,
                remote=remote,
            ),
        )

    def query(self) -> ShardedQueryEngine:
        """Forward contextual queries, merged router-side (maintained
        subspaces answered from the owning worker's stores)."""
        self._check_open()
        return ShardedQueryEngine(self)

    def stats(self) -> Dict[str, object]:
        """Operational metrics: base engine stats plus shard balance."""
        out = super().stats()
        out["workers"] = self.n_workers
        out["mode"] = self.mode
        out["utilization"] = self.utilization()
        out["shards"] = self.shard_stats()
        out["placement"] = self.placement.snapshot()
        out.update(self.fault_counters())
        return out

    def utilization(self) -> List[float]:
        """Cumulative busy seconds per shard (ingest compute only) —
        the service metrics read shard balance off this."""
        return [worker.busy_seconds for worker in self._workers]

    def __len__(self) -> int:
        return len(self.table)

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("ShardedDiscoverer is closed")

    def __repr__(self) -> str:
        return (
            f"ShardedDiscoverer(workers={self.n_workers}, "
            f"mode={self.mode!r}, n={len(self.table)})"
        )
