"""Spec/env-driven fault injection for the serving stack.

The discovery model is strictly deterministic, which makes its
fault-tolerance machinery *property-testable*: inject a fault, recover,
and the recovered engine must be indistinguishable from an unfaulted
reference run.  This module is the injection side of that loop — a tiny
registry of :class:`Fault` descriptions consulted from fixed
*hook points* in the serving code:

====================  ==================================================
Point                 Where it fires
====================  ==================================================
``worker.op``         In a shard-worker process, on receipt of each pipe
                      op (``op`` context = ``"rows"`` / ``"delete"`` /
                      ``"counters"`` / ``"skyline"`` / ``"skyband"`` /
                      ``"top_k"`` / ``"replay"``).
``worker.reply``      In a shard-worker process, just before the reply
                      to an op is sent back over the pipe.
``checkpoint.write``  In :meth:`StreamServer._checkpoint` /
                      :func:`~repro.extensions.snapshot.save_engine`,
                      after the temp file is written but before the
                      atomic replace.
``journal.append``    In :meth:`JournalWriter.append`, around the frame
                      write.
====================  ==================================================

Actions: ``"crash"`` (hard ``os._exit`` in workers, an exception
elsewhere — the crash must look like a real one, not an orderly
unwind), ``"delay"`` (sleep ``delay`` seconds, exercising op-timeout
paths), ``"drop"`` (suppress one pipe reply — the router sees silence),
and ``"corrupt"`` (write a torn/garbage tail instead of the full
record).

Faults are installed programmatically (:func:`install`) or from the
``REPRO_FAULTS`` environment variable (a JSON list of fault dicts),
which the CI chaos job and the CLI use; worker processes additionally
receive the active fault list through their spawn spec so injection is
deterministic under both ``fork`` and ``spawn`` start methods.

Every fault counts its *matching occurrences* and fires on the
``after``-th match, at most ``times`` times — "crash worker 1 on its
3rd ingest op" is ``Fault("worker.op", worker=1, op="rows",
after=3)``.  With no faults installed the hook is one ``None`` check.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

#: Hook points the serving code consults (see module docstring).
FAULT_POINTS = (
    "worker.op",
    "worker.reply",
    "checkpoint.write",
    "journal.append",
)

#: What a fired fault does at its hook point.
FAULT_ACTIONS = ("crash", "delay", "drop", "corrupt")


@dataclass
class Fault:
    """One injectable fault (see module docstring for the vocabulary).

    Attributes
    ----------
    point:
        Hook point this fault arms (one of :data:`FAULT_POINTS`).
    action:
        One of :data:`FAULT_ACTIONS`.
    worker:
        Restrict to one shard-worker index (``None`` = any worker).
    op:
        Restrict to one pipe op name (``None`` = any op).
    after:
        Fire on the N-th *matching* occurrence (1-based).
    times:
        Fire at most this many times once armed (0 = every match from
        ``after`` on).
    delay:
        Sleep duration for ``action="delay"``.
    exit_code:
        Worker exit code for ``action="crash"`` (diagnosable in tests).
    """

    point: str
    action: str = "crash"
    worker: Optional[int] = None
    op: Optional[str] = None
    after: int = 1
    times: int = 1
    delay: float = 0.05
    exit_code: int = 23
    #: Matching occurrences seen / fires performed (mutable tallies).
    seen: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; "
                f"choose from {FAULT_POINTS}"
            )
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"choose from {FAULT_ACTIONS}"
            )
        if self.after < 1:
            raise ValueError("fault.after is 1-based and must be >= 1")
        if self.times < 0:
            raise ValueError("fault.times must be >= 0 (0 = unlimited)")

    # -- matching --------------------------------------------------------
    def matches(self, point: str, worker: Optional[int], op: Optional[str]) -> bool:
        if point != self.point:
            return False
        if self.worker is not None and worker != self.worker:
            return False
        if self.op is not None and op != self.op:
            return False
        return True

    def to_dict(self) -> Dict[str, object]:
        doc = asdict(self)
        doc.pop("seen")
        doc.pop("fired")
        return doc


FaultLike = Union[Fault, Mapping[str, object]]


def _coerce(fault: FaultLike) -> Fault:
    if isinstance(fault, Fault):
        return fault
    return Fault(**dict(fault))


class FaultRegistry:
    """The set of armed faults plus their occurrence bookkeeping."""

    def __init__(self, faults: Iterable[FaultLike] = ()) -> None:
        self.faults: List[Fault] = [_coerce(f) for f in faults]

    def fire(
        self,
        point: str,
        worker: Optional[int] = None,
        op: Optional[str] = None,
    ) -> Optional[Fault]:
        """Record one occurrence at ``point``; return the fault to act
        on (first armed match), or ``None``."""
        hit: Optional[Fault] = None
        for fault in self.faults:
            if not fault.matches(point, worker, op):
                continue
            fault.seen += 1
            armed = fault.seen >= fault.after and (
                fault.times == 0 or fault.fired < fault.times
            )
            if armed and hit is None:
                fault.fired += 1
                hit = fault
        return hit

    def to_dicts(self) -> List[Dict[str, object]]:
        """JSON/pickle-light rendering (for worker spawn specs, env)."""
        return [fault.to_dict() for fault in self.faults]

    def __len__(self) -> int:
        return len(self.faults)


#: Process-wide active registry; ``None`` keeps every hook one check.
_ACTIVE: Optional[FaultRegistry] = None

#: Environment variable holding a JSON list of fault dicts.
ENV_VAR = "REPRO_FAULTS"


def install(faults: Iterable[FaultLike]) -> FaultRegistry:
    """Arm ``faults`` process-wide; returns the live registry."""
    global _ACTIVE
    _ACTIVE = FaultRegistry(faults)
    return _ACTIVE


def install_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[FaultRegistry]:
    """Arm faults from :data:`ENV_VAR` if set (the CI chaos job's path).

    Raises ``ValueError`` for unparseable specs — a mistyped fault must
    fail loudly, not silently test nothing.
    """
    raw = (environ or os.environ).get(ENV_VAR)
    if not raw:
        return None
    try:
        doc = json.loads(raw)
    except ValueError as exc:
        raise ValueError(f"{ENV_VAR} is not valid JSON: {exc}") from None
    if isinstance(doc, dict):
        doc = [doc]
    return install(doc)


def clear() -> None:
    """Disarm all faults (tests call this in teardown)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultRegistry]:
    """The armed registry, or ``None``."""
    return _ACTIVE


def active_dicts() -> List[Dict[str, object]]:
    """Armed faults as plain dicts (empty when none) — what the router
    forwards to worker processes in their spawn spec."""
    return _ACTIVE.to_dicts() if _ACTIVE is not None else []


def fire(
    point: str, worker: Optional[int] = None, op: Optional[str] = None
) -> Optional[Fault]:
    """Module-level hook: consult the active registry (near-free when
    no faults are armed)."""
    if _ACTIVE is None:
        return None
    return _ACTIVE.fire(point, worker=worker, op=op)
