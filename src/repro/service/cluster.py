"""Replica sets and cost-fed placement for remote shard clusters.

This is the router-side layer above the socket protocol
(:mod:`repro.service.remote`): each shard of a
:class:`~repro.service.sharding.ShardedDiscoverer` running in
``mode="remote"`` is served not by one pipe worker but by a
**replica set** — a pool of socket workers at the addresses the
``EngineSpec.sharding.remote`` placement map lists for that shard,
every one holding the same deterministic shard state.

Consistency model.  Shard workers are deterministic: identical op
streams (``rows`` / ``delete`` in arrival order) produce identical
engines, facts, and counters.  A :class:`ReplicaSet` therefore simply
sends every write to every live replica and may read (``counters``,
``skyline``, ``skyband``, ``top_k``) from *any* of them — reads
round-robin across the pool for fan-out, and a failed replica is
dropped and the read retried on the next one.  Failover is promotion
by position: replica 0 of the live list is the primary (the only one
the router forwards armed fault specs to, so injected crashes exercise
promotion); when it dies the next replica — already byte-identical —
takes over with zero recovery work.  Only when a whole replica set is
lost mid-stream does the set raise
:class:`~repro.service.supervisor.WorkerGaveUp`, which the router
handles exactly like an exhausted supervised pipe worker: degrade to
in-router execution, rebuilt from the op log, losing nothing.

Replica join is a deterministic re-observe: the router keeps the same
committed op log the degrade path replays (the in-memory equivalent of
the v3 snapshot + journal suffix — see
:func:`repro.service.journal.recover_engine` for the durable variant),
and :meth:`ReplicaSet.join` streams it to the new worker in
``_REPLAY_SLICE`` batches before re-sending any in-flight chunks.

Placement.  :class:`PlacementModel` replaces the static weights of
:func:`~repro.service.sharding.partition_subspaces` with live,
per-shard cost estimates — an EWMA of observed seconds-per-row and the
current queue depth, fed from the per-chunk worker replies (the same
numbers :class:`~repro.metrics.service.ServiceStats` now surfaces
per-shard).  It prices candidate assignments by their predicted
slowest shard (the litmus rough-cost-then-execute idiom) and emits
:class:`Move` plans the router executes as snapshot-handoff
reconfigures.  With no observations it falls back to the static
root-weight prior, so cold-start placement is identical to the
classic partition.
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
)

from .remote import (
    FrameError,
    HandshakeError,
    RemoteWorker,
    probe_worker,
)
from .supervisor import _REPLAY_SLICE, WorkerCrashed, WorkerGaveUp

__all__ = [
    "Move",
    "PlacementModel",
    "ReplicaSet",
    "cluster_status",
    "shard_sort_key",
]


def shard_sort_key(name: object):
    """Deterministic shard-name order for placement maps: numeric names
    sort numerically (``"2" < "10"``), the rest lexically after them."""
    text = str(name)
    return (0, int(text), "") if text.isdigit() else (1, 0, text)


class ReplicaSet:
    """All replicas of one shard, presented to the router as a single
    worker with the pipe-worker surface (``submit_rows`` / ``result`` /
    ``delete`` / reads / ``pending_ops`` / ``close``).

    Invariants the router relies on:

    * :meth:`submit_rows` **never raises** — the router's submit loop
      runs before any crash handling; a send failure just drops that
      replica and the chunk stays queued in ``_pending`` for the
      degrade path.
    * :meth:`result` collects one reply from *every* live replica (each
      owes exactly one per submitted chunk, FIFO), so the sockets stay
      in lockstep; the surviving replies are identical by determinism
      and the first is returned.
    * Reads are only issued while no chunk replies are outstanding
      (the router drains ingest before serving queries), so round-robin
      fan-out cannot interleave with chunk replies on a socket.
    """

    def __init__(
        self,
        index: int,
        addresses: Sequence[str],
        spec: Mapping[str, object],
        op_timeout: float = 60.0,
        oplog: Optional[List] = None,
    ) -> None:
        self.index = index
        self.addresses = [str(a) for a in addresses]
        if not self.addresses:
            raise ValueError(f"replica set {index} has no addresses")
        spec = dict(spec)
        armed = spec.pop("faults", None) or []
        self._spec = spec
        self.op_timeout = op_timeout
        # Shared with the router: the committed prefix joins replay.
        self._oplog: List = oplog if oplog is not None else []
        self._pending: Deque[list] = deque()
        self._rr = 0
        self.busy_seconds = 0.0
        self.failovers = 0
        self.restarts = 0  # replicas joined after construction
        self.chunks_retried = 0
        self._replicas: List[RemoteWorker] = []
        errors = []
        for i, address in enumerate(self.addresses):
            # Armed faults go to the primary only: replicas share the
            # worker index, so forwarding them everywhere would kill
            # the whole set at once and failover could never happen.
            worker_spec = dict(spec, faults=(armed if i == 0 else []))
            try:
                self._replicas.append(
                    RemoteWorker(index, address, worker_spec, op_timeout)
                )
            except (WorkerCrashed, HandshakeError) as exc:
                errors.append(str(exc))
        if not self._replicas:
            raise WorkerGaveUp(
                index,
                "no replica reachable (" + "; ".join(errors) + ")",
            )

    # -- liveness ----------------------------------------------------
    @property
    def replicas(self) -> List[str]:
        """Addresses of the live replicas, primary first."""
        return [replica.address for replica in self._replicas]

    def _drop(self, replica: RemoteWorker) -> None:
        try:
            self._replicas.remove(replica)
        except ValueError:  # pragma: no cover - double drop
            pass
        replica.abandon()
        # Promotion is implicit: the next live replica already holds
        # the identical deterministic state.
        self.failovers += 1

    # -- write path (pipe-worker surface) ----------------------------
    def submit_rows(self, rows: list) -> None:
        self._pending.append(rows)
        for replica in list(self._replicas):
            try:
                replica.submit_rows(rows)
            except WorkerCrashed:
                self._drop(replica)

    def result(self):
        if not self._replicas:
            raise WorkerGaveUp(
                self.index, f"replica set {self.index} exhausted"
            )
        reply = None
        for replica in list(self._replicas):
            try:
                got = replica._reply()
            except WorkerCrashed:
                self._drop(replica)
            else:
                if reply is None:
                    reply = got
        if reply is None:
            # Every replica died on this chunk; _pending is intact so
            # the router's degrade path replays it faithfully.
            raise WorkerGaveUp(
                self.index,
                f"replica set {self.index} lost every replica mid-chunk",
            )
        self._pending.popleft()
        self.busy_seconds += reply[4]
        return reply

    def delete(self, tid: int) -> None:
        acked = False
        for replica in list(self._replicas):
            try:
                replica.delete(tid)
            except WorkerCrashed:
                self._drop(replica)
            else:
                acked = True
        if not acked:
            raise WorkerGaveUp(
                self.index,
                f"replica set {self.index}: no replica acknowledged "
                f"delete({tid})",
            )

    # -- read path: round-robin fan-out ------------------------------
    def _read(self, op: str, payload):
        while self._replicas:
            replica = self._replicas[self._rr % len(self._replicas)]
            self._rr += 1
            try:
                return replica.request(op, payload)
            except WorkerCrashed:
                self._drop(replica)
        raise WorkerGaveUp(
            self.index,
            f"replica set {self.index}: read {op!r} found no live replica",
        )

    def counters(self) -> Dict[str, int]:
        return self._read("counters", None)

    def skyline(self, values, subspace: int) -> List[int]:
        return self._read("skyline", (values, subspace))

    def skyband(self, values, subspace: int, k: int, limit=None) -> List[int]:
        return self._read("skyband", (values, subspace, k, limit))

    def top_k(self, values, subspace: int, limit):
        return self._read("top_k", (values, subspace, limit))

    def fanout(self, calls: Sequence[Callable[[RemoteWorker], object]]):
        """Scatter read closures across the live replicas — one thread
        per replica, each replica's socket used serially — and gather
        results in call order.  This is the read fan-out path for
        ``skyband`` / ``top_k`` push-down bursts; issue only while no
        ingest replies are outstanding."""
        replicas = list(self._replicas)
        if not replicas:
            raise WorkerGaveUp(
                self.index, f"replica set {self.index}: fanout on empty set"
            )
        if len(replicas) == 1 or len(calls) <= 1:
            return [call(replicas[0]) for call in calls]
        results: List[object] = [None] * len(calls)
        failures: List[BaseException] = []

        def drain(replica: RemoteWorker, indices: List[int]) -> None:
            for i in indices:
                try:
                    results[i] = calls[i](replica)
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    failures.append(exc)
                    return

        buckets: List[List[int]] = [[] for _ in replicas]
        for i in range(len(calls)):
            buckets[i % len(replicas)].append(i)
        threads = [
            threading.Thread(target=drain, args=(replica, bucket))
            for replica, bucket in zip(replicas, buckets)
            if bucket
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        return results

    # -- membership --------------------------------------------------
    def heartbeat(self) -> Dict[str, Optional[float]]:
        """Ping every live replica (round-trip seconds, or ``None`` for
        a replica that just failed the ping and was dropped).  FIFO
        caveat as for reads: only while no chunks are outstanding."""
        out: Dict[str, Optional[float]] = {}
        for replica in list(self._replicas):
            address = replica.address
            try:
                rtt, _payload = replica.ping()
            except WorkerCrashed:
                self._drop(replica)
                out[address] = None
            else:
                out[address] = rtt
        return out

    def join(self, address: str) -> RemoteWorker:
        """Bring a new replica into the set by deterministic
        re-observe: configure it, replay the committed op prefix in
        :data:`~repro.service.supervisor._REPLAY_SLICE` batches, then
        re-send any in-flight chunks so it owes the same replies as the
        incumbents."""
        replica = RemoteWorker(
            self.index, address, dict(self._spec, faults=[]), self.op_timeout
        )
        ops = list(self._oplog)
        for start in range(0, len(ops), _REPLAY_SLICE):
            replica.replay(ops[start : start + _REPLAY_SLICE])
        for rows in self._pending:
            replica.submit_rows(rows)
        self.chunks_retried += len(self._pending)
        self._replicas.append(replica)
        self.restarts += 1
        if replica.address not in self.addresses:
            self.addresses.append(replica.address)
        return replica

    def reconfigure(self, shard_keys: Sequence[int]) -> None:
        """Snapshot-handoff for a rebalance move: install the new key
        partition on every live replica and rebuild it from the
        committed op prefix.  Must only run between batches (no pending
        chunks)."""
        if self._pending:
            raise RuntimeError(
                f"replica set {self.index}: reconfigure with "
                f"{len(self._pending)} chunks outstanding"
            )
        self._spec = dict(self._spec, shard=list(shard_keys))
        ops = list(self._oplog)
        for replica in list(self._replicas):
            try:
                replica.request("configure", dict(self._spec, faults=[]))
                for start in range(0, len(ops), _REPLAY_SLICE):
                    replica.replay(ops[start : start + _REPLAY_SLICE])
            except WorkerCrashed:
                self._drop(replica)
        if not self._replicas:
            raise WorkerGaveUp(
                self.index,
                f"replica set {self.index} lost every replica during "
                f"reconfigure",
            )

    def pending_ops(self) -> List[list]:
        return list(self._pending)

    def close(self) -> None:
        for replica in self._replicas:
            replica.close()
        self._replicas = []


# ----------------------------------------------------------------------
# Cost-fed placement
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Move:
    """One rebalance step: move subspace ``key`` from shard ``src`` to
    shard ``dst``."""

    key: int
    src: int
    dst: int


class PlacementModel:
    """Prices shard placements from observed per-shard cost.

    Each per-chunk worker reply feeds :meth:`observe` with the shard's
    busy-seconds for the chunk; the model keeps an EWMA of
    seconds-per-row per shard, normalised by the shard's weighted key
    load into a *unit cost* (seconds per row per weight unit).  A
    candidate assignment is priced at its predicted slowest shard
    (:meth:`price` — ingest is barrier-synchronised per chunk, so the
    slowest shard is the wall-clock), with a queue-depth penalty for
    shards already running behind.

    Unobserved shards price at the mean observed unit cost (or a
    nominal 1.0 before any sample), which makes the cold-start model
    degenerate to the static weighted partition — placement only moves
    once real skew has been measured.
    """

    def __init__(
        self,
        root_weight: float = 2.0,
        alpha: float = 0.25,
        imbalance_threshold: float = 1.25,
        max_moves: int = 8,
        queue_penalty: float = 0.1,
    ) -> None:
        self.root_weight = float(root_weight)
        self.alpha = float(alpha)
        self.imbalance_threshold = float(imbalance_threshold)
        self.max_moves = int(max_moves)
        self.queue_penalty = float(queue_penalty)
        self._rate: Dict[int, float] = {}  # shard -> EWMA seconds/row
        self._weight: Dict[int, float] = {}  # weighted keys at last observe
        self._queue: Dict[int, int] = {}
        self._rows: Dict[int, int] = {}
        self._samples = 0

    def key_weight(self, key: int, root_key: int) -> float:
        return self.root_weight if key == root_key else 1.0

    def observe(
        self,
        shard: int,
        n_rows: int,
        busy_seconds: float,
        weight: float,
        queue_depth: int = 0,
    ) -> None:
        """Fold one chunk's measurement into the shard's EWMA."""
        if n_rows <= 0:
            return
        sample = float(busy_seconds) / n_rows
        prev = self._rate.get(shard)
        self._rate[shard] = (
            sample if prev is None else prev + self.alpha * (sample - prev)
        )
        self._weight[shard] = max(float(weight), 1e-9)
        self._queue[shard] = int(queue_depth)
        self._rows[shard] = self._rows.get(shard, 0) + n_rows
        self._samples += 1

    def rate(self, shard: int) -> Optional[float]:
        """The shard's EWMA seconds-per-row, or ``None`` if unobserved."""
        value = self._rate.get(shard)
        return None if value is None else round(value, 9)

    def unit_cost(self, shard: int) -> float:
        """Seconds per row per weight unit; unobserved shards get the
        mean observed unit cost (the static prior when nothing has been
        observed at all)."""
        rate = self._rate.get(shard)
        if rate is None:
            known = [
                r / self._weight[s] for s, r in self._rate.items()
            ]
            return sum(known) / len(known) if known else 1.0
        return rate / self._weight[shard]

    def _shard_cost(self, shard: int, keys: Sequence[int], root_key: int) -> float:
        load = sum(self.key_weight(key, root_key) for key in keys)
        penalty = 1.0 + self.queue_penalty * self._queue.get(shard, 0)
        return self.unit_cost(shard) * load * penalty

    def price(self, assignment: Sequence[Sequence[int]], root_key: int) -> float:
        """Predicted per-chunk wall-clock of a candidate assignment:
        the cost of its slowest shard (chunks barrier on the stragglers)."""
        return max(
            self._shard_cost(shard, keys, root_key)
            for shard, keys in enumerate(assignment)
        )

    def rebalance_plan(
        self, assignment: Sequence[Sequence[int]], root_key: int
    ) -> List[Move]:
        """Greedy rough-cost plan: while the priciest shard exceeds the
        mean by more than ``imbalance_threshold``, move one of its node
        keys (never the root, never its last key) to the cheapest shard
        — but only if that strictly lowers the predicted wall-clock."""
        shards = [list(keys) for keys in assignment]
        if len(shards) < 2 or self._samples == 0:
            return []
        moves: List[Move] = []
        for _ in range(self.max_moves):
            costs = [
                self._shard_cost(shard, keys, root_key)
                for shard, keys in enumerate(shards)
            ]
            mean = sum(costs) / len(costs)
            if mean <= 0.0:
                break
            src = max(range(len(costs)), key=costs.__getitem__)
            dst = min(range(len(costs)), key=costs.__getitem__)
            if src == dst or costs[src] / mean <= self.imbalance_threshold:
                break
            movable = [key for key in shards[src] if key != root_key]
            if not movable or len(shards[src]) <= 1:
                break
            key = movable[-1]
            before = self.price(shards, root_key)
            shards[src].remove(key)
            shards[dst].append(key)
            if self.price(shards, root_key) >= before:
                shards[dst].remove(key)
                shards[src].append(key)
                break
            moves.append(Move(key=key, src=src, dst=dst))
        return moves

    def snapshot(self) -> Dict[str, object]:
        """Model internals for ``stats`` / ``shard_stats`` reporting."""
        return {
            "samples": self._samples,
            "ewma_seconds_per_row": {
                shard: round(rate, 9) for shard, rate in self._rate.items()
            },
            "queue_depth": dict(self._queue),
            "rows_observed": dict(self._rows),
        }


# ----------------------------------------------------------------------
# Operator-facing status probe
# ----------------------------------------------------------------------
def cluster_status(
    remote: Mapping[str, Sequence[str]], timeout: float = 2.0
) -> List[Dict[str, object]]:
    """Probe every worker in a placement map; one row per
    ``(shard, replica)`` with liveness, configured-ness, applied rows,
    replication lag (rows behind the most advanced replica of the
    shard), busy-seconds, and ping round-trip.  Unreachable workers get
    ``alive=False`` plus the error — the probe itself never raises."""
    report: List[Dict[str, object]] = []
    for shard in sorted(remote, key=shard_sort_key):
        shard_rows: List[Dict[str, object]] = []
        applied: List[int] = []
        for address in remote[shard]:
            try:
                stats = probe_worker(address, timeout=timeout)
            except (OSError, ConnectionError, FrameError, ValueError) as exc:
                shard_rows.append(
                    {
                        "shard": str(shard),
                        "replica": str(address),
                        "alive": False,
                        "configured": False,
                        "rows": None,
                        "busy_seconds": None,
                        "rtt_ms": None,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
            else:
                rows = int(stats.get("rows", 0))
                applied.append(rows)
                shard_rows.append(
                    {
                        "shard": str(shard),
                        "replica": str(address),
                        "alive": True,
                        "configured": bool(stats.get("configured", False)),
                        "rows": rows,
                        "busy_seconds": stats.get("busy_seconds", 0.0),
                        "rtt_ms": round(
                            float(stats.get("rtt_seconds", 0.0)) * 1000.0, 3
                        ),
                        "error": None,
                    }
                )
        head = max(applied) if applied else 0
        for row in shard_rows:
            row["lag"] = (
                head - row["rows"] if row["alive"] and row["rows"] is not None
                else None
            )
        report.extend(shard_rows)
    return report
