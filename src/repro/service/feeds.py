"""Materialized per-segment feeds — the read fan-out tier (ROADMAP 1).

A :class:`FeedStore` keeps, per *segment* (the projection of a fact's
constraint onto ``FeedSpec.group_by``), the current standings of every
constraint–measure pair that has ever produced a fact: its exact
context / skyline cardinalities, hence its prominence.  Subscribers and
the HTTP/WebSocket gateway (:mod:`repro.service.gateway`) read ranked
top-k pages from this state — reads never touch the engine, so fan-out
scales with subscriber count instead of engine throughput.

Maintenance is incremental off the same :class:`FactEvent` stream
subscribers see, and *exact* (property-tested against
``engine.query().batch(...)`` over the same pairs):

* **fact upsert** — an event's ``S_t`` carries exact context/skyline
  sizes for every pair the new tuple entered the skyline of; those
  overwrite the entry in place.
* **silent-satisfier increment** — an arrival that satisfies a tracked
  constraint *without* a fact for some pair provably left that pair's
  skyline unchanged (anything dominating a skyline member would itself
  be undominated, i.e. a fact); maintenance is exactly ``ctx += 1``.
  The arrival's candidate constraints come from
  :func:`~repro.core.constraint.satisfied_constraints` (``O(2^d̂)``,
  independent of store size).
* **retraction repair** — deletions and window evictions emit no
  events, but every pair they can affect has a constraint the removed
  tuple satisfied; those tracked pairs are refreshed in one
  ``query().batch`` against the live engine (the planner answers
  indexed pairs from statistics alone).  Pairs whose context empties
  are dropped.  Entry *existence* is monotone with a non-empty context
  — a pair's first satisfier is always its sole-context skyline, so
  the entry was created when the pair first became non-empty — which
  is why repair never needs to invent entries.

Memory is bounded by ``FeedSpec.max_entries`` per segment (lowest
prominence evicted first, tallied per segment); ``τ`` / top-k are
read-time filters so entries below the floor can rise again without an
event.  Each segment carries a monotone ``version`` (bumped on any
content change) that drives gateway change feeds and cursor pagination,
and the store snapshots to a sidecar JSON next to the engine checkpoint,
stamped with the engine version ``(arrivals, deletions)`` — a stamp
mismatch on restore triggers :meth:`FeedStore.rebuild` instead of
serving stale standings.
"""

from __future__ import annotations

import heapq
import json
import os
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.config import DiscoveryConfig
from ..core.constraint import UNBOUND, Constraint, satisfied_constraints
from ..core.facts import FactSet
from ..core.record import Record
from ..core.schema import TableSchema
from ..api.spec import FeedSpec

#: Sidecar snapshot format version.
SIDECAR_FORMAT = 1

Pair = Tuple[Constraint, int]


def engine_version(engine) -> Tuple[int, int]:
    """``(arrivals, deletions)`` — the same monotone stamp the query
    cache keys on; equality proves engine state is unchanged."""
    arrivals = engine.arrivals
    return arrivals, arrivals - len(engine)


class FeedEntry:
    """Current standing of one tracked ``(C, M)`` pair.

    The context cardinality lives in a one-element list *shared by every
    entry of the same constraint* (``|σ_C(table)|`` does not depend on
    the measure subspace) — a silent satisfier costs one increment per
    constraint instead of one per tracked pair, which is what keeps feed
    maintenance a few percent of discovery itself."""

    __slots__ = (
        "constraint",
        "subspace",
        "skyline_size",
        "tid",
        "ctx_cell",
        "_rank_tail",
    )

    def __init__(
        self,
        constraint: Constraint,
        subspace: int,
        ctx_cell: List[int],
        skyline_size: int,
        tid: int,
    ) -> None:
        self.constraint = constraint
        self.subspace = subspace
        self.ctx_cell = ctx_cell
        self.skyline_size = skyline_size
        #: Most recent arrival known to sit in this pair's skyline.
        self.tid = tid
        # Static part of the rank key (everything but the prominence),
        # built lazily on the first rank evaluation — the repr tiebreak
        # is too costly for entry creation, and most entries are never
        # ranked between updates.
        self._rank_tail = None

    @property
    def context_size(self) -> int:
        return self.ctx_cell[0]

    @property
    def prominence(self) -> float:
        return self.ctx_cell[0] / self.skyline_size

    def to_json_dict(self, schema: TableSchema) -> dict:
        return {
            "constraint": self.constraint.to_mapping(schema),
            "measures": list(schema.measure_names(self.subspace)),
            "prominence": self.prominence,
            "context_size": self.context_size,
            "skyline_size": self.skyline_size,
            "tid": self.tid,
        }


class FeedSegment:
    """One materialized feed: entries + a monotone content version."""

    __slots__ = ("key", "version", "entries", "last_arrival", "evicted")

    def __init__(self, key: str) -> None:
        self.key = key
        #: Bumped on every content change; drives gateway updates and
        #: cursor invalidation.  Monotone for the segment's lifetime.
        self.version = 0
        self.entries: Dict[Pair, FeedEntry] = {}
        #: Store-level arrival count when this segment last changed.
        self.last_arrival = 0
        #: Entries dropped by the per-segment cap (truncation marker).
        self.evicted = 0


def _rank_key(entry: FeedEntry):
    """Descending prominence; ties to the more general constraint then
    the smaller subspace (mirrors ``FactSet.ranked``), then a stable
    textual tiebreak so pagination order is deterministic.  Only the
    prominence head is built per evaluation; the tail is cached on the
    entry."""
    tail = entry._rank_tail
    if tail is None:
        constraint = entry.constraint
        subspace = entry.subspace
        tail = entry._rank_tail = (
            constraint.bound_count,
            bin(subspace).count("1"),
            repr(constraint.values),
            subspace,
        )
    return (-entry.ctx_cell[0] / entry.skyline_size,) + tail


class FeedStore:
    """Segmented materialized feeds over one engine's fact stream.

    Not thread-safe by construction — an internal lock serialises
    mutation (which the :class:`~repro.service.server.StreamServer`
    runs in its engine executor) against reads (which the gateway runs
    on the event loop).
    """

    def __init__(
        self,
        schema: TableSchema,
        config: DiscoveryConfig,
        spec: Optional[FeedSpec] = None,
    ) -> None:
        self.schema = schema
        self.config = config
        self.spec = spec or FeedSpec()
        self._group_positions = tuple(
            schema.dimension_index(name) for name in self.spec.group_by
        )
        self._bound_cap = config.effective_bound_cap(schema.n_dimensions)
        self._subspaces = tuple(
            mask
            for mask in range(1, 1 << schema.n_measures)
            if config.allows_subspace(mask)
        )
        self._segments: Dict[str, FeedSegment] = {}
        #: Constraint -> {(segment_key, subspace)} for the O(2^d̂)
        #: silent-satisfier and repair lookups.
        self._by_constraint: Dict[Constraint, Set[Tuple[str, int]]] = {}
        #: Constraint -> shared ``[|σ_C(table)|]`` cell (see
        #: :class:`FeedEntry`); keyed exactly by the tracked
        #: constraints.
        self._ctx: Dict[Constraint, List[int]] = {}
        #: Constraint interning table: every entry key reuses the
        #: first-seen object, so pair lookups resolve on the tuple
        #: identity shortcut instead of a value compare per fact.
        self._canon: Dict[Constraint, Constraint] = {}
        #: Constraint -> segment key, hot-path cache (the key is a
        #: pure function of the constraint while ``split_subspaces``
        #: is off); pruned when a constraint loses its last entry.
        self._key_cache: Dict[Constraint, str] = {}
        #: Removed records awaiting a repair pass (explicit deletions,
        #: window evictions, aggregate group retractions).
        self._pending_retractions: List[Record] = []
        #: Applied arrivals whose ``S_t`` was lost (salvage path):
        #: repair refreshes their *full* candidate-pair set, since a
        #: lost arrival may have founded pairs no entry tracks yet.
        self._pending_unknown: List[Record] = []
        self._lock = threading.RLock()
        #: Arrivals folded in (equals ``engine.arrivals`` when the
        #: store has been attached since the first row).
        self.applied_arrivals = 0
        #: Retraction-repair passes executed.
        self.repairs = 0
        #: Pairs refreshed by repair passes.
        self.repaired_pairs = 0

    @classmethod
    def for_engine(cls, engine, spec: Optional[FeedSpec] = None) -> "FeedStore":
        """A store over ``engine``'s discovery relation; ``spec``
        defaults to the engine spec's ``feeds`` section."""
        if spec is None:
            try:
                spec = engine.spec.feeds
            except (AttributeError, NotImplementedError):
                spec = None
        schema = getattr(engine, "discovery_schema", engine.schema)
        return cls(schema, engine.config, spec)

    # ------------------------------------------------------------------
    # Segmentation
    # ------------------------------------------------------------------
    def segment_key(self, constraint: Constraint, subspace: int) -> str:
        """The segment a ``(C, M)`` pair belongs to: ``C`` projected on
        ``group_by`` (unbound positions render ``*``)."""
        parts = [
            f"{name}={'*' if constraint.values[pos] is UNBOUND else constraint.values[pos]}"
            for name, pos in zip(self.spec.group_by, self._group_positions)
        ]
        if self.spec.split_subspaces:
            names = "+".join(self.schema.measure_names(subspace))
            parts.append(f"measures={names}")
        return ",".join(parts) if parts else "*"

    def _segment(self, key: str) -> FeedSegment:
        segment = self._segments.get(key)
        if segment is None:
            segment = self._segments[key] = FeedSegment(key)
        return segment

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def attach(self, engine) -> None:
        """Hook internal retractions (window evictions, aggregate group
        updates) on every middleware layer of ``engine`` so repair sees
        removals that never surface as server ops."""
        layer = engine
        while layer is not None:
            hook = getattr(layer, "add_retraction_listener", None)
            if callable(hook):
                hook(self.note_retracted)
            layer = getattr(layer, "inner", None)

    def apply_event(self, record: Record, factset: Optional[FactSet]) -> Set[str]:
        """Fold one arrival in; returns the keys of changed segments.

        ``factset`` is the arrival's full ``S_t`` (not the reportable
        selection).  ``None`` marks a salvage-path arrival whose facts
        were lost — queue it for a repair-style refresh instead.
        """
        with self._lock:
            self.applied_arrivals += 1
            changed: Set[str] = set()
            if factset is None:
                self._pending_unknown.append(record)
                return changed
            touched: Dict[str, FeedSegment] = {}
            tid = record.tid
            split = self.spec.split_subspaces
            constraints, subspaces, contexts, skylines = factset.columns()
            # ``S_t`` holds one fact per (C, M) but shares constraint
            # *objects* across subspaces — resolve the per-constraint
            # state (canonical object, shared context cell, segment)
            # once per distinct object via an identity-keyed scratch
            # map, so the per-fact loop stays free of value-hashed
            # lookups.
            resolved: Dict[int, tuple] = {}
            for i, constraint in enumerate(constraints):
                state = resolved.get(id(constraint))
                if state is None:
                    canon = self._canon.get(constraint)
                    if canon is None:
                        canon = self._canon[constraint] = constraint
                    cell = self._ctx.get(canon)
                    if cell is None:
                        cell = self._ctx[canon] = [0]
                    if split:
                        key = segment = None
                    else:
                        key = self._key_cache.get(canon)
                        if key is None:
                            key = self._key_cache[canon] = self.segment_key(
                                canon, 0
                            )
                        segment = self._segments.get(key)
                        if segment is None:
                            segment = self._segments[key] = FeedSegment(key)
                        touched[key] = segment
                    resolved[id(constraint)] = state = (
                        canon, cell, key, segment
                    )
                canon, cell, key, segment = state
                subspace = subspaces[i]
                if split:
                    key = self.segment_key(canon, subspace)
                    segment = self._segments.get(key)
                    if segment is None:
                        segment = self._segments[key] = FeedSegment(key)
                    touched[key] = segment
                # Exact overwrite — every pair of one constraint
                # carries the same post-arrival context size.
                cell[0] = (contexts[i] if contexts is not None else None) or 0
                sky = (skylines[i] if skylines is not None else None) or 0
                pair = (canon, subspace)
                entry = segment.entries.get(pair)
                if entry is None:
                    segment.entries[pair] = FeedEntry(
                        canon, subspace, cell, sky, tid
                    )
                    self._by_constraint.setdefault(canon, set()).add(
                        (key, subspace)
                    )
                else:
                    entry.skyline_size = sky
                    entry.tid = tid
            # Silent satisfiers: the arrival matches a tracked
            # constraint without a fact for it — every such pair's
            # skyline is provably unchanged and the shared context grew
            # by exactly one.  Constraints that *did* produce a fact
            # were overwritten with the exact context above (which also
            # covers their fact-less sibling subspaces); their segments
            # still need the version bump.
            seen = set(constraints)
            for constraint in satisfied_constraints(record, self._bound_cap):
                cell = self._ctx.get(constraint)
                if cell is None:
                    continue
                if constraint not in seen:
                    cell[0] += 1
                for key, _subspace in self._by_constraint[constraint]:
                    touched[key] = self._segments[key]
            for key, segment in touched.items():
                self._enforce_cap(segment)
                self._bump(segment)
                changed.add(key)
            return changed

    def note_retracted(self, removed) -> None:
        """Queue removed record(s) for the next repair pass (explicit
        deletes, window evictions, aggregate retractions)."""
        with self._lock:
            if isinstance(removed, Record):
                self._pending_retractions.append(removed)
            else:
                self._pending_retractions.extend(removed)

    def repair(self, engine) -> Set[str]:
        """Refresh every pair a pending retraction (or lost arrival)
        could have touched, in one batch query against the live engine.
        Returns the keys of changed segments.

        Retracted records refresh only *tracked* pairs — entry
        existence is monotone with a non-empty context, so any pair a
        removal resurrects already has an entry.  Lost arrivals refresh
        their full candidate set, because they may have founded pairs
        nothing tracks yet.
        """
        with self._lock:
            retracted = self._pending_retractions
            unknown = self._pending_unknown
            if not retracted and not unknown:
                return set()
            self._pending_retractions = []
            self._pending_unknown = []
            affected: List[Pair] = []
            seen: Set[Pair] = set()
            for record in retracted:
                for constraint in satisfied_constraints(record, self._bound_cap):
                    targets = self._by_constraint.get(constraint)
                    if not targets:
                        continue
                    for _key, subspace in targets:
                        pair = (constraint, subspace)
                        if pair not in seen:
                            seen.add(pair)
                            affected.append(pair)
            for record in unknown:
                for constraint in satisfied_constraints(record, self._bound_cap):
                    for subspace in self._subspaces:
                        pair = (constraint, subspace)
                        if pair not in seen:
                            seen.add(pair)
                            affected.append(pair)
            self.repairs += 1
            if not affected:
                return set()
            self.repaired_pairs += len(affected)
            results = engine.query().batch(affected)
            changed: Set[str] = set()
            touched: Dict[str, FeedSegment] = {}
            for pair, result in zip(affected, results):
                constraint, subspace = pair
                key = self.segment_key(constraint, subspace)
                if result.context_size <= 0:
                    segment = self._segments.get(key)
                    if segment is None or pair not in segment.entries:
                        continue
                    self._drop_entry(segment, pair)
                else:
                    segment = self._segment(key)
                    tid = (
                        max(r.tid for r in result.skyline)
                        if result.skyline
                        else -1
                    )
                    canon = self._canon.get(constraint)
                    if canon is None:
                        canon = self._canon[constraint] = constraint
                    cell = self._ctx.get(canon)
                    if cell is None:
                        cell = self._ctx[canon] = [result.context_size]
                    else:
                        cell[0] = result.context_size
                    pair = (canon, subspace)
                    entry = segment.entries.get(pair)
                    if entry is None:
                        segment.entries[pair] = FeedEntry(
                            canon,
                            subspace,
                            cell,
                            result.skyline_size,
                            tid,
                        )
                        self._by_constraint.setdefault(canon, set()).add(
                            (key, subspace)
                        )
                    else:
                        entry.skyline_size = result.skyline_size
                        entry.tid = tid
                touched[key] = segment
            for key, segment in touched.items():
                self._enforce_cap(segment)
                self._bump(segment)
                changed.add(key)
            return changed

    def _drop_entry(self, segment: FeedSegment, pair: Pair) -> None:
        segment.entries.pop(pair, None)
        targets = self._by_constraint.get(pair[0])
        if targets is not None:
            targets.discard((segment.key, pair[1]))
            if not targets:
                del self._by_constraint[pair[0]]
                self._ctx.pop(pair[0], None)
                self._key_cache.pop(pair[0], None)
                self._canon.pop(pair[0], None)

    def _enforce_cap(self, segment: FeedSegment) -> None:
        max_entries = self.spec.max_entries
        if len(segment.entries) <= max_entries:
            return
        # Hysteresis: evict down to a low-water mark below the cap, so
        # the O(n) victim scan amortizes over the arrivals that refill
        # the slack instead of re-running on every arrival once the
        # segment sits at the cap.  The memory bound stays strict
        # (never above ``max_entries`` after a fold); the slack only
        # evicts entries the cap would have evicted shortly anyway.
        low_water = max(1, max_entries - (max_entries >> 2))
        drop = len(segment.entries) - low_water
        # Victim selection on bare prominence floats (C-speed listcomp
        # + partial sort), never on the full rank key: everything below
        # the drop-th smallest prominence goes, ties at the threshold
        # are broken by insertion order (deterministic for a given
        # stream; the tied entries are equally prominent, so the feed's
        # ranked content is unaffected by which of them survive).
        entries = list(segment.entries.values())
        proms = [e.ctx_cell[0] / e.skyline_size for e in entries]
        threshold = heapq.nsmallest(drop, proms)[-1]
        victims = [e for e, p in zip(entries, proms) if p < threshold]
        need = drop - len(victims)
        if need > 0:
            victims.extend(
                e for e, p in zip(entries, proms) if p == threshold
            )
            del victims[drop:]
        for entry in victims:
            self._drop_entry(segment, (entry.constraint, entry.subspace))
        segment.evicted += drop

    def _bump(self, segment: FeedSegment) -> None:
        segment.version += 1
        segment.last_arrival = self.applied_arrivals

    # ------------------------------------------------------------------
    # Reads (gateway / NewsFeed)
    # ------------------------------------------------------------------
    def segment_keys(self) -> List[str]:
        with self._lock:
            return sorted(self._segments)

    def segments(self) -> List[dict]:
        """Summary row per segment (the gateway's ``GET /feeds``)."""
        with self._lock:
            return [
                {
                    "segment": segment.key,
                    "version": segment.version,
                    "entries": len(segment.entries),
                    "staleness": self.applied_arrivals - segment.last_arrival,
                    "evicted": segment.evicted,
                }
                for _, segment in sorted(self._segments.items())
            ]

    def entries_ranked(
        self,
        key: str,
        top_k: Optional[int] = None,
        tau: Optional[float] = None,
    ) -> List[FeedEntry]:
        """Ranked entries of one segment under the read-time ``τ`` /
        top-k policy (ties at the cut kept, like ``query().batch``).
        Arguments default to the spec's values."""
        if top_k is None:
            top_k = self.spec.top_k
        if tau is None:
            tau = self.spec.tau
        with self._lock:
            segment = self._segments.get(key)
            if segment is None:
                return []
            entries = sorted(segment.entries.values(), key=_rank_key)
        if tau is not None:
            entries = [e for e in entries if e.prominence >= tau]
        if top_k is not None and len(entries) > top_k:
            cutoff = entries[top_k - 1].prominence
            cut = top_k
            while cut < len(entries) and entries[cut].prominence == cutoff:
                cut += 1
            entries = entries[:cut]
        return entries

    def read(
        self,
        key: str,
        top_k: Optional[int] = None,
        tau: Optional[float] = None,
        cursor: Optional[str] = None,
        limit: int = 100,
    ) -> Optional[dict]:
        """One cursor page of a segment's ranked feed, or ``None`` for
        an unknown segment.

        The cursor is ``"v<version>:<offset>"``.  A cursor minted
        against an older version restarts the page walk from offset 0
        (``"restarted": true``) — versions are monotone, so a stale
        cursor can never silently skip or duplicate entries.
        """
        if limit < 1:
            raise ValueError("limit must be >= 1")
        with self._lock:
            segment = self._segments.get(key)
            if segment is None:
                return None
            version = segment.version
            evicted = segment.evicted
        entries = self.entries_ranked(key, top_k=top_k, tau=tau)
        offset = 0
        restarted = False
        if cursor:
            try:
                v_part, o_part = cursor.split(":", 1)
                cursor_version = int(v_part.lstrip("v"))
                offset = max(0, int(o_part))
            except ValueError:
                raise ValueError(f"malformed cursor {cursor!r}")
            if cursor_version != version:
                offset = 0
                restarted = True
        page = entries[offset : offset + limit]
        next_offset = offset + len(page)
        out = {
            "segment": key,
            "version": version,
            "total": len(entries),
            "offset": offset,
            "entries": [e.to_json_dict(self.schema) for e in page],
            "next_cursor": (
                f"v{version}:{next_offset}"
                if next_offset < len(entries)
                else None
            ),
        }
        if restarted:
            out["restarted"] = True
        if evicted:
            out["truncated"] = evicted
        return out

    def stats(self) -> dict:
        with self._lock:
            staleness = [
                self.applied_arrivals - s.last_arrival
                for s in self._segments.values()
            ]
            return {
                "segments": len(self._segments),
                "entries": sum(len(s.entries) for s in self._segments.values()),
                "applied_arrivals": self.applied_arrivals,
                "repairs": self.repairs,
                "repaired_pairs": self.repaired_pairs,
                "evicted": sum(s.evicted for s in self._segments.values()),
                "max_staleness": max(staleness) if staleness else 0,
            }

    def __len__(self) -> int:
        with self._lock:
            return sum(len(s.entries) for s in self._segments.values())

    # ------------------------------------------------------------------
    # Snapshot sidecar / rebuild
    # ------------------------------------------------------------------
    def to_doc(self, version: Tuple[int, int]) -> dict:
        """Plain-data rendering stamped with the engine version the
        standings describe."""
        with self._lock:
            return {
                "format": SIDECAR_FORMAT,
                "engine_version": list(version),
                "feed_spec": self.spec.to_dict(),
                "applied_arrivals": self.applied_arrivals,
                "segments": [
                    {
                        "key": segment.key,
                        "version": segment.version,
                        "last_arrival": segment.last_arrival,
                        "evicted": segment.evicted,
                        "entries": [
                            {
                                "values": list(entry.constraint.values),
                                "subspace": entry.subspace,
                                "ctx": entry.context_size,
                                "sky": entry.skyline_size,
                                "tid": entry.tid,
                            }
                            for entry in segment.entries.values()
                        ],
                    }
                    for segment in self._segments.values()
                ],
            }

    def save_sidecar(self, path: str, version: Tuple[int, int]) -> bool:
        """Write the sidecar crash-consistently next to the engine
        checkpoint.  Best-effort: non-JSON dimension values (or disk
        trouble) skip the sidecar — restore then rebuilds instead."""
        try:
            payload = json.dumps(self.to_doc(version))
        except (TypeError, ValueError):
            return False
        tmp = f"{path}.tmp"
        try:
            with open(tmp, "w") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            return True
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False

    def restore_doc(self, doc: dict, version: Tuple[int, int]) -> bool:
        """Load standings from a sidecar doc iff its stamp matches the
        live engine version; returns whether it applied."""
        if doc.get("format") != SIDECAR_FORMAT:
            return False
        if list(doc.get("engine_version") or ()) != list(version):
            return False
        if doc.get("feed_spec") != self.spec.to_dict():
            return False
        with self._lock:
            self._segments.clear()
            self._by_constraint.clear()
            self._ctx.clear()
            self._key_cache.clear()
            self._canon.clear()
            self.applied_arrivals = int(doc.get("applied_arrivals", 0))
            for seg_doc in doc.get("segments", ()):
                segment = FeedSegment(seg_doc["key"])
                segment.version = int(seg_doc.get("version", 0))
                segment.last_arrival = int(seg_doc.get("last_arrival", 0))
                segment.evicted = int(seg_doc.get("evicted", 0))
                for entry_doc in seg_doc.get("entries", ()):
                    constraint = Constraint(tuple(entry_doc["values"]))
                    constraint = self._canon.setdefault(constraint, constraint)
                    subspace = int(entry_doc["subspace"])
                    cell = self._ctx.setdefault(constraint, [0])
                    cell[0] = int(entry_doc["ctx"])
                    segment.entries[(constraint, subspace)] = FeedEntry(
                        constraint,
                        subspace,
                        cell,
                        int(entry_doc["sky"]),
                        int(entry_doc["tid"]),
                    )
                    self._by_constraint.setdefault(constraint, set()).add(
                        (segment.key, subspace)
                    )
                self._segments[segment.key] = segment
        return True

    def load_sidecar(self, path: str, engine) -> bool:
        """Restore from ``path`` when its stamp matches ``engine``'s
        live version; stale/missing/corrupt sidecars report False (the
        caller rebuilds)."""
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return False
        return self.restore_doc(doc, engine_version(engine))

    def rebuild(self, engine) -> None:
        """Recompute standings from the live engine (recovery path when
        no matching sidecar exists): enumerate every candidate pair of
        every live tuple, answer them in one planner batch, keep the
        non-empty ones.  Equal to the incrementally maintained store —
        entries exist exactly while their context is non-empty."""
        with self._lock:
            self._segments.clear()
            self._by_constraint.clear()
            self._ctx.clear()
            self._key_cache.clear()
            self._canon.clear()
            self._pending_retractions = []
            self._pending_unknown = []
            table = engine.table
            pairs: Set[Pair] = set()
            for i in range(len(table)):
                record = table[i]
                for constraint in satisfied_constraints(record, self._bound_cap):
                    for subspace in self._subspaces:
                        pairs.add((constraint, subspace))
            self.applied_arrivals = engine.arrivals
            if not pairs:
                return
            ordered = sorted(
                pairs, key=lambda p: (repr(p[0].values), p[1])
            )
            results = engine.query().batch(ordered)
            for result in results:
                if result.context_size <= 0:
                    continue
                key = self.segment_key(result.constraint, result.subspace)
                segment = self._segment(key)
                tid = (
                    max(r.tid for r in result.skyline)
                    if result.skyline
                    else -1
                )
                constraint = self._canon.setdefault(
                    result.constraint, result.constraint
                )
                cell = self._ctx.setdefault(constraint, [0])
                cell[0] = result.context_size
                segment.entries[(constraint, result.subspace)] = FeedEntry(
                    constraint,
                    result.subspace,
                    cell,
                    result.skyline_size,
                    tid,
                )
                self._by_constraint.setdefault(constraint, set()).add(
                    (key, result.subspace)
                )
            for segment in self._segments.values():
                self._enforce_cap(segment)
                self._bump(segment)
