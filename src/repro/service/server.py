"""Asyncio streaming front-end: bounded queue, micro-batches, drain.

:class:`StreamServer` wraps any
:class:`~repro.core.engine_protocol.Engine` — in-proc, sharded,
windowed, aggregate, or any composition built by
:func:`repro.api.open_engine` — behind an asyncio ingest pipeline:

* **bounded ingest queue** — ``await ingest(row)`` blocks once
  ``queue_limit`` rows are waiting, so fast producers feel backpressure
  instead of ballooning memory;
* **adaptive micro-batching** — the consumer coalesces whatever is
  queued (up to ``batch_max``) into one ``observe_many`` call, waiting
  at most ``batch_window`` seconds for stragglers: under load batches
  fill instantly and ingestion runs at columnar batch speed, at low
  rates the window bounds per-row latency;
* **fact subscriptions** — any number of consumers iterate
  ``async for event in server.subscribe()`` to receive each arrival's
  reportable facts as they are discovered;
* **checkpointing** — with ``checkpoint_path`` set, a snapshot
  (:func:`repro.extensions.snapshot.save_engine`, written atomically via
  a temp file) is taken every ``checkpoint_interval`` seconds and once
  more on shutdown;
* **graceful drain** — ``stop()`` (default ``drain=True``) lets every
  queued row be discovered, flushes subscribers, checkpoints, and only
  then parks the consumer;
* an optional **NDJSON-over-TCP listener** (:meth:`serve_tcp`): one JSON
  object per line — a bare row (or ``{"op": "ingest", "row": …}``)
  answers ``{"tid": …, "facts": […]}``; ``delete`` / ``stats`` /
  ``ping`` / ``shutdown`` ops drive the service remotely (the CLI
  ``serve`` / ``ingest`` commands speak this protocol).

The engine itself stays single-threaded: all engine calls are funnelled
through one executor job at a time under an asyncio lock (discovery
order — and therefore output — is exactly the enqueue order).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence

from ..core.facts import FactSet, SituationalFact
from ..core.prominence import select_reportable
from ..core.record import Record
from ..metrics.service import ServiceStats
from .feeds import FeedStore, engine_version

_STOP = object()


@dataclass
class FactEvent:
    """One processed arrival, as delivered to subscribers.

    ``facts`` is the *reportable* selection (the engine config's
    ``τ``/top-k policy); ``factset`` is the arrival's full ``S_t``
    when available (the feed tier folds that in — reporting filters
    would starve it).
    """

    record: Record
    facts: List[SituationalFact] = field(default_factory=list)
    factset: Optional[FactSet] = None

    @property
    def tid(self) -> int:
        return self.record.tid


class Subscription:
    """Async iterator over :class:`FactEvent`; obtained from
    :meth:`StreamServer.subscribe`, detached by :meth:`close` (or
    automatically when the server stops).

    ``max_pending`` bounds the delivery buffer: a subscriber consuming
    slower than the ingest rate loses the *oldest* undelivered events
    (counted in :attr:`dropped`) instead of growing memory without
    limit — the ingest side's ``queue_limit`` backpressure would
    otherwise be defeated by one stalled consumer.
    """

    def __init__(
        self, server: "StreamServer", only_facts: bool, max_pending: int
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self._server = server
        self._only_facts = only_facts
        self._max_pending = max_pending
        self._queue: asyncio.Queue = asyncio.Queue()
        self._closed = False
        #: Events dropped because the subscriber fell too far behind.
        self.dropped = 0

    def _publish(self, event: FactEvent) -> None:
        if self._closed:
            return
        if self._only_facts and not event.facts:
            return
        while self._queue.qsize() >= self._max_pending:
            try:
                self._queue.get_nowait()
                self.dropped += 1
            except asyncio.QueueEmpty:  # pragma: no cover - racy guard
                break
        self._queue.put_nowait(event)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._server._subscriptions.discard(self)
            self._queue.put_nowait(_STOP)

    def __aiter__(self) -> "Subscription":
        return self

    async def __anext__(self) -> FactEvent:
        event = await self._queue.get()
        if event is _STOP:
            raise StopAsyncIteration
        return event


class StreamServer:
    """Async micro-batching ingestion front-end over a discovery engine.

    Parameters
    ----------
    engine:
        Any :class:`~repro.core.engine_protocol.Engine` (e.g. from
        :func:`repro.api.open_engine`): the server drives it through
        ``facts_for_many`` / ``delete`` and validates rows against its
        ``schema`` (facts are rendered over ``discovery_schema``, which
        differs for aggregate engines).
    queue_limit:
        Ingest-queue bound; ``ingest`` awaits (backpressure) when full.
    batch_max:
        Micro-batch size cap per ``facts_for_many`` call.
    batch_window:
        Seconds to wait for additional rows before running a partial
        batch (latency bound at low ingest rates).
    checkpoint_path / checkpoint_interval:
        Periodic engine snapshots (both must be set to activate);
        defaults to the engine spec's
        :class:`~repro.api.spec.CheckpointPolicy` when one is set.
    journal_dir / journal_fsync / journal_segment_bytes:
        Write-ahead journal of accepted ops
        (:mod:`repro.service.journal`); defaults come from the spec's
        checkpoint policy.  With a journal active, every ingest/delete
        is framed and appended *before* its event is acknowledged, so a
        killed server recovers exactly (snapshot + journal suffix).
    dead_letter_path:
        NDJSON file receiving quarantined poison rows — rows that crash
        discovery are retried individually and, still failing, recorded
        here with their error context instead of aborting the batch.
    conn_timeout:
        Per-connection read timeout (seconds) on the TCP front-end; an
        idle or wedged client is disconnected instead of holding its
        handler forever.  ``None`` disables.
    """

    def __init__(
        self,
        engine,
        *,
        queue_limit: int = 1024,
        batch_max: int = 256,
        batch_window: float = 0.002,
        checkpoint_path: Optional[str] = None,
        checkpoint_interval: Optional[float] = None,
        journal_dir: Optional[str] = None,
        journal_fsync: Optional[str] = None,
        journal_segment_bytes: Optional[int] = None,
        dead_letter_path: Optional[str] = None,
        conn_timeout: Optional[float] = None,
        stats: Optional[ServiceStats] = None,
        feeds: Optional[FeedStore] = None,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if conn_timeout is not None and conn_timeout <= 0:
            raise ValueError("conn_timeout must be > 0 seconds")
        self.engine = engine
        # The engine spec's checkpoint policy is the default.
        try:
            policy = engine.spec.checkpoint
        except (AttributeError, NotImplementedError):
            policy = None
        if checkpoint_path is None and policy is not None:
            checkpoint_path = policy.path
            if checkpoint_interval is None:
                checkpoint_interval = policy.interval
        if journal_dir is None and policy is not None:
            journal_dir = policy.journal_dir
        if journal_fsync is None:
            journal_fsync = policy.journal_fsync if policy else "batch"
        if journal_segment_bytes is None:
            journal_segment_bytes = (
                policy.journal_segment_bytes if policy else 16 * 1024 * 1024
            )
        self.queue_limit = queue_limit
        self.batch_max = batch_max
        self.batch_window = batch_window
        self.checkpoint_path = checkpoint_path
        self.checkpoint_interval = checkpoint_interval
        self.journal_dir = journal_dir
        self.journal_fsync = journal_fsync
        self.journal_segment_bytes = journal_segment_bytes
        self.dead_letter_path = dead_letter_path
        self.conn_timeout = conn_timeout
        # The read fan-out tier: explicit FeedStore, or auto-built when
        # the engine spec carries a feeds section.
        if feeds is None:
            try:
                feed_spec = engine.spec.feeds
            except (AttributeError, NotImplementedError):
                feed_spec = None
            if feed_spec is not None:
                feeds = FeedStore.for_engine(engine, feed_spec)
        self.feeds = feeds
        if self.feeds is not None:
            # Window evictions / aggregate retractions reach the feed
            # repair pass through the middleware retraction hooks.
            self.feeds.attach(engine)
        self._feed_listeners: List = []
        #: Live :class:`~repro.service.journal.JournalWriter` while
        #: running (``None`` without ``journal_dir``).
        self.journal = None
        self.stats = stats or ServiceStats()
        self._queue: Optional[asyncio.Queue] = None
        self._consumer: Optional[asyncio.Task] = None
        self._checkpointer: Optional[asyncio.Task] = None
        self._stop_task: Optional[asyncio.Task] = None
        self._engine_lock: Optional[asyncio.Lock] = None
        self._subscriptions: set = set()
        self._tcp_servers: List[asyncio.AbstractServer] = []
        self._stopped = asyncio.Event()
        self._running = False
        #: Last engine-side processing failure (surfaced in stats; rows
        #: of a failed batch are dropped, waiting callers see the
        #: exception).
        self.last_error: Optional[Exception] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spin up the consumer (and the checkpointer, if configured)."""
        if self._running:
            raise RuntimeError("StreamServer already started")
        if self.journal_dir:
            from .journal import JournalWriter

            # Resumes sequence numbering past any existing segments
            # (truncating a torn tail a previous crash left behind).
            self.journal = JournalWriter(
                self.journal_dir,
                fsync=self.journal_fsync,
                segment_max_bytes=self.journal_segment_bytes,
            )
        if self.feeds is not None and len(self.engine) and not len(self.feeds):
            # Recovered/pre-loaded engine with empty feeds: the sidecar
            # restores them iff its stamp matches the live engine
            # version; anything else (stale, missing, corrupt) rebuilds
            # from the engine in one planner batch.
            restored = False
            if self.checkpoint_path:
                restored = self.feeds.load_sidecar(
                    self.checkpoint_path + ".feeds", self.engine
                )
            if not restored:
                self.feeds.rebuild(self.engine)
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._engine_lock = asyncio.Lock()
        self._stopped.clear()
        self._running = True
        self._consumer = asyncio.create_task(self._run())
        if self.checkpoint_path and self.checkpoint_interval:
            self._checkpointer = asyncio.create_task(self._checkpoint_loop())

    async def stop(self, drain: bool = True) -> None:
        """Shut down; with ``drain`` (default) every queued row is
        processed and a final checkpoint is written first."""
        if not self._running:
            return
        self._running = False
        if drain:
            await self._queue.join()
        if self._checkpointer is not None:
            self._checkpointer.cancel()
            try:
                await self._checkpointer
            except asyncio.CancelledError:
                pass
            self._checkpointer = None
        await self._queue.put(_STOP)
        await self._consumer
        self._consumer = None
        if drain and self.checkpoint_path:
            await self._checkpoint()
        if self.journal is not None:
            self.journal.close()
            self.journal = None
        for sub in list(self._subscriptions):
            sub.close()
        for server in self._tcp_servers:
            server.close()
            await server.wait_closed()
        self._tcp_servers.clear()
        self._stopped.set()

    async def drain(self) -> None:
        """Wait until every row enqueued so far has been discovered."""
        await self._queue.join()

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` completes (e.g. a TCP ``shutdown``)."""
        await self._stopped.wait()

    # ------------------------------------------------------------------
    # Ingestion API
    # ------------------------------------------------------------------
    async def ingest(self, row: Mapping[str, object]) -> None:
        """Enqueue one row (awaits under backpressure).  Raises
        :class:`~repro.core.schema.SchemaError` for rows that do not
        match the engine schema — validation happens here so a bad row
        cannot poison a whole micro-batch later."""
        self._check_running()
        self.engine.schema.project_row(row)
        await self._queue.put(("row", row, None))
        self.stats.note_enqueue(self._queue.qsize())

    async def ingest_many(self, rows: Sequence[Mapping[str, object]]) -> None:
        for row in rows:
            await self.ingest(row)

    async def ingest_wait(self, row: Mapping[str, object]) -> FactEvent:
        """Enqueue one row and await its discovery result."""
        self._check_running()
        self.engine.schema.project_row(row)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put(("row", row, future))
        self.stats.note_enqueue(self._queue.qsize())
        return await future

    async def delete(self, tid: int) -> None:
        """Enqueue a deletion (ordered with the surrounding arrivals)."""
        self._check_running()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put(("delete", tid, future))
        await future

    def subscribe(
        self, only_facts: bool = True, max_pending: int = 65536
    ) -> Subscription:
        """Register a fact-stream consumer (``only_facts`` skips
        arrivals whose reportable set is empty; ``max_pending`` bounds
        the per-subscriber buffer, dropping oldest on overflow)."""
        subscription = Subscription(self, only_facts, max_pending)
        self._subscriptions.add(subscription)
        return subscription

    def stats_snapshot(self) -> dict:
        """Current service metrics (queue/batch/shard/fault counters)."""
        utilization = getattr(self.engine, "utilization", None)
        if callable(utilization):
            self.stats.note_shard_utilization(utilization())
        fault_counters = getattr(self.engine, "fault_counters", None)
        if callable(fault_counters):
            tallies = fault_counters()
            self.stats.worker_restarts = tallies["worker_restarts"]
            self.stats.chunks_retried = tallies["chunks_retried"]
            self.stats.replica_failovers = tallies.get(
                "replica_failovers", 0
            )
            self.stats.degraded = tallies["degraded"]
        shard_stats = getattr(self.engine, "shard_stats", None)
        if callable(shard_stats):
            # Per-shard breakdown (not just the aggregate counters) so
            # the TCP `stats` op shows operators the same load picture
            # the placement model prices.
            self.stats.note_shard_details(shard_stats())
        cache_counters = getattr(self.engine, "query_cache_counters", None)
        if callable(cache_counters):
            cache = cache_counters()
            self.stats.query_cache_hits = cache["hits"]
            self.stats.query_cache_misses = cache["misses"]
            self.stats.query_cache_evictions = cache["evictions"]
        if self.feeds is not None:
            feed_stats = self.feeds.stats()
            # Feed lag behind engine arrivals: events discovered but
            # not yet folded into feed state (0 when folding is
            # synchronous with the batch, as here).
            feed_stats["lag"] = max(
                0,
                getattr(self.engine, "arrivals", 0)
                - feed_stats["applied_arrivals"],
            )
            self.stats.note_feeds(feed_stats)
        snap = self.stats.snapshot()
        snap["table_rows"] = len(self.engine.table)
        snap["queue_depth"] = self._queue.qsize() if self._queue else 0
        if self.journal is not None:
            snap["journal_seq"] = self.journal.last_seq
        if self.last_error is not None:
            snap["last_error"] = str(self.last_error)
        return snap

    def _check_running(self) -> None:
        if not self._running:
            raise RuntimeError("StreamServer is not running")

    # ------------------------------------------------------------------
    # Consumer: adaptive micro-batching
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        queue = self._queue
        loop = asyncio.get_running_loop()
        while True:
            item = await queue.get()
            if item is _STOP:
                queue.task_done()
                return
            if item[0] == "delete":
                await self._apply_delete(item)
                continue
            batch = [item]
            carry = None
            deadline = loop.time() + self.batch_window
            while len(batch) < self.batch_max:
                try:
                    nxt = queue.get_nowait()
                except asyncio.QueueEmpty:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        nxt = await asyncio.wait_for(queue.get(), remaining)
                    except asyncio.TimeoutError:
                        break
                if nxt is _STOP or nxt[0] != "row":
                    # A deletion (or shutdown) fences the batch: rows
                    # before it must be discovered first.
                    carry = nxt
                    break
                batch.append(nxt)
            await self._apply_batch(batch)
            if carry is _STOP:
                queue.task_done()
                return
            if carry is not None:
                await self._apply_delete(carry)

    async def _apply_batch(self, batch) -> None:
        engine = self.engine
        loop = asyncio.get_running_loop()
        rows = [row for _, row, _ in batch]
        config = engine.config

        def discover(subset):
            # facts_for_many (not observe_many): each FactSet carries
            # the record it was discovered for, so the server never
            # reaches into the table — windowed/aggregate engines, whose
            # tables shift under eviction and group retraction, stay
            # servable.  Reportable-fact selection (materialisation +
            # ranking) runs here too, off the event loop.
            return [
                (factset, select_reportable(factset, config))
                for factset in engine.facts_for_many(subset)
            ]

        async with self._engine_lock:
            before = getattr(engine, "arrivals", None)
            try:
                results = await loop.run_in_executor(None, discover, rows)
                outcomes = [("ok", result) for result in results]
            except Exception as exc:
                # Salvage instead of aborting: quarantine the poison
                # row(s) and keep every healthy one (killing the loop
                # here would also deadlock later drain()s).
                self.last_error = exc
                outcomes = await self._salvage_batch(
                    loop, discover, rows, before
                )
            changed = None
            if self.feeds is not None:
                # Still under the engine lock (repair queries the
                # engine), still off the event loop.
                changed = await loop.run_in_executor(
                    None, self._feeds_fold, outcomes
                )
        if changed:
            self._publish_feed_changes(changed)
        emitted = 0
        accepted = 0
        for (_, row, future), outcome in zip(batch, outcomes):
            kind, result = outcome
            if kind == "quarantined":
                self._dead_letter(row, result)
                if future is not None and not future.done():
                    future.set_exception(result)
                self._queue.task_done()
                continue
            accepted += 1
            if self.journal is not None:
                self.journal.append_ingest(
                    row if isinstance(row, Mapping) else dict(row)
                )
        if self.journal is not None and accepted:
            # One durability point per micro-batch (group commit): an
            # event is only acknowledged once its op is journaled.
            self.journal.commit()
        for (_, row, future), outcome in zip(batch, outcomes):
            kind, result = outcome
            if kind == "quarantined":
                continue
            if kind == "lost":
                # Applied to the engine before a later row failed, but
                # its facts are unrecoverable: acknowledge with an
                # empty fact set (the op is journaled; state is exact).
                event = FactEvent(result, [])
            else:
                factset, facts = result
                event = FactEvent(factset.record, facts, factset)
                emitted += len(facts)
            if future is not None and not future.done():
                future.set_result(event)
            for subscription in list(self._subscriptions):
                subscription._publish(event)
            self._queue.task_done()
        self.stats.note_batch(accepted, emitted)

    async def _salvage_batch(self, loop, discover, rows, before):
        """Recover from a mid-batch discovery failure.

        The engine's monotone ``arrivals`` counter (read into ``before``
        just before the failed call) tells exactly how many rows of the
        batch were applied before the failure — their states are in,
        only their fact sets are lost.  The remaining rows are retried
        one at a time, so one poison row costs itself — not its
        batch-mates.  Returns one outcome per row: ``("ok", (factset,
        facts))``, ``("lost", record)`` for applied rows with lost
        facts, or ``("quarantined", error)``.
        """
        engine = self.engine
        applied = 0
        if before is not None:
            applied = max(
                0, min(getattr(engine, "arrivals", before) - before, len(rows))
            )
        outcomes = []
        for index, row in enumerate(rows):
            if index < applied:
                tid = before + index if before is not None else -1
                outcomes.append(("lost", self._record_for(row, tid)))
                continue
            pre = getattr(engine, "arrivals", None)
            try:
                (result,) = await loop.run_in_executor(
                    None, discover, [row]
                )
            except Exception as row_exc:
                if (
                    pre is not None
                    and getattr(engine, "arrivals", pre) > pre
                ):
                    # Applied but its facts were lost mid-flight.
                    outcomes.append(("lost", self._record_for(row, pre)))
                else:
                    self.stats.rows_quarantined += 1
                    outcomes.append(("quarantined", row_exc))
            else:
                outcomes.append(("ok", result))
        return outcomes

    def _record_for(self, row, tid: int) -> Record:
        """A best-effort :class:`Record` for an applied row whose fact
        set was lost (only its identity reaches subscribers)."""
        try:
            made = self.engine.table.make_record(row)
            return Record(tid, made.dims, made.values, made.raw)
        except Exception:  # pragma: no cover - schema-less duck engine
            return Record(tid, (), (), ())

    def _dead_letter(self, row, error: Exception) -> None:
        """Append one quarantined row to the dead-letter NDJSON file
        (best-effort: quarantine must never take the consumer down)."""
        if not self.dead_letter_path:
            return
        entry = {
            "time": time.time(),
            "error": str(error),
            "error_type": type(error).__name__,
            "row": row if isinstance(row, Mapping) else repr(row),
        }
        try:
            with open(self.dead_letter_path, "a") as fh:
                fh.write(json.dumps(entry, default=repr) + "\n")
                fh.flush()
        except OSError:  # pragma: no cover - disk trouble
            pass

    async def _apply_delete(self, item) -> None:
        _, tid, future = item
        loop = asyncio.get_running_loop()
        changed = None
        try:
            async with self._engine_lock:
                removed = await loop.run_in_executor(
                    None, self.engine.delete, tid
                )
                if self.feeds is not None:

                    def fold():
                        self.feeds.note_retracted(removed)
                        return self.feeds.repair(self.engine)

                    changed = await loop.run_in_executor(None, fold)
        except Exception as exc:
            if future is not None and not future.done():
                future.set_exception(exc)
        else:
            if self.journal is not None:
                self.journal.append_delete(tid)
                self.journal.commit()
            self.stats.deletes += 1
            if changed:
                self._publish_feed_changes(changed)
            if future is not None and not future.done():
                future.set_result(removed)
        finally:
            self._queue.task_done()

    # ------------------------------------------------------------------
    # Feed tier
    # ------------------------------------------------------------------
    def _feeds_fold(self, outcomes) -> set:
        """Fold one micro-batch into the feed store (runs in the engine
        executor, under the engine lock): arrivals first — they are
        pure event-data updates — then one repair pass for any window
        evictions the batch triggered, priced against the post-batch
        engine state (the refresh overwrites with exact values, so the
        ordering cannot double-count)."""
        feeds = self.feeds
        changed = set()
        for kind, result in outcomes:
            if kind == "ok":
                factset, _ = result
                changed |= feeds.apply_event(factset.record, factset)
            elif kind == "lost":
                # Applied row whose S_t was lost mid-salvage: its
                # candidate pairs are refreshed from the engine.
                changed |= feeds.apply_event(result, None)
        changed |= feeds.repair(self.engine)
        return changed

    def add_feed_listener(self, listener) -> None:
        """Register ``listener(changed_segment_keys)``; called on the
        event loop after each batch/delete that changed feed state
        (the gateway's change signal)."""
        self._feed_listeners.append(listener)

    def _publish_feed_changes(self, changed: set) -> None:
        for listener in list(self._feed_listeners):
            listener(changed)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    async def _checkpoint_loop(self) -> None:
        while True:
            await asyncio.sleep(self.checkpoint_interval)
            await self._checkpoint()

    async def _checkpoint(self) -> None:
        from ..extensions.snapshot import save_engine

        loop = asyncio.get_running_loop()
        path = self.checkpoint_path

        def write() -> Optional[int]:
            # save_engine writes crash-consistently (temp + fsync +
            # atomic replace + directory fsync): an interruption at any
            # byte leaves the previous checkpoint untouched.
            seq = self.journal.last_seq if self.journal is not None else None
            save_engine(self.engine, path, journal_seq=seq)
            if self.feeds is not None:
                # Sidecar stamped with the engine version the feeds
                # describe; a mismatch on restore triggers a rebuild.
                self.feeds.save_sidecar(
                    path + ".feeds", engine_version(self.engine)
                )
            return seq

        try:
            async with self._engine_lock:
                seq = await loop.run_in_executor(None, write)
        except Exception as exc:
            # A failed checkpoint must not kill the service: the
            # previous one is intact and the journal keeps growing.
            self.last_error = exc
            return
        if self.journal is not None and seq is not None:
            # Anchor segment rotation: ops <= seq are now durable in
            # the snapshot, their segments can be pruned.
            self.journal.checkpoint(seq)
        self.stats.checkpoints += 1

    async def _run_query(self, message: dict) -> dict:
        """Answer one forward-query op off the event loop.

        Payload: ``{"op": "query", "q": "<constraint | measures>",
        "kind": "skyline" | "skyband" | "prominence", "k": int}``.
        ``skyline``/``skyband`` reply with live tids (ascending arrival
        order for kernel-backed engines); ``prominence`` replies with
        the score and context size.  Runs under the engine lock so a
        query never races a micro-batch; cached engines
        (``spec.query_cache``) answer repeats without touching rows.
        """
        from ..query.parser import parse_query

        kind = message.get("kind", "skyline")
        text = message["q"]
        loop = asyncio.get_running_loop()

        def run() -> dict:
            queries = self.engine.query()
            constraint, subspace = parse_query(text, queries.schema)
            if kind == "skyline":
                records = queries.skyline(constraint, subspace)
                return {"tids": [record.tid for record in records]}
            if kind == "skyband":
                k = int(message.get("k", 2))
                records = queries.skyband(constraint, subspace, k)
                return {"tids": [record.tid for record in records], "k": k}
            if kind == "prominence":
                return {
                    "prominence": queries.prominence(constraint, subspace),
                    "context_size": queries.context_size(constraint),
                }
            raise ValueError(f"unknown query kind {kind!r}")

        async with self._engine_lock:
            return await loop.run_in_executor(None, run)

    # ------------------------------------------------------------------
    # NDJSON-over-TCP front-end
    # ------------------------------------------------------------------
    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Listen for NDJSON clients; returns the asyncio server (its
        first socket's ``getsockname()`` reveals an ephemeral port)."""
        self._check_running()
        server = await asyncio.start_server(self._handle_client, host, port)
        self._tcp_servers.append(server)
        return server

    async def _handle_client(self, reader, writer) -> None:
        from ..core.schema import SchemaError

        # Facts are stated over the discovery relation (differs from the
        # input schema only for aggregate engines).
        schema = getattr(
            self.engine, "discovery_schema", self.engine.schema
        )

        async def reply(payload: dict) -> None:
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()

        try:
            while True:
                if self.conn_timeout is not None:
                    try:
                        line = await asyncio.wait_for(
                            reader.readline(), self.conn_timeout
                        )
                    except asyncio.TimeoutError:
                        # Idle/wedged client: free the handler instead
                        # of holding it (and its buffers) forever.
                        break
                else:
                    line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    message = json.loads(line)
                except ValueError:
                    await reply({"error": "invalid JSON"})
                    continue
                op = message.get("op", "ingest") if isinstance(message, dict) else None
                if op == "ingest":
                    row = message.get("row", message)
                    if row is message and isinstance(row, dict):
                        # Bare-row form only: strip the routing key, but
                        # never from an explicit {"row": …} payload —
                        # the schema may legitimately have an "op"
                        # attribute there.
                        row = dict(row)
                        row.pop("op", None)
                    try:
                        event = await self.ingest_wait(row)
                    except (SchemaError, RuntimeError, TypeError) as exc:
                        # TypeError: non-mapping row (e.g. a bare int).
                        await reply({"error": str(exc)})
                        continue
                    except Exception as exc:
                        # A quarantined poison row surfaces its original
                        # discovery error here; the connection (and the
                        # batch-mates) live on.
                        await reply({"error": str(exc), "quarantined": True})
                        continue
                    await reply(
                        {
                            "tid": event.tid,
                            "facts": [
                                fact.to_json_dict(schema)
                                for fact in event.facts
                            ],
                        }
                    )
                elif op == "delete":
                    try:
                        await self.delete(int(message["tid"]))
                    except (KeyError, TypeError, ValueError, RuntimeError) as exc:
                        await reply({"error": str(exc)})
                        continue
                    await reply({"deleted": int(message["tid"])})
                elif op == "query":
                    try:
                        result = await self._run_query(message)
                    except Exception as exc:
                        await reply({"error": str(exc)})
                        continue
                    await reply(result)
                elif op == "stats":
                    await reply({"stats": self.stats_snapshot()})
                elif op == "health":
                    health = {
                        "ok": bool(self._running),
                        "running": bool(self._running),
                        "table_rows": len(self.engine.table),
                        "queue_depth": (
                            self._queue.qsize() if self._queue else 0
                        ),
                        "degraded": bool(
                            getattr(self.engine, "degraded", False)
                        ),
                    }
                    if self.last_error is not None:
                        health["last_error"] = str(self.last_error)
                    await reply(health)
                elif op == "ping":
                    await reply({"ok": True})
                elif op == "shutdown":
                    await reply({"stopping": True})
                    # Pin the task: the loop only holds a weak ref and
                    # an unreferenced stop() could be collected
                    # mid-drain, leaving wait_stopped() hanging.
                    self._stop_task = asyncio.create_task(self.stop())
                    break
                else:
                    await reply({"error": f"unknown op {op!r}"})
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):  # pragma: no cover
                pass
