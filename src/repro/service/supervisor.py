"""Supervision of process-mode shard workers.

A SIGKILLed worker process used to deadlock the router forever on a
pipe ``recv`` that could never complete.  :class:`SupervisedWorker`
wraps the worker process + pipe with the full crash loop:

* **detection** — every pipe round-trip polls with a deadline; a dead
  child (pipe EOF, ``BrokenPipeError``, exitcode) or a hung one (no
  reply within ``op_timeout``) raises :class:`WorkerCrashed` instead of
  blocking;
* **restart** — exponential backoff with jitter, then a fresh process;
* **rebuild** — the discovery state of a shard is a deterministic
  function of the arrival/deletion prefix, so the replacement simply
  re-observes the router's *committed* op log (rows and deletions in
  original order), then has the submitted-but-unmerged chunks re-sent;
* **retry** — the op the crash interrupted is retried exactly once
  (the rebuild erased any partial application, so the resend cannot
  double-apply); a second crash on the same op means the op itself is
  the trigger, and the worker gives up rather than loop;
* **circuit breaker** — after ``max_restarts`` restarts the worker
  raises :class:`WorkerGaveUp`; the router's answer is to *degrade* the
  pool to in-router serial execution (see
  :meth:`~repro.service.sharding.ShardedDiscoverer`) instead of dying.

The wrapper exposes the same surface as the plain worker classes in
:mod:`repro.service.sharding` (``submit_rows`` / ``result`` /
``delete`` / ``counters`` / ``skyline`` / ``skyband`` / ``top_k`` /
``close`` / ``busy_seconds``), so the router's pipelining logic stays
mode-blind — the PR-8 query push-down ops ride the same
crash-detect / restart / replay / retry machinery as ingest.

The remote tier reuses the vocabulary of this module rather than the
wrapper itself: a :class:`~repro.service.cluster.ReplicaSet` raises the
same :class:`WorkerCrashed` / :class:`WorkerGaveUp` signals (failover
replaces restart — a surviving replica already holds the state — and
only a fully lost set gives up into the router's degrade path), and
replays joining replicas from the same committed op log in
:data:`_REPLAY_SLICE` batches.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Mapping, Optional, Sequence, Tuple

#: One committed router op: ``("rows", [row, ...])`` or ``("delete", tid)``.
OplogEntry = Tuple[str, object]

#: Ops per ``replay`` pipe message (bounds message size on long logs).
_REPLAY_SLICE = 128

#: Poll granularity while waiting on a reply (seconds).
_POLL_STEP = 0.05


class WorkerCrashed(RuntimeError):
    """A shard worker died or hung mid-op (recoverable by restart)."""

    def __init__(self, index: int, reason: str) -> None:
        super().__init__(f"shard worker {index} crashed: {reason}")
        self.index = index
        self.reason = reason


class WorkerGaveUp(WorkerCrashed):
    """The circuit breaker tripped — the router should degrade."""


@dataclass(frozen=True)
class SupervisorPolicy:
    """Restart behaviour knobs (derived from
    :class:`~repro.api.spec.ShardingSpec`)."""

    op_timeout: float = 60.0
    max_restarts: int = 3
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    jitter: float = 0.25

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before restart ``attempt`` (1-based): exponential,
        capped, with up to ``jitter`` relative noise so a pool of
        crashed workers does not restart in lockstep."""
        base = min(self.backoff_max, self.backoff_base * (2.0 ** (attempt - 1)))
        return base * (1.0 + self.jitter * rng.random())


class SupervisedWorker:
    """One supervised shard-worker process (see module docstring).

    Parameters
    ----------
    index:
        Worker position in the pool (fault scoping, diagnostics).
    spec:
        Pickle-light worker description passed to ``target`` — the
        *base* spec; active faults are attached on the first spawn only
        (a restarted worker starts fault-free, as a freshly rebooted
        real one would).
    target:
        Worker entry point, ``target(conn, spec)``.
    ctx:
        ``multiprocessing`` context to spawn under.
    oplog:
        Live reference to the router's committed op list; replayed into
        every replacement process before pending chunks are re-sent.
    policy:
        Timeouts / restart budget.
    """

    def __init__(
        self,
        index: int,
        spec: Mapping[str, object],
        target: Callable,
        ctx,
        oplog: Sequence[OplogEntry],
        policy: SupervisorPolicy,
    ) -> None:
        from . import faults

        self.index = index
        self._spec = dict(spec)
        self._target = target
        self._ctx = ctx
        self._oplog = oplog
        self.policy = policy
        self.busy_seconds = 0.0
        #: Restarts performed (counted into ``ServiceStats``).
        self.restarts = 0
        #: Chunks re-sent to a replacement worker after a crash.
        self.chunks_retried = 0
        #: Submitted ``rows`` payloads whose replies are not yet
        #: delivered — the exact set a replacement must be re-sent.
        self._pending: Deque[List[Mapping[str, object]]] = deque()
        self._rng = random.Random(0x5EED ^ index)
        self._process = None
        self._conn = None
        self._spawn(dict(self._spec, faults=faults.active_dicts()))

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, spec: Mapping[str, object]) -> None:
        self._conn, child = self._ctx.Pipe()
        self._process = self._ctx.Process(
            target=self._target, args=(child, spec), daemon=True
        )
        self._process.start()
        child.close()

    def _abandon(self) -> None:
        """Dispose of a crashed/hung process and its pipe, escalating
        terminate → kill so a wedged child cannot block the router."""
        process, conn = self._process, self._conn
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=2)
            if process.is_alive():  # pragma: no cover - stubborn child
                kill = getattr(process, "kill", process.terminate)
                kill()
                process.join(timeout=2)
        if conn is not None:
            try:
                while conn.poll(0):
                    conn.recv()
            except (EOFError, OSError):
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._process = None
        self._conn = None

    def _restart(self, crash: WorkerCrashed) -> None:
        """Backoff, respawn, rebuild state from the committed oplog,
        re-send pending chunks.  Raises :class:`WorkerGaveUp` once the
        restart budget is spent."""
        self.restarts += 1
        if self.restarts > self.policy.max_restarts:
            raise WorkerGaveUp(
                self.index,
                f"circuit breaker after {self.restarts - 1} restarts "
                f"(last crash: {crash.reason})",
            )
        self._abandon()
        time.sleep(self.policy.backoff(self.restarts, self._rng))
        self._spawn(self._spec)  # restarted workers carry no faults
        self._replay()

    def _replay(self) -> None:
        """Deterministically rebuild the replacement's shard state: the
        committed prefix first (acked slice-wise), then the pending
        chunks whose normal replies the router still awaits."""
        ops = list(self._oplog)
        for start in range(0, len(ops), _REPLAY_SLICE):
            self._conn.send(("replay", ops[start : start + _REPLAY_SLICE]))
            self._recv(liveness_only=True)
        for payload in self._pending:
            self._conn.send(("rows", payload))
        if self._pending:
            self.chunks_retried += len(self._pending)

    # ------------------------------------------------------------------
    # Pipe round-trips with crash detection
    # ------------------------------------------------------------------
    def _recv(self, liveness_only: bool = False):
        """Receive one reply, or raise :class:`WorkerCrashed`.

        Polls in small steps so a dead child is noticed immediately
        (pipe EOF / exitcode) and a silent one is abandoned at
        ``op_timeout`` (unless ``liveness_only`` — replay of a long
        oplog legitimately exceeds a per-op budget, so there only death
        is a failure)."""
        deadline = time.monotonic() + self.policy.op_timeout
        while True:
            try:
                if self._conn.poll(_POLL_STEP):
                    return self._conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerCrashed(
                    self.index,
                    f"pipe closed mid-reply ({type(exc).__name__}; "
                    f"exitcode={self._process.exitcode})",
                ) from None
            if not self._process.is_alive():
                # Drain any reply that raced the death notice.
                try:
                    if self._conn.poll(0):
                        return self._conn.recv()
                except (EOFError, OSError):
                    pass
                raise WorkerCrashed(
                    self.index,
                    f"process died (exitcode={self._process.exitcode})",
                )
            if not liveness_only and time.monotonic() >= deadline:
                self._abandon()
                raise WorkerCrashed(
                    self.index,
                    f"no reply within op_timeout={self.policy.op_timeout}s "
                    f"(worker abandoned)",
                )

    def _send(self, message) -> None:
        """Best-effort send; a send on a dead pipe is deferred to the
        next ``_recv``, which detects and recovers the crash."""
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError, ValueError):
            pass

    # ------------------------------------------------------------------
    # Worker surface (mode-blind, mirrors _ProcessWorker)
    # ------------------------------------------------------------------
    def submit_rows(self, rows: List[Mapping[str, object]]) -> None:
        self._pending.append(rows)
        self._send(("rows", rows))

    def result(self):
        attempts = 0
        while True:
            try:
                reply = self._recv()
            except WorkerCrashed as crash:
                attempts += 1
                if attempts > 1:
                    # The re-sent chunk crashed the rebuilt worker too:
                    # the op itself is the trigger; stop retrying.
                    raise WorkerGaveUp(
                        self.index,
                        f"chunk crashed the worker twice ({crash.reason})",
                    )
                self._restart(crash)
                continue
            self._pending.popleft()
            self.busy_seconds += reply[4]
            return reply

    def _sync_op(self, op: str, payload):
        """Send one op and await its reply, restarting through crashes;
        the rebuild erases partial application, so one retry is safe."""
        attempts = 0
        while True:
            self._send((op, payload))
            try:
                return self._recv()
            except WorkerCrashed as crash:
                attempts += 1
                if attempts > 1:
                    raise WorkerGaveUp(
                        self.index,
                        f"op {op!r} crashed the worker twice "
                        f"({crash.reason})",
                    )
                self._restart(crash)

    def delete(self, tid: int) -> None:
        self._sync_op("delete", int(tid))

    def counters(self):
        return self._sync_op("counters", None)

    def skyline(self, values, subspace: int):
        return self._sync_op("skyline", (values, subspace))

    def skyband(self, values, subspace: int, k: int, limit=None):
        return self._sync_op("skyband", (values, subspace, k, limit))

    def top_k(self, values, subspace: int, limit):
        return self._sync_op("top_k", (values, subspace, limit))

    def pending_ops(self) -> List[List[Mapping[str, object]]]:
        """Submitted-unmerged chunks, oldest first — what a degraded
        replacement must still answer for."""
        return list(self._pending)

    def close(self) -> None:
        """Shut down without ever hanging: polite stop with a short
        grace period (draining replies so a blocked child can make
        progress), then terminate → kill."""
        process, conn = self._process, self._conn
        if process is None:
            return
        try:
            conn.send(("stop", None))
        except (BrokenPipeError, OSError, ValueError):
            pass
        deadline = time.monotonic() + 2.0
        while process.is_alive() and time.monotonic() < deadline:
            # Keep the pipe drained: a child mid-reply on a full pipe
            # buffer cannot reach the stop op until someone reads.
            try:
                while conn.poll(0):
                    conn.recv()
            except (EOFError, OSError):
                break
            process.join(timeout=_POLL_STEP)
        self._abandon()
