"""Detection-latency measurement — the paper's timeliness motivation.

§I argues that "the value of a news piece diminishes rapidly after the
event takes place": facts must surface before the story goes stale.
This harness quantifies that as the *per-arrival detection latency*
distribution (p50/p90/p99/max) of each algorithm — the time between a
tuple arriving and its complete fact set being available — which the
paper's per-tuple-average plots do not expose (a tail of slow arrivals
can hide behind a good mean).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..algorithms import make_algorithm
from ..core.config import DiscoveryConfig
from ..core.schema import TableSchema


@dataclass
class LatencyProfile:
    """Per-arrival latency distribution of one algorithm (milliseconds)."""

    algorithm: str
    samples_ms: List[float]

    def percentile(self, q: float) -> float:
        """q-th percentile (0 ≤ q ≤ 100) by nearest-rank."""
        if not self.samples_ms:
            raise ValueError("no samples")
        ordered = sorted(self.samples_ms)
        rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def worst(self) -> float:
        return max(self.samples_ms)

    @property
    def mean(self) -> float:
        return sum(self.samples_ms) / len(self.samples_ms)

    def row(self) -> Dict[str, float]:
        return {
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.worst,
        }


def measure_latency(
    algorithm_name: str,
    schema: TableSchema,
    rows: Sequence[dict],
    config: Optional[DiscoveryConfig] = None,
    warmup: int = 0,
) -> LatencyProfile:
    """Stream ``rows``; record each arrival's wall-clock handling time.

    ``warmup`` arrivals are processed but not sampled (cold caches and
    store growth make the first tuples unrepresentative).
    """
    algo = make_algorithm(algorithm_name, schema, config)
    samples: List[float] = []
    for i, row in enumerate(rows):
        start = time.perf_counter()
        algo.process(row)
        elapsed_ms = 1000.0 * (time.perf_counter() - start)
        if i >= warmup:
            samples.append(elapsed_ms)
    close = getattr(algo, "close", None)
    if close:
        close()
    return LatencyProfile(algorithm_name, samples)


def latency_table(
    profiles: Sequence[LatencyProfile],
) -> str:
    """Aligned text table of latency distributions."""
    header = ["algorithm", "mean", "p50", "p90", "p99", "max"]
    rows = [header]
    for profile in profiles:
        stats = profile.row()
        rows.append(
            [profile.algorithm]
            + [f"{stats[k]:.2f}" for k in ("mean", "p50", "p90", "p99", "max")]
        )
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = ["== Detection latency per arrival (msec) =="]
    for r in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)
