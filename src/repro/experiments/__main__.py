"""Run every figure reproduction and print the tables.

Usage::

    python -m repro.experiments            # all figures, default scale
    python -m repro.experiments fig8a      # one figure
    python -m repro.experiments --scale 2  # bigger workloads
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import ALL_FIGURES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figures", nargs="*", help="figure ids (default: all)")
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args(argv)
    chosen = args.figures or list(ALL_FIGURES)
    for name in chosen:
        fn = ALL_FIGURES.get(name)
        if fn is None:
            print(f"unknown figure {name!r}; options: {sorted(ALL_FIGURES)}")
            return 2
        start = time.perf_counter()
        result = fn(scale=args.scale)
        elapsed = time.perf_counter() - start
        results = result if isinstance(result, tuple) else (result,)
        for fig in results:
            print(fig.table())
            print()
        print(f"[{name} took {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
