"""Measurement harness shared by the per-figure benchmarks.

The paper's evaluation (§VI–VII) plots per-tuple execution time, memory,
stored-tuple counts, comparison/traversal work, and prominent-fact
distributions.  This module provides the generic machinery: timed
streaming runs with checkpoints, parameter sweeps over ``n``/``d``/``m``,
and plain-text tables in the same shape as the paper's figures.

Scale note: the paper streams up to 317 K (NBA) and 7.8 M (weather)
tuples through a Java implementation.  Pure-Python throughput is two
orders of magnitude lower, so the default workloads are scaled down
(hundreds to thousands of tuples).  Every figure function takes a
``scale`` multiplier; the *relative* orderings and growth trends — which
are what the figures demonstrate — are preserved at any scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..algorithms import make_algorithm
from ..core.config import DiscoveryConfig
from ..core.schema import TableSchema


@dataclass
class Series:
    """One plotted line: a label plus (x, y) points."""

    label: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)


@dataclass
class FigureResult:
    """All series of one reproduced figure plus axis metadata."""

    title: str
    xlabel: str
    ylabel: str
    series: List[Series]

    def table(self) -> str:
        """Render as an aligned text table, one row per x value."""
        xs = self.series[0].xs if self.series else []
        header = [self.xlabel] + [s.label for s in self.series]
        rows = [header]
        for i, x in enumerate(xs):
            row = [_fmt(x)]
            for s in self.series:
                row.append(_fmt(s.ys[i]) if i < len(s.ys) else "-")
            rows.append(row)
        widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
        lines = [f"== {self.title} ==", f"   ({self.ylabel})"]
        for r in rows:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
        return "\n".join(lines)

    def final_values(self) -> Dict[str, float]:
        """Last y of every series (used by shape assertions)."""
        return {s.label: s.ys[-1] for s in self.series if s.ys}


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    return f"{int(value)}"


# ----------------------------------------------------------------------
# Timed streaming runs
# ----------------------------------------------------------------------
def timed_stream(
    algo,
    rows: Sequence[dict],
    checkpoints: Sequence[int],
) -> List[Tuple[int, float]]:
    """Stream ``rows`` through ``algo``; report the average per-tuple
    time (milliseconds) within each window ending at a checkpoint —
    the paper's "execution time per tuple vs tuple id" measurements."""
    out: List[Tuple[int, float]] = []
    prev = 0
    for checkpoint in checkpoints:
        start = time.perf_counter()
        for row in rows[prev:checkpoint]:
            algo.process(row)
        elapsed = time.perf_counter() - start
        window = checkpoint - prev
        if window > 0:
            out.append((checkpoint, 1000.0 * elapsed / window))
        prev = checkpoint
    return out


def average_per_tuple_ms(algo, rows: Sequence[dict]) -> float:
    """Average per-tuple processing time over the whole stream."""
    start = time.perf_counter()
    for row in rows:
        algo.process(row)
    return 1000.0 * (time.perf_counter() - start) / max(len(rows), 1)


def sweep_vary_n(
    algorithm_names: Sequence[str],
    schema: TableSchema,
    rows: Sequence[dict],
    checkpoints: Sequence[int],
    config: Optional[DiscoveryConfig] = None,
    make_kwargs: Optional[Callable[[str], dict]] = None,
) -> List[Series]:
    """Per-tuple time vs tuple id for each algorithm (Figs. 7a/8a/9/12a/13)."""
    series = []
    for name in algorithm_names:
        kwargs = make_kwargs(name) if make_kwargs else {}
        algo = make_algorithm(name, schema, config, **kwargs)
        s = Series(label=name)
        for checkpoint, ms in timed_stream(algo, rows, checkpoints):
            s.add(checkpoint, ms)
        close = getattr(algo, "close", None)
        if close:
            close()
        series.append(s)
    return series


def sweep_vary_param(
    algorithm_names: Sequence[str],
    param_values: Sequence[int],
    build: Callable[[int], Tuple[TableSchema, Sequence[dict]]],
    config: Optional[DiscoveryConfig] = None,
    make_kwargs: Optional[Callable[[str], dict]] = None,
) -> List[Series]:
    """Average per-tuple time vs a parameter (d or m) at fixed n
    (Figs. 7b/7c/8b/8c/12b/12c)."""
    series = {name: Series(label=name) for name in algorithm_names}
    for value in param_values:
        schema, rows = build(value)
        for name in algorithm_names:
            kwargs = make_kwargs(name) if make_kwargs else {}
            algo = make_algorithm(name, schema, config, **kwargs)
            series[name].add(value, average_per_tuple_ms(algo, rows))
            close = getattr(algo, "close", None)
            if close:
                close()
    return [series[name] for name in algorithm_names]


def counter_stream(
    algorithm_names: Sequence[str],
    schema: TableSchema,
    rows: Sequence[dict],
    checkpoints: Sequence[int],
    metric: Callable,
    config: Optional[DiscoveryConfig] = None,
) -> List[Series]:
    """Cumulative work metric vs tuple id (Figs. 10-11): ``metric(algo)``
    is sampled at every checkpoint."""
    series = []
    for name in algorithm_names:
        algo = make_algorithm(name, schema, config)
        s = Series(label=name)
        prev = 0
        for checkpoint in checkpoints:
            for row in rows[prev:checkpoint]:
                algo.process(row)
            prev = checkpoint
            s.add(checkpoint, metric(algo))
        series.append(s)
    return series
