"""One function per paper figure (§VI–VII), each returning
:class:`~repro.experiments.harness.FigureResult` objects whose text
tables mirror the plotted series.

Default workload sizes are scaled down for pure Python (see the harness
module docstring); pass ``scale > 1`` to enlarge.  The paper's parameter
defaults — ``d=5, m=7, d̂=4, m̂=m`` for §VI and ``d̂=3, m̂=3, τ`` sweeps
for §VII — are kept wherever runtime permits, and noted otherwise in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..core.config import DiscoveryConfig
from ..core.engine import FactDiscoverer
from ..core.schema import TableSchema
from ..datasets.nba import nba_rows, nba_schema
from ..datasets.weather import weather_rows, weather_schema
from .harness import (
    FigureResult,
    Series,
    counter_stream,
    sweep_vary_n,
    sweep_vary_param,
)

#: §VI-A: every experiment caps constraints at d̂ = 4 bound attributes.
PAPER_CONFIG = DiscoveryConfig(max_bound_dims=4)

FIG7_ALGOS = ("baselineseq", "baselineidx", "ccsc", "bottomup", "topdown")
FIG8_ALGOS = ("ccsc", "bottomup", "topdown", "sbottomup", "stopdown")
FIG11_ALGOS = ("bottomup", "topdown", "sbottomup", "stopdown")
FIG12_ALGOS = ("fsbottomup", "fstopdown")


def _checkpoints(n: int, windows: int = 4) -> List[int]:
    step = max(1, n // windows)
    points = list(range(step, n + 1, step))
    if points[-1] != n:
        points.append(n)
    return points


# ----------------------------------------------------------------------
# Fig. 7 — baselines + C-CSC vs BottomUp/TopDown (NBA)
# ----------------------------------------------------------------------
def figure7a(scale: float = 1.0, d: int = 4, m: int = 4) -> FigureResult:
    """Per-tuple time vs n (paper: d=5, m=7, n→50 000; scaled here)."""
    n = int(240 * scale)
    rows = nba_rows(n, d=d, m=m)
    series = sweep_vary_n(
        FIG7_ALGOS, nba_schema(d, m), rows, _checkpoints(n), PAPER_CONFIG
    )
    return FigureResult(
        f"Fig.7a  NBA, varying n (d={d}, m={m})",
        "tuple_id",
        "execution time per tuple, msec",
        series,
    )


def figure7b(scale: float = 1.0, m: int = 4) -> FigureResult:
    """Per-tuple time vs d (paper: n=50 000, m=7)."""
    n = int(100 * scale)

    def build(d: int) -> Tuple[TableSchema, Sequence[dict]]:
        return nba_schema(d, m), nba_rows(n, d=d, m=m)

    series = sweep_vary_param(FIG7_ALGOS, (4, 5, 6, 7), build, PAPER_CONFIG)
    return FigureResult(
        f"Fig.7b  NBA, varying d (n={n}, m={m})",
        "d",
        "execution time per tuple, msec",
        series,
    )


def figure7c(scale: float = 1.0, d: int = 4) -> FigureResult:
    """Per-tuple time vs m (paper: n=50 000, d=5)."""
    n = int(100 * scale)

    def build(m: int) -> Tuple[TableSchema, Sequence[dict]]:
        return nba_schema(d, m), nba_rows(n, d=d, m=m)

    series = sweep_vary_param(FIG7_ALGOS, (4, 5, 6, 7), build, PAPER_CONFIG)
    return FigureResult(
        f"Fig.7c  NBA, varying m (n={n}, d={d})",
        "m",
        "execution time per tuple, msec",
        series,
    )


# ----------------------------------------------------------------------
# Fig. 8 — sharing variants vs BottomUp/TopDown/C-CSC (NBA)
# ----------------------------------------------------------------------
def figure8a(scale: float = 1.0, d: int = 5, m: int = 5) -> FigureResult:
    n = int(400 * scale)
    rows = nba_rows(n, d=d, m=m)
    series = sweep_vary_n(
        FIG8_ALGOS, nba_schema(d, m), rows, _checkpoints(n), PAPER_CONFIG
    )
    return FigureResult(
        f"Fig.8a  NBA, varying n (d={d}, m={m})",
        "tuple_id",
        "execution time per tuple, msec",
        series,
    )


def figure8b(scale: float = 1.0, m: int = 4) -> FigureResult:
    n = int(120 * scale)

    def build(d: int) -> Tuple[TableSchema, Sequence[dict]]:
        return nba_schema(d, m), nba_rows(n, d=d, m=m)

    series = sweep_vary_param(FIG8_ALGOS, (4, 5, 6, 7), build, PAPER_CONFIG)
    return FigureResult(
        f"Fig.8b  NBA, varying d (n={n}, m={m})",
        "d",
        "execution time per tuple, msec",
        series,
    )


def figure8c(scale: float = 1.0, d: int = 4) -> FigureResult:
    n = int(120 * scale)

    def build(m: int) -> Tuple[TableSchema, Sequence[dict]]:
        return nba_schema(d, m), nba_rows(n, d=d, m=m)

    series = sweep_vary_param(FIG8_ALGOS, (4, 5, 6, 7), build, PAPER_CONFIG)
    return FigureResult(
        f"Fig.8c  NBA, varying m (n={n}, d={d})",
        "m",
        "execution time per tuple, msec",
        series,
    )


# ----------------------------------------------------------------------
# Fig. 9 — weather dataset, varying n
# ----------------------------------------------------------------------
def figure9(scale: float = 1.0, d: int = 5, m: int = 5) -> FigureResult:
    n = int(400 * scale)
    rows = weather_rows(n, d=d, m=m)
    series = sweep_vary_n(
        FIG8_ALGOS, weather_schema(d, m), rows, _checkpoints(n), PAPER_CONFIG
    )
    return FigureResult(
        f"Fig.9  Weather, varying n (d={d}, m={m})",
        "tuple_id",
        "execution time per tuple, msec",
        series,
    )


# ----------------------------------------------------------------------
# Fig. 10 — memory consumption and stored skyline tuples (NBA)
# ----------------------------------------------------------------------
def figure10a(scale: float = 1.0, d: int = 5, m: int = 5) -> FigureResult:
    n = int(400 * scale)
    rows = nba_rows(n, d=d, m=m)
    series = counter_stream(
        FIG8_ALGOS,
        nba_schema(d, m),
        rows,
        _checkpoints(n),
        metric=lambda algo: algo.approx_bytes(),
        config=PAPER_CONFIG,
    )
    return FigureResult(
        f"Fig.10a  NBA memory, varying n (d={d}, m={m})",
        "tuple_id",
        "approx. store bytes",
        series,
    )


def figure10b(scale: float = 1.0, d: int = 5, m: int = 5) -> FigureResult:
    n = int(400 * scale)
    rows = nba_rows(n, d=d, m=m)
    series = counter_stream(
        FIG8_ALGOS,
        nba_schema(d, m),
        rows,
        _checkpoints(n),
        metric=lambda algo: algo.stored_tuple_count(),
        config=PAPER_CONFIG,
    )
    return FigureResult(
        f"Fig.10b  NBA stored skyline tuples, varying n (d={d}, m={m})",
        "tuple_id",
        "number of skyline tuples stored",
        series,
    )


# ----------------------------------------------------------------------
# Fig. 11 — comparisons and traversed constraints (NBA)
# ----------------------------------------------------------------------
def figure11a(scale: float = 1.0, d: int = 5, m: int = 5) -> FigureResult:
    n = int(400 * scale)
    rows = nba_rows(n, d=d, m=m)
    series = counter_stream(
        FIG11_ALGOS,
        nba_schema(d, m),
        rows,
        _checkpoints(n),
        metric=lambda algo: algo.counters.comparisons,
        config=PAPER_CONFIG,
    )
    return FigureResult(
        f"Fig.11a  NBA cumulative comparisons (d={d}, m={m})",
        "tuple_id",
        "number of comparisons",
        series,
    )


def figure11b(scale: float = 1.0, d: int = 5, m: int = 5) -> FigureResult:
    n = int(400 * scale)
    rows = nba_rows(n, d=d, m=m)
    series = counter_stream(
        FIG11_ALGOS,
        nba_schema(d, m),
        rows,
        _checkpoints(n),
        metric=lambda algo: algo.counters.traversed_constraints,
        config=PAPER_CONFIG,
    )
    return FigureResult(
        f"Fig.11b  NBA cumulative traversed constraints (d={d}, m={m})",
        "tuple_id",
        "number of traversed constraints",
        series,
    )


# ----------------------------------------------------------------------
# Figs. 12-13 — file-based implementations
# ----------------------------------------------------------------------
def figure12a(scale: float = 1.0, d: int = 5, m: int = 4) -> FigureResult:
    # d=5 as in the paper: at d=4 the scaled-down workload has so few
    # non-empty pairs that the file-I/O asymmetry the figure is about
    # does not dominate (see EXPERIMENTS.md).
    n = int(120 * scale)
    rows = nba_rows(n, d=d, m=m)
    series = sweep_vary_n(
        FIG12_ALGOS, nba_schema(d, m), rows, _checkpoints(n), PAPER_CONFIG
    )
    return FigureResult(
        f"Fig.12a  NBA file-based, varying n (d={d}, m={m})",
        "tuple_id",
        "execution time per tuple, msec",
        series,
    )


def figure12b(scale: float = 1.0, m: int = 4) -> FigureResult:
    n = int(50 * scale)

    def build(d: int) -> Tuple[TableSchema, Sequence[dict]]:
        return nba_schema(d, m), nba_rows(n, d=d, m=m)

    series = sweep_vary_param(FIG12_ALGOS, (4, 5, 6, 7), build, PAPER_CONFIG)
    return FigureResult(
        f"Fig.12b  NBA file-based, varying d (n={n}, m={m})",
        "d",
        "execution time per tuple, msec",
        series,
    )


def figure12c(scale: float = 1.0, d: int = 4) -> FigureResult:
    n = int(50 * scale)

    def build(m: int) -> Tuple[TableSchema, Sequence[dict]]:
        return nba_schema(d, m), nba_rows(n, d=d, m=m)

    series = sweep_vary_param(FIG12_ALGOS, (4, 5, 6, 7), build, PAPER_CONFIG)
    return FigureResult(
        f"Fig.12c  NBA file-based, varying m (n={n}, d={d})",
        "m",
        "execution time per tuple, msec",
        series,
    )


def figure13(scale: float = 1.0, d: int = 5, m: int = 4) -> FigureResult:
    n = int(120 * scale)
    rows = weather_rows(n, d=d, m=m)
    series = sweep_vary_n(
        FIG12_ALGOS, weather_schema(d, m), rows, _checkpoints(n), PAPER_CONFIG
    )
    return FigureResult(
        f"Fig.13  Weather file-based, varying n (d={d}, m={m})",
        "tuple_id",
        "execution time per tuple, msec",
        series,
    )


# ----------------------------------------------------------------------
# Figs. 14-15 — prominent-fact statistics (§VII)
# ----------------------------------------------------------------------
def _prominent_stream(
    n: int, d: int, m: int, tau: float
) -> List[Tuple[int, List]]:
    """Run the §VII pipeline: per tuple, the prominent facts (ties at the
    max prominence, if ≥ τ) under d̂=3, m̂=3."""
    config = DiscoveryConfig(max_bound_dims=3, max_measure_dims=3, tau=tau)
    engine = FactDiscoverer(nba_schema(d, m), algorithm="stopdown", config=config)
    out = []
    for i, row in enumerate(nba_rows(n, d=d, m=m)):
        out.append((i, engine.observe(row)))
    return out


def figure14(
    scale: float = 1.0, d: int = 5, m: int = 4, tau: float = 20.0,
    window: int = 250,
) -> FigureResult:
    """Number of prominent facts per window of tuples (paper: per 1 000
    tuples at τ=10³ over 300 K tuples; scaled: smaller windows/τ)."""
    n = int(2000 * scale)
    stream = _prominent_stream(n, d, m, tau)
    s = Series(label=f"tau={int(tau)}")
    count = 0
    for i, facts in stream:
        count += len(facts)
        if (i + 1) % window == 0:
            s.add(i + 1, count)
            count = 0
    return FigureResult(
        f"Fig.14  prominent facts per {window} tuples (d={d}, m={m}, "
        f"d̂=3, m̂=3, τ={int(tau)})",
        "tuple_id",
        "number of prominent facts",
        [s],
    )


def figure15(
    scale: float = 1.0, d: int = 5, m: int = 4,
    taus: Sequence[float] = (5.0, 20.0, 80.0),
) -> Tuple[FigureResult, FigureResult]:
    """Distribution of prominent facts by bound(C) (15a) and by |M|
    (15b), for varying τ (paper: τ ∈ [10², 10⁴])."""
    n = int(2000 * scale)
    by_bound = {tau: {} for tau in taus}
    by_dim = {tau: {} for tau in taus}
    for tau in taus:
        for _i, facts in _prominent_stream(n, d, m, tau):
            for fact in facts:
                b = fact.constraint.bound_count
                k = bin(fact.subspace).count("1")
                by_bound[tau][b] = by_bound[tau].get(b, 0) + 1
                by_dim[tau][k] = by_dim[tau].get(k, 0) + 1
    bounds = list(range(0, 4))
    dims = list(range(1, 4))
    series_a = []
    series_b = []
    for tau in taus:
        sa = Series(label=f"tau={int(tau)}")
        for b in bounds:
            sa.add(b, by_bound[tau].get(b, 0))
        series_a.append(sa)
        sb = Series(label=f"tau={int(tau)}")
        for k in dims:
            sb.add(k, by_dim[tau].get(k, 0))
        series_b.append(sb)
    fig_a = FigureResult(
        f"Fig.15a  prominent facts by bound(C) (n={n}, d={d}, m={m})",
        "bound(C)",
        "number of prominent facts",
        series_a,
    )
    fig_b = FigureResult(
        f"Fig.15b  prominent facts by |M| (n={n}, d={d}, m={m})",
        "|M|",
        "number of prominent facts",
        series_b,
    )
    return fig_a, fig_b


#: Registry used by ``python -m repro.experiments`` and the benches.
ALL_FIGURES: Dict[str, Callable[..., object]] = {
    "fig7a": figure7a,
    "fig7b": figure7b,
    "fig7c": figure7c,
    "fig8a": figure8a,
    "fig8b": figure8b,
    "fig8c": figure8c,
    "fig9": figure9,
    "fig10a": figure10a,
    "fig10b": figure10b,
    "fig11a": figure11a,
    "fig11b": figure11b,
    "fig12a": figure12a,
    "fig12b": figure12b,
    "fig12c": figure12c,
    "fig13": figure13,
    "fig14": figure14,
    "fig15": figure15,
}
