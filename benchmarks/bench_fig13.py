"""Fig. 13 — file-based variants on the weather dataset.

Same claim as Fig. 12, on the second dataset: FSTopDown wins.
"""

from repro.experiments import figure13

from conftest import run_figure


def test_fig13_weather_file_based(benchmark, bench_scale):
    fig = run_figure(benchmark, figure13, bench_scale)
    final = fig.final_values()
    assert final["fstopdown"] < final["fsbottomup"]
