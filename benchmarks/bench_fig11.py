"""Fig. 11 — work done: tuple comparisons and traversed constraints.

Paper claims: substantial difference between TopDown and STopDown (the
sharing variant skips pruned non-skyline constraints), insignificant-to-
modest difference between BottomUp and SBottomUp (plain BottomUp already
skips most non-skyline constraints).
"""

from repro.experiments import figure11a, figure11b

from conftest import run_figure


def test_fig11a_comparisons(benchmark, bench_scale):
    fig = run_figure(benchmark, figure11a, bench_scale)
    final = fig.final_values()
    assert final["stopdown"] < final["topdown"]
    assert final["sbottomup"] <= final["bottomup"] * 1.05


def test_fig11b_traversed_constraints(benchmark, bench_scale):
    fig = run_figure(benchmark, figure11b, bench_scale)
    final = fig.final_values()
    assert final["stopdown"] < final["topdown"]
    # TopDown visits every allowed constraint in every subspace, so it
    # traverses the most.
    assert final["topdown"] == max(final.values())
