"""Ablation benches for the paper's three core ideas (§IV).

Each idea is isolated by comparing adjacent rungs of the algorithm
ladder on the same stream:

* tuple reduction      — BruteForce (scans all tuples) vs BottomUp
                         (scans only stored skyline tuples);
* constraint pruning   — BruteForce (checks every constraint) vs
                         BaselineSeq (subtracts C^{t,t'} families);
* subspace sharing     — TopDown vs STopDown comparison counts.
"""

import pytest

from repro import DiscoveryConfig, make_algorithm
from repro.datasets import nba_rows, nba_schema

CONFIG = DiscoveryConfig(max_bound_dims=4)


@pytest.fixture(scope="module")
def workload(request):
    d, m, n = 4, 4, 120
    return nba_schema(d, m), nba_rows(n, d=d, m=m)


def _run(name, schema, rows):
    algo = make_algorithm(name, schema, CONFIG)
    algo.process_stream(rows)
    return algo


def test_ablation_tuple_reduction(benchmark, workload):
    """BottomUp's skyline-only comparisons are a small fraction of
    BruteForce's full-table scans."""
    schema, rows = workload
    bf = _run("bruteforce", schema, rows)
    bu = benchmark.pedantic(
        lambda: _run("bottomup", schema, rows), iterations=1, rounds=1
    )
    print(
        f"\ncomparisons: bruteforce={bf.counters.comparisons:,} "
        f"bottomup={bu.counters.comparisons:,}"
    )
    assert bu.counters.comparisons * 5 < bf.counters.comparisons


def test_ablation_constraint_pruning(benchmark, workload):
    """BaselineSeq turns per-constraint scans into per-tuple scans with
    lattice-family subtraction: far fewer comparisons than BruteForce."""
    schema, rows = workload
    bf = _run("bruteforce", schema, rows)
    bs = benchmark.pedantic(
        lambda: _run("baselineseq", schema, rows), iterations=1, rounds=1
    )
    print(
        f"\ncomparisons: bruteforce={bf.counters.comparisons:,} "
        f"baselineseq={bs.counters.comparisons:,}"
    )
    assert bs.counters.comparisons < bf.counters.comparisons


def test_ablation_subspace_sharing(benchmark, workload):
    """STopDown's one full-space pass + Prop. 4 replaces most of
    TopDown's per-subspace comparisons."""
    schema, rows = workload
    td = _run("topdown", schema, rows)
    std = benchmark.pedantic(
        lambda: _run("stopdown", schema, rows), iterations=1, rounds=1
    )
    print(
        f"\ncomparisons: topdown={td.counters.comparisons:,} "
        f"stopdown={std.counters.comparisons:,}"
    )
    assert std.counters.comparisons < td.counters.comparisons
    assert std.counters.traversed_constraints < td.counters.traversed_constraints


def test_ablation_vectorised_baseline(benchmark, workload):
    """Tuple-at-a-time NumPy sharing (this repo's extension): same
    output as BaselineSeq, less wall-clock per tuple at scale."""
    import time

    schema, rows = workload
    start = time.perf_counter()
    seq = _run("baselineseq", schema, rows)
    seq_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    vec = benchmark.pedantic(
        lambda: _run("baselinevec", schema, rows), iterations=1, rounds=1
    )
    vec_elapsed = time.perf_counter() - start
    print(
        f"\nper-tuple: baselineseq={1000 * seq_elapsed / len(rows):.2f}ms "
        f"baselinevec={1000 * vec_elapsed / len(rows):.2f}ms"
    )
    # Output equivalence is covered by tests; here assert it is not a
    # pessimisation (vectorisation wins grow with n).
    assert vec_elapsed < seq_elapsed * 1.5


def test_ablation_index_baseline(benchmark, workload):
    """BaselineIdx's k-d tree restricts candidate dominators: it never
    does more comparisons than BaselineSeq's sequential scan."""
    schema, rows = workload
    bs = _run("baselineseq", schema, rows)
    bi = benchmark.pedantic(
        lambda: _run("baselineidx", schema, rows), iterations=1, rounds=1
    )
    print(
        f"\ncomparisons: baselineseq={bs.counters.comparisons:,} "
        f"baselineidx={bi.counters.comparisons:,}"
    )
    assert bi.counters.comparisons <= bs.counters.comparisons
