"""Lattice-walk stage head-to-head: bitset-matrix walker vs PR-2 pass.

Not a paper figure — this repo's PR-3 bench.  PR 1/2 vectorized the
dominance sweep and the scoring pipeline; what remained Python was the
per-(constraint, subspace) visit loop of ``_lattice_pass`` (~240 visits
per arrival at d=4, m=4) plus the per-visit store calls it made.  PR 3
collapsed all of it into whole-pass bitset-matrix arithmetic: pruned
/survive/maximal decisions as ``(subspaces × constraints)`` matrix
reductions, µ-bucket occupancy (the comparison counters and demotion
candidates) as one AND of per-row anchor bitsets against the agreement
submask closure, and store mutations through grouped
``insert_new_many`` / netted ``reanchor_demoted``.

This bench isolates that stage.  Both contenders run unscored ingestion
of the same anticorrelated stream at the ``bench_columnar.py`` default
cell (``n=3000, d=4, m=4``); the cost of the *shared* raw dominance
sweep (``lt``/``gt``/``agree`` + the Prop. 4 hit matrices — identical
code in both) is measured separately by replaying it against the warmed
store and subtracted, leaving per contender exactly the lattice-walk
stage: pruned-bitset assembly, the walk itself, and the store
mutations it issues.

Headline assertion: the walker's stage is ~2× faster than the pinned
PR-2 per-visit pass (measured ~2.0-2.2×; asserted at a 1.9 floor so
scheduler noise cannot flake the bench), while output-equivalent
(facts, stores, op counters — ``tests/test_scoring_equivalence.py``,
``tests/test_output_properties.py``).  The raw unscored marginal (no
subtraction) is asserted ≥ 1.5× and reported alongside.

PR 7 adds the growth-curve bench: the incremental sweep index answers
the per-arrival dominance partition from sorted measure orderings and
interned-value posting bitsets (valid up to a stable-prefix watermark)
instead of re-scanning all ``n`` stored rows, so the *scored*
``observe_many`` marginal should stay near-flat as the relation grows.
``test_sweep_index_marginal_near_flat`` measures that marginal across
``n ∈ {3k, 10k, 30k, 100k}`` with the index on (dense comparison at
``{3k, 10k, 30k}``) and asserts the 30k marginal stays within 1.5× of
the 3k one; results go to ``BENCH_PR7.json``.

Run with ``pytest benchmarks/bench_lattice.py -s``;
``REPRO_BENCH_SCALE`` scales the workload.  Results are merged into
``BENCH_PR3.json`` (see ``benchmarks/_results.py``).
"""

import gc
import time

from repro import FactDiscoverer
from repro.algorithms.s_vectorized import SVectorized
from repro.datasets.synthetic import synthetic_rows, synthetic_schema

from _results import update_results
from pinned_pr2 import PinnedPR2SVec

N, D, M = 3000, 4, 4
CHUNK = 100
CHUNKS = 4

#: Relation sizes of the PR-7 growth sweep.  The dense contender skips
#: 100k (its marginal grows linearly — the 30k point already shows the
#: trend and the warm-up alone would dominate the bench's runtime).
SWEEP_NS_INDEXED = (3_000, 10_000, 30_000, 100_000)
SWEEP_NS_DENSE = (3_000, 10_000, 30_000)

#: Required flatness of the indexed scored marginal: the 30k marginal
#: may cost at most this multiple of the 3k one.  The dense sweep sits
#: at ~2.6× over the same span (O(n·m) re-scan per arrival); the index
#: keeps the prefix work at a few packed words per (plane, mask) cell,
#: measured ~1.3-1.45×.
MARGINAL_GROWTH_CEILING = 1.5

#: Required speedup of the walker's lattice-walk stage (sweep cost
#: subtracted) over the pinned PR-2 per-visit pass.  Measured
#: ~2.0-2.2×; asserted with a small noise allowance so a ±5% scheduler
#: wobble cannot flake the bench while a genuine de-vectorization
#: (ratio ≈ 1×) still fails by a wide margin.
STAGE_SPEEDUP = 1.9
#: Required speedup of the raw unscored discovery marginal (sweep
#: included — the sweep is shared, so this end-to-end ratio is the
#: conservative floor).
TOTAL_SPEEDUP = 1.5


def _sweep_cost(algo, records):
    """Per-tuple cost of the shared raw dominance sweep on the warmed
    store: the three partition bitmask columns plus the Prop. 4 hit
    matrices — the code both contenders run verbatim before their
    lattice stages diverge."""
    store = algo.store
    keys_col = algo._keys_column
    start = time.perf_counter()
    for record in records:
        lt, gt, agree = store.partition_bitmasks(record)
        lt_hit = (lt & keys_col) != 0
        gt_hit = (gt & keys_col) != 0
        lt_hit & ~gt_hit
        gt_hit & ~lt_hit
    return (time.perf_counter() - start) / len(records)


def _measure(schema, warm, chunks):
    """Interleaved best-of-chunks unscored marginals plus per-contender
    sweep estimates (same estimator discipline as bench_scoring)."""
    algos = {
        "walker": SVectorized(schema),
        "pr2-pass": PinnedPR2SVec(schema),
    }
    sweep = {}
    for name, algo in algos.items():
        algo.process_many(warm)
        # Replay the shared sweep on the warm store (pre-probe: a
        # slight *under*-estimate, so the subtracted stage ratio is
        # conservative).
        records = [algo.table.make_record(row) for row in chunks[0]]
        sweep[name] = _sweep_cost(algo, records)
    samples = {name: [] for name in algos}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for chunk in chunks:
            for name, algo in algos.items():
                start = time.perf_counter()
                algo.process_many(chunk)
                samples[name].append((time.perf_counter() - start) / len(chunk))
    finally:
        if gc_was_enabled:
            gc.enable()
    totals = {name: min(times) for name, times in samples.items()}
    stages = {name: totals[name] - sweep[name] for name in totals}
    return totals, stages, sweep


def test_walker_beats_pinned_pr2_pass(benchmark, bench_scale):
    n = int(N * bench_scale)
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(n + CHUNK * CHUNKS, D, M, distribution="anticorrelated")
    warm = rows[:n]
    chunks = [rows[n + i * CHUNK : n + (i + 1) * CHUNK] for i in range(CHUNKS)]

    def run():
        # Up to three attempts, keeping the best stage ratio: an OS
        # scheduling burst can depress one contender's measurement; a
        # real de-vectorization misses every attempt by a wide margin.
        best = _measure(schema, warm, chunks)
        for _ in range(2):
            if best[1]["pr2-pass"] / best[1]["walker"] >= STAGE_SPEEDUP:
                break
            retry = _measure(schema, warm, chunks)
            if (
                retry[1]["pr2-pass"] / retry[1]["walker"]
                > best[1]["pr2-pass"] / best[1]["walker"]
            ):
                best = retry
        return best

    totals, stages, sweep = benchmark.pedantic(run, iterations=1, rounds=1)
    stage_speedup = stages["pr2-pass"] / stages["walker"]
    total_speedup = totals["pr2-pass"] / totals["walker"]
    print()
    print(
        f"unscored marginal per-tuple @ n={n} d={D} m={M} (anticorrelated); "
        f"walk stage = total − shared sweep"
    )
    for name in ("pr2-pass", "walker"):
        print(
            f"  {name:<9} total {1e3 * totals[name]:>7.3f} ms   "
            f"sweep {1e3 * sweep[name]:>7.3f} ms   "
            f"walk stage {1e3 * stages[name]:>7.3f} ms"
        )
    print(
        f"  walk-stage speedup {stage_speedup:.2f}x "
        f"(total {total_speedup:.2f}x)"
    )
    update_results(
        "lattice",
        {
            "walker_total_ms": round(1e3 * totals["walker"], 4),
            "pr2_pass_total_ms": round(1e3 * totals["pr2-pass"], 4),
            "walker_stage_ms": round(1e3 * stages["walker"], 4),
            "pr2_pass_stage_ms": round(1e3 * stages["pr2-pass"], 4),
            "sweep_ms": round(1e3 * sweep["walker"], 4),
            "stage_speedup": round(stage_speedup, 2),
            "total_speedup": round(total_speedup, 2),
        },
    )
    update_results(
        "meta", {"n": n, "d": D, "m": M, "distribution": "anticorrelated"}
    )
    benchmark.extra_info["stage_speedup"] = round(stage_speedup, 2)
    benchmark.extra_info["total_speedup"] = round(total_speedup, 2)
    assert stage_speedup >= STAGE_SPEEDUP, (
        f"bitset walker's lattice stage is only {stage_speedup:.2f}x the "
        f"pinned PR-2 pass (need >= {STAGE_SPEEDUP}x) — the walk has "
        f"likely fallen back to the per-visit scalar path; see "
        f"benchmarks/bench_guard.py"
    )
    assert total_speedup >= TOTAL_SPEEDUP, (
        f"unscored discovery marginal is only {total_speedup:.2f}x the "
        f"pinned PR-2 engine (need >= {TOTAL_SPEEDUP}x)"
    )


# ----------------------------------------------------------------------
# PR 7: scored-marginal growth sweep (incremental sweep index)
# ----------------------------------------------------------------------
def _scored_marginal_at(n, rows, sweep_index):
    """Best-of-chunks scored ``facts_for_many`` marginal on a relation
    warmed to ``n`` rows.

    Warm-up runs unscored (``process_many`` + batched counter
    registration — the exact state transitions of the scored path,
    minus the per-fact annotation, which reads state but never writes
    it), so the 100k point warms in NumPy-batch time; probes then
    measure the real scored marginal.
    """
    engine = FactDiscoverer(
        schema=synthetic_schema(D, M),
        algorithm="svec",
        score=True,
        sweep_index=sweep_index,
    )
    warm = rows[:n]
    engine.algorithm.process_many(warm)
    engine.context_counter.register_many(list(engine.table))
    chunks = [
        rows[n + i * CHUNK : n + (i + 1) * CHUNK] for i in range(CHUNKS)
    ]
    samples = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for chunk in chunks:
            start = time.perf_counter()
            engine.facts_for_many(chunk)
            samples.append((time.perf_counter() - start) / len(chunk))
    finally:
        if gc_was_enabled:
            gc.enable()
    return min(samples)


def test_sweep_index_marginal_near_flat(benchmark, bench_scale):
    ns_indexed = [int(n * bench_scale) for n in SWEEP_NS_INDEXED]
    ns_dense = [int(n * bench_scale) for n in SWEEP_NS_DENSE]
    rows = synthetic_rows(
        max(ns_indexed) + CHUNK * CHUNKS, D, M, distribution="anticorrelated"
    )

    def run():
        # Up to three attempts on the two ratio-bearing points: one
        # scheduler burst on the 30k measurement must not flake a bench
        # whose genuine failure mode (a de-indexed sweep) sits at ~2.6×.
        indexed = {n: _scored_marginal_at(n, rows, "on") for n in ns_indexed}
        for _ in range(2):
            if indexed[ns_indexed[2]] <= MARGINAL_GROWTH_CEILING * indexed[ns_indexed[0]]:
                break
            indexed[ns_indexed[0]] = min(
                indexed[ns_indexed[0]],
                _scored_marginal_at(ns_indexed[0], rows, "on"),
            )
            indexed[ns_indexed[2]] = min(
                indexed[ns_indexed[2]],
                _scored_marginal_at(ns_indexed[2], rows, "on"),
            )
        dense = {n: _scored_marginal_at(n, rows, "off") for n in ns_dense}
        return indexed, dense

    indexed, dense = benchmark.pedantic(run, iterations=1, rounds=1)
    growth = indexed[ns_indexed[2]] / indexed[ns_indexed[0]]
    print()
    print(
        f"scored observe_many marginal per-tuple, d={D} m={M} "
        f"(anticorrelated):"
    )
    print(f"  {'n':>8}  {'indexed':>10}  {'dense':>10}")
    for n in ns_indexed:
        d = f"{1e3 * dense[n]:8.3f} ms" if n in dense else "      —   "
        print(f"  {n:>8}  {1e3 * indexed[n]:8.3f} ms  {d}")
    print(
        f"  indexed marginal growth {ns_indexed[0]}→{ns_indexed[2]}: "
        f"{growth:.2f}x (ceiling {MARGINAL_GROWTH_CEILING}x); dense over "
        f"the same span: "
        f"{dense[ns_dense[2]] / dense[ns_dense[0]]:.2f}x"
    )
    update_results(
        "n_sweep",
        {
            "d": D,
            "m": M,
            "distribution": "anticorrelated",
            "indexed_ms": {
                str(n): round(1e3 * indexed[n], 4) for n in ns_indexed
            },
            "dense_ms": {str(n): round(1e3 * dense[n], 4) for n in ns_dense},
            "indexed_growth_3k_to_30k": round(growth, 3),
            "dense_growth_3k_to_30k": round(
                dense[ns_dense[2]] / dense[ns_dense[0]], 3
            ),
            "growth_ceiling": MARGINAL_GROWTH_CEILING,
        },
        filename="BENCH_PR7.json",
    )
    benchmark.extra_info["indexed_growth_3k_to_30k"] = round(growth, 2)
    assert growth <= MARGINAL_GROWTH_CEILING, (
        f"indexed scored marginal grew {growth:.2f}x from "
        f"n={ns_indexed[0]} to n={ns_indexed[2]} (ceiling "
        f"{MARGINAL_GROWTH_CEILING}x) — the sweep index has likely "
        f"stopped short-circuiting the stable prefix; see "
        f"benchmarks/bench_guard.py::test_sweep_index_stays_sublinear"
    )
