"""Fig. 15 — distribution of prominent facts by bound(C) and |M|.

Paper claims (for d̂=3, m̂=3): fewer prominent facts at the extremes —
bound(C) ∈ {0, 3} yields fewer than {1, 2} (whole-table contexts are
too hard, 3-bound contexts too small to clear τ), and |M| ∈ {1, 3}
yields fewer than |M| = 2 (single measures need an outright maximum;
3-measure skylines are too crowded to look rare).  Counts shrink as τ
grows.
"""

from repro.experiments import figure15

from conftest import run_figure


def test_fig15_distributions(benchmark, bench_scale):
    fig_a, fig_b = run_figure(benchmark, figure15, bench_scale)

    # Counts fall (weakly) as tau rises, in both breakdowns.
    totals_a = [sum(s.ys) for s in fig_a.series]
    assert totals_a == sorted(totals_a, reverse=True)
    totals_b = [sum(s.ys) for s in fig_b.series]
    assert totals_b == sorted(totals_b, reverse=True)

    # Interior-beats-extremes shape at the most permissive tau.
    loosest_a = fig_a.series[0]
    by_bound = dict(zip(loosest_a.xs, loosest_a.ys))
    assert max(by_bound.get(1, 0), by_bound.get(2, 0)) >= by_bound.get(0, 0)
    assert max(by_bound.get(1, 0), by_bound.get(2, 0)) >= by_bound.get(3, 0)

    loosest_b = fig_b.series[0]
    by_dim = dict(zip(loosest_b.xs, loosest_b.ys))
    assert by_dim.get(2, 0) >= by_dim.get(3, 0)
