"""Sharded service throughput: subspace-parallel workers vs one engine.

Not a paper figure — this repo's serving-layer bench (PR 4).  The
``svec`` engine is single-threaded by construction; the service layer
(:class:`repro.service.sharding.ShardedDiscoverer`) partitions the
measure-subspace axis across worker processes, each running the same
``svec`` machinery restricted to its shard, with the router merging
per-arrival facts, scoring contexts once, and applying the reporting
policy — output property-tested identical to the unsharded engine
(``tests/test_sharding.py``; re-asserted on the measured stream below).

The contenders ingest the same scored anticorrelated stream through
``observe_many`` and we report *marginal* per-tuple throughput once the
history holds ``n=3000`` (``d=4, m=4``, the standard grid cell):

* ``single``  — one unsharded scored ``svec`` engine;
* ``sharded`` — ``ShardedDiscoverer`` with 4 process workers.

Headline assertion: 4-worker sharded ingestion is ≥ 2× the single
engine's throughput (asserted at a 1.9× noise floor, like the walker
bench).  The wall-clock claim needs the workers to actually run in
parallel, so the assertion is skipped — after measuring and recording —
on machines with fewer than 4 usable CPUs; the output-equality
assertion runs everywhere.

Run with ``pytest benchmarks/bench_service.py -s`` to see the table;
``REPRO_BENCH_SCALE`` enlarges the workload.  Results land in
``BENCH_PR4.json`` (uploaded as a CI artifact next to
``BENCH_PR3.json``).
"""

import gc
import os
import time

import pytest

from repro import FactDiscoverer
from repro.datasets.synthetic import synthetic_rows, synthetic_schema
from repro.service import ShardedDiscoverer

from _results import update_results

N, D, M = 3000, 4, 4
WORKERS = 4
CHUNK = 150
CHUNKS = 4

#: Required sharded-over-single throughput ratio, and the noise floor it
#: is asserted at (scheduler jitter on shared runners).
REQUIRED_SPEEDUP = 2.0
NOISE_FLOOR = 1.9


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def reportable_keys(lists):
    return [
        [(f.constraint.values, f.subspace, f.prominence) for f in facts]
        for facts in lists
    ]


def test_sharded_service_throughput(benchmark, bench_scale):
    """4-process-worker sharded ingestion ≥ 2× one engine, same output."""
    n = int(N * bench_scale)
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(
        n + CHUNK * CHUNKS, D, M, distribution="anticorrelated"
    )
    warm, tail = rows[:n], rows[n:]
    chunks = [tail[i * CHUNK : (i + 1) * CHUNK] for i in range(CHUNKS)]

    def measure():
        single = FactDiscoverer(schema, algorithm="svec")
        sharded = ShardedDiscoverer(
            schema, n_workers=WORKERS, mode="process"
        )
        try:
            single.facts_for_many(warm)
            sharded.facts_for_many(warm)
            single_times, sharded_times = [], []
            mismatches = 0
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                for chunk in chunks:
                    start = time.perf_counter()
                    expected = single.observe_many(chunk)
                    single_times.append(time.perf_counter() - start)
                    start = time.perf_counter()
                    got = sharded.observe_many(chunk)
                    sharded_times.append(time.perf_counter() - start)
                    if reportable_keys(got) != reportable_keys(expected):
                        mismatches += 1
            finally:
                if gc_was_enabled:
                    gc.enable()
            counters_equal = (
                sharded.counters.snapshot() == single.counters.snapshot()
            )
        finally:
            sharded.close()
        return {
            "single_s": min(single_times) / CHUNK,
            "sharded_s": min(sharded_times) / CHUNK,
            "mismatches": mismatches,
            "counters_equal": counters_equal,
        }

    def run():
        cell = measure()
        if cell["sharded_s"] and (
            cell["single_s"] / cell["sharded_s"] < NOISE_FLOOR
        ):
            # One retry: an OS scheduling burst can depress a whole
            # measurement; a genuine regression fails both attempts.
            retry = measure()
            if (
                retry["single_s"] / retry["sharded_s"]
                > cell["single_s"] / cell["sharded_s"]
            ):
                retry["mismatches"] += cell["mismatches"]
                retry["counters_equal"] &= cell["counters_equal"]
                cell = retry
        return cell

    cpus = usable_cpus()
    cell = benchmark.pedantic(run, iterations=1, rounds=1)
    single_ms = 1e3 * cell["single_s"]
    sharded_ms = 1e3 * cell["sharded_s"]
    speedup = single_ms / sharded_ms if sharded_ms else float("inf")
    print()
    print(
        f"scored observe_many marginal per-tuple latency @ n={n} d={D} "
        f"m={M} (anticorrelated), {cpus} usable CPUs"
    )
    print(f"  single (svec)        {single_ms:>9.3f} ms  "
          f"({1.0 / cell['single_s']:,.0f} tuples/s)")
    print(f"  sharded ({WORKERS} procs)    {sharded_ms:>9.3f} ms  "
          f"({1.0 / cell['sharded_s']:,.0f} tuples/s)")
    print(f"  speedup {speedup:.2f}x")
    benchmark.extra_info["single_ms"] = round(single_ms, 3)
    benchmark.extra_info["sharded_ms"] = round(sharded_ms, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cpus"] = cpus
    update_results(
        "service",
        {
            "single_ms": round(single_ms, 4),
            "sharded_ms": round(sharded_ms, 4),
            "speedup": round(speedup, 2),
            "workers": WORKERS,
            "mode": "process",
            "cpus": cpus,
        },
        filename="BENCH_PR4.json",
    )
    update_results(
        "meta",
        {"n": n, "d": D, "m": M, "distribution": "anticorrelated"},
        filename="BENCH_PR4.json",
    )

    # Exactness on the measured stream (facts, prominence, op counters)
    # holds regardless of hardware.
    assert cell["mismatches"] == 0, (
        "sharded output diverged from the unsharded engine on "
        f"{cell['mismatches']} measured chunk(s)"
    )
    assert cell["counters_equal"], (
        "sharded op-counter totals diverged from the unsharded engine"
    )

    if cpus < WORKERS:
        pytest.skip(
            f"only {cpus} usable CPU(s): the {WORKERS}-worker wall-clock "
            f"speedup assertion needs >= {WORKERS} (measured "
            f"{speedup:.2f}x; recorded in BENCH_PR4.json)"
        )
    assert speedup >= NOISE_FLOOR, (
        f"sharded ingestion is only {speedup:.2f}x the single engine "
        f"(need >= {REQUIRED_SPEEDUP}x, asserted at the {NOISE_FLOOR}x "
        f"noise floor) — check worker parallelism and the pipelined "
        f"merge (repro/service/sharding.py)"
    )
