"""Columnar-engine head-to-head: ``stopdown`` vs ``svec`` vs ``baselinevec``.

Not a paper figure — this repo's tuple-axis vectorization bench.  The
three contenders run the same synthetic stream and we report *marginal*
per-tuple latency (the cost of one more arrival once the history holds
``n`` tuples — the paper's Fig. 7–9 x-axis), across history size ``n``,
dimension count ``d`` and measure count ``m``.

The default workload is the skyline literature's stress case:
anticorrelated measures (largest skylines, so scalar sharing does the
most per-tuple work) at ``n=3000, d=4, m=4``, domain cardinality 8.  The
headline assertion is the acceptance bar of the columnar subsystem:
``svec`` beats scalar ``stopdown`` by ≥ 5× marginal per-tuple latency
there, while being output-equivalent (facts, stores, counters — see
``tests/test_columnar.py``).

Run with ``pytest benchmarks/bench_columnar.py -s`` to see the tables;
``REPRO_BENCH_SCALE`` enlarges the workload.
"""

import statistics
import time

from repro import make_algorithm
from repro.datasets.synthetic import synthetic_rows, synthetic_schema

ANTICORRELATED = "anticorrelated"
CHUNK = 100  # arrivals per timed chunk after the warm-up history
CHUNKS = 3  # timed chunks; the median damps scheduler/allocator noise

#: Default head-to-head workload (the acceptance-bar configuration).
DEFAULT = dict(n=3000, d=4, m=4, distribution=ANTICORRELATED)

#: Sweep grid: one axis varies around a lighter pivot, plus the default.
GRID = [
    dict(DEFAULT, n=1000),
    dict(DEFAULT, n=2000),
    dict(DEFAULT),
    dict(DEFAULT, n=1500, d=3),
    dict(DEFAULT, n=1500, d=5),
    dict(DEFAULT, n=1500, m=3),
    dict(DEFAULT, n=1500, m=2),
]

CONTENDERS = ("stopdown", "svec", "baselinevec")


def marginal_latency(name, schema, warm, chunks):
    """Median per-tuple seconds once the history holds ``len(warm)``."""
    algo = make_algorithm(name, schema)
    algo.process_many(warm)
    samples = []
    for chunk in chunks:
        start = time.perf_counter()
        algo.process_many(chunk)
        samples.append((time.perf_counter() - start) / len(chunk))
    return statistics.median(samples)


def run_cell(cfg, scale=1.0):
    n = int(cfg["n"] * scale)
    d, m = cfg["d"], cfg["m"]
    schema = synthetic_schema(d, m)
    rows = synthetic_rows(
        n + CHUNK * CHUNKS, d, m, distribution=cfg["distribution"]
    )
    warm = rows[:n]
    chunks = [
        rows[n + i * CHUNK : n + (i + 1) * CHUNK] for i in range(CHUNKS)
    ]
    return {
        name: marginal_latency(name, schema, warm, chunks)
        for name in CONTENDERS
    }


def _table(results):
    header = f"{'workload':<28}" + "".join(f"{c:>14}" for c in CONTENDERS)
    lines = [header, "-" * len(header)]
    for cfg, cell in results:
        label = f"n={cfg['n']} d={cfg['d']} m={cfg['m']}"
        lines.append(
            f"{label:<28}"
            + "".join(f"{1e3 * cell[c]:>12.3f}ms" for c in CONTENDERS)
        )
    return "\n".join(lines)


def test_columnar_head_to_head(benchmark, bench_scale):
    """svec ≥ 5× faster than scalar stopdown at the default workload."""
    results = benchmark.pedantic(
        lambda: [(cfg, run_cell(cfg, bench_scale)) for cfg in GRID],
        iterations=1,
        rounds=1,
    )
    print()
    print("marginal per-tuple latency (anticorrelated, cardinality 8)")
    print(_table(results))
    # The acceptance cell is the unmodified DEFAULT entry of the grid.
    cell = next(c for cfg, c in results if cfg == DEFAULT)
    speedup = cell["stopdown"] / cell["svec"]
    benchmark.extra_info["stopdown_ms"] = round(1e3 * cell["stopdown"], 3)
    benchmark.extra_info["svec_ms"] = round(1e3 * cell["svec"], 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(f"\nsvec speedup over stopdown at default workload: {speedup:.2f}x")
    assert speedup >= 5.0, (
        f"columnar engine regressed: svec only {speedup:.2f}x faster than "
        f"scalar stopdown (need >= 5x)"
    )
    # Sanity on every cell: vectorizing the sharing engine must never be
    # a pessimisation over the scalar original.
    for cfg, c in results:
        assert c["svec"] < c["stopdown"] * 1.5, cfg
