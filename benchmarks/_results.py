"""Machine-readable bench results — the ``BENCH_PR*.json`` sinks.

Each vectorization bench merges its per-stage marginal latencies into
one JSON file so the perf trajectory is tracked across PRs as data, not
only prose.  The file is read-modify-written so the benches can run in
any order or subset; CI uploads the files as artifacts.

The default sink is ``BENCH_PR3.json`` (the single-engine stage
latencies); benches covering a different layer pass ``filename`` —
``bench_service.py`` writes the service-throughput numbers to
``BENCH_PR4.json``.

Layout::

    {
      "meta":    {"n": 3000, "d": 4, "m": 4, "distribution": "..."},
      "lattice": {"walker_ms": ..., "pr2_pass_ms": ..., ...},
      "scoring": {"columnar_ms": ..., "pr2_ms": ..., "pr1_scalar_ms": ...},
      "guard":   {"svec_ms": ..., "baselinevec_ms": ..., ...}
    }
"""

import json
import os
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent

#: Default sink next to the repo root; override with REPRO_BENCH_RESULTS.
_DEFAULT = _ROOT / "BENCH_PR3.json"


def results_path(filename: str = None) -> Path:
    if filename is not None:
        return _ROOT / filename
    return Path(os.environ.get("REPRO_BENCH_RESULTS", str(_DEFAULT)))


def update_results(section: str, payload: dict, filename: str = None) -> Path:
    """Merge ``payload`` under ``section`` in the results file."""
    path = results_path(filename)
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            data = {}
    existing = data.get(section)
    if isinstance(existing, dict):
        existing.update(payload)
    else:
        data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path
