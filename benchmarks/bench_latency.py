"""Detection-latency bench (the paper's §I timeliness motivation).

Not a paper figure — an ablation this repo adds: tail latency, not just
the mean, decides whether a fact reaches the newsroom before the story
goes stale.  Asserts that the incremental algorithms keep their p99
under the baseline's, i.e. the speedup is not only on average.
"""

from repro import DiscoveryConfig
from repro.datasets import nba_rows, nba_schema
from repro.experiments.latency import latency_table, measure_latency

CONFIG = DiscoveryConfig(max_bound_dims=4)


def test_latency_tails(benchmark, bench_scale):
    d, m = 4, 4
    n = int(200 * bench_scale)
    schema = nba_schema(d, m)
    rows = nba_rows(n, d=d, m=m)

    def run():
        return [
            measure_latency(name, schema, rows, CONFIG, warmup=10)
            for name in ("baselineseq", "bottomup", "stopdown")
        ]

    profiles = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(latency_table(profiles))
    by_name = {p.algorithm: p for p in profiles}
    for fast in ("bottomup", "stopdown"):
        assert by_name[fast].p99 < by_name["baselineseq"].p99 * 2.0
        benchmark.extra_info[f"{fast}_p99"] = by_name[fast].p99
    benchmark.extra_info["baselineseq_p99"] = by_name["baselineseq"].p99
