"""Fig. 7 — BaselineSeq / BaselineIdx / C-CSC vs BottomUp / TopDown.

Paper claim: BottomUp and TopDown beat the baselines by orders of
magnitude and C-CSC by about one order of magnitude; all grow
superlinearly in d and m.  At Python scale we assert the ordering and a
healthy multiple rather than exact factors.
"""

from repro.experiments import figure7a, figure7b, figure7c

from conftest import run_figure


def test_fig7a_varying_n(benchmark, bench_scale):
    fig = run_figure(benchmark, figure7a, bench_scale)
    final = fig.final_values()
    # Paper ordering at the final checkpoint: baselines and C-CSC slower
    # than both incremental algorithms.
    fastest_incremental = min(final["bottomup"], final["topdown"])
    assert final["baselineseq"] > fastest_incremental
    assert final["ccsc"] > fastest_incremental


def test_fig7b_varying_d(benchmark, bench_scale):
    fig = run_figure(benchmark, figure7b, bench_scale)
    for series in fig.series:
        # Superlinear growth by d: the last point exceeds the first.
        assert series.ys[-1] > series.ys[0], series.label


def test_fig7c_varying_m(benchmark, bench_scale):
    fig = run_figure(benchmark, figure7c, bench_scale)
    for series in fig.series:
        assert series.ys[-1] > series.ys[0], series.label
    final = fig.final_values()
    assert final["ccsc"] > min(final["bottomup"], final["topdown"])
