"""Workload-shape ablation: how measure correlation moves the trade-offs.

Not a paper figure — the paper evaluates two real datasets only.  The
skyline literature's standard knob is measure correlation: correlated
data has tiny skylines, anti-correlated data huge ones.  That knob
stresses exactly the design choices DESIGN.md calls out:

* Invariant-1 storage (BottomUp) grows with skyline size — the
  bottom-up/top-down storage ratio should widen on anti-correlated data;
* tuple reduction saves more when skylines are small — BottomUp's
  comparison count should look best on correlated data.
"""

import pytest

from repro import DiscoveryConfig, make_algorithm
from repro.datasets import ANTICORRELATED, CORRELATED, INDEPENDENT, synthetic_rows, synthetic_schema

CONFIG = DiscoveryConfig(max_bound_dims=3)
N = 150


def _run(name, dist):
    schema = synthetic_schema(3, 3)
    rows = synthetic_rows(N, 3, 3, dist, cardinalities=[4, 4, 4], seed=5)
    algo = make_algorithm(name, schema, CONFIG)
    algo.process_stream(rows)
    return algo


def test_storage_ratio_widens_with_anticorrelation(benchmark):
    def run():
        out = {}
        for dist in (CORRELATED, INDEPENDENT, ANTICORRELATED):
            bu = _run("bottomup", dist)
            td = _run("topdown", dist)
            out[dist] = (bu.stored_tuple_count(), td.stored_tuple_count())
        return out

    stored = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    for dist, (bu, td) in stored.items():
        print(f"{dist:>14}: bottomup={bu:6d} topdown={td:6d} ratio={bu/td:.2f}")
    # Anti-correlated data (big skylines) stores the most, correlated
    # the least, for both families.
    assert stored[ANTICORRELATED][0] > stored[CORRELATED][0]
    assert stored[ANTICORRELATED][1] > stored[CORRELATED][1]


def test_comparisons_grow_with_skyline_size(benchmark):
    def run():
        return {
            dist: _run("sbottomup", dist).counters.comparisons
            for dist in (CORRELATED, INDEPENDENT, ANTICORRELATED)
        }

    comparisons = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    for dist, count in comparisons.items():
        print(f"{dist:>14}: comparisons={count:,}")
    assert comparisons[ANTICORRELATED] > comparisons[CORRELATED]


def test_fact_volume_by_distribution(benchmark):
    def run():
        out = {}
        for dist in (CORRELATED, INDEPENDENT, ANTICORRELATED):
            schema = synthetic_schema(3, 3)
            rows = synthetic_rows(N, 3, 3, dist, cardinalities=[4, 4, 4], seed=5)
            algo = make_algorithm("stopdown", schema, CONFIG)
            out[dist] = sum(len(fs) for fs in algo.process_stream(rows))
        return out

    volumes = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    for dist, count in volumes.items():
        print(f"{dist:>14}: facts={count:,}")
    # More skyline membership → more facts per arrival.
    assert volumes[ANTICORRELATED] > volumes[CORRELATED]
