"""Fig. 9 — the weather dataset, per-tuple time vs n.

Paper claim: same ordering as on NBA — C-CSC worst (it exhausted memory
shortly after 0.2 M tuples), sharing variants best.
"""

from repro.experiments import figure9

from conftest import run_figure


def test_fig9_weather_varying_n(benchmark, bench_scale):
    fig = run_figure(benchmark, figure9, bench_scale)
    final = fig.final_values()
    assert final["ccsc"] > final["sbottomup"]
    assert final["ccsc"] > final["stopdown"]
