"""Fig. 14 — number of prominent facts per window of tuples.

Paper claims: counts oscillate in a band (5–25 per 1 000 tuples at
τ=10³) with no downward trend, because new seasons and new players keep
forming fresh contexts that eventually reach the τ cardinality bar.
We assert selectivity (prominent facts ≪ tuples) and that late windows
still produce facts.
"""

from repro.experiments import figure14

from conftest import run_figure


def test_fig14_prominent_facts_per_window(benchmark, bench_scale):
    fig = run_figure(benchmark, figure14, bench_scale)
    (series,) = fig.series
    counts = series.ys
    assert counts, "expected at least one window"
    window = series.xs[1] - series.xs[0] if len(series.xs) > 1 else series.xs[0]
    # Selectivity: prominent facts are rare relative to arrivals.
    assert max(counts) < window
    # No collapse to permanent silence: the second half still reports.
    second_half = counts[len(counts) // 2 :]
    assert sum(second_half) > 0
