"""Fig. 10 — memory consumption and stored skyline-tuple counts.

Paper claims: BottomUp/SBottomUp store several times more tuple
references than TopDown/STopDown (which anchor each tuple only at its
maximal skyline constraints); the two members of each family store
identically; C-CSC sits near the top-down family.
"""

from repro.experiments import figure10a, figure10b

from conftest import run_figure


def test_fig10a_memory_bytes(benchmark, bench_scale):
    fig = run_figure(benchmark, figure10a, bench_scale)
    final = fig.final_values()
    assert final["bottomup"] > final["topdown"]
    assert final["sbottomup"] > final["stopdown"]


def test_fig10b_stored_tuples(benchmark, bench_scale):
    fig = run_figure(benchmark, figure10b, bench_scale)
    final = fig.final_values()
    # "BottomUp/SBottomUp stored several times more tuples than
    # TopDown/STopDown" — assert at least 2x at our scale.
    assert final["bottomup"] >= 2 * final["topdown"]
    # Same materialisation scheme within each family.
    assert final["bottomup"] == final["sbottomup"]
    assert final["topdown"] == final["stopdown"]
