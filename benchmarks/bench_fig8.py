"""Fig. 8 — C-CSC vs BottomUp / TopDown / SBottomUp / STopDown.

Paper claims: C-CSC is an order of magnitude slower; the bottom-up
family is faster than the top-down family (space-time trade-off); the
sharing variants beat their non-sharing counterparts, more so as d and m
grow.
"""

from repro.experiments import figure8a, figure8b, figure8c

from conftest import run_figure


def test_fig8a_varying_n(benchmark, bench_scale):
    fig = run_figure(benchmark, figure8a, bench_scale)
    final = fig.final_values()
    assert final["ccsc"] > final["sbottomup"]
    assert final["ccsc"] > final["stopdown"]
    # Space-time trade-off: bottom-up at least as fast as top-down.
    assert final["bottomup"] <= final["topdown"] * 1.5
    # Sharing helps the top-down family visibly.
    assert final["stopdown"] <= final["topdown"] * 1.1


def test_fig8b_varying_d(benchmark, bench_scale):
    fig = run_figure(benchmark, figure8b, bench_scale)
    for series in fig.series:
        assert series.ys[-1] > series.ys[0], series.label


def test_fig8c_varying_m(benchmark, bench_scale):
    fig = run_figure(benchmark, figure8c, bench_scale)
    final = fig.final_values()
    assert final["ccsc"] > final["stopdown"]
    for series in fig.series:
        assert series.ys[-1] > series.ys[0], series.label
