"""The PR-2 engine, pinned — the bitset-walker benches' slow contender.

PR 3 replaced three stages of per-arrival processing for ``svec``: the
per-(constraint, subspace) Python visit loop (now the bitset-matrix
walker), the per-fact object-annotating score path (now bulk column
annotation), and scalar retraction repair (now columnar).  To keep the
"how much faster is PR 3?" question answerable after the fast paths
became the default, :class:`PinnedPR2SVec` replays the PR-2 code for
all three stages on the shared store infrastructure:

* discovery takes the scalar per-visit passes
  (``use_bitset_walker = False``) with PR-2's ``_flush_repairs``
  (one ``delete`` plus per-child ``insert`` per demotion, the ancestor
  bitset folded from the set-based reverse index);
* scoring replays PR-2's sequence — a sizes dict keyed by fact pair
  from the scoring index, then a per-fact object annotation loop over
  the materialised ``SituationalFact`` objects — with PR-2's
  memo-less context-counter key derivation;
* retraction takes the scalar full-table repair
  (``use_columnar_retraction = False``).

Everything else (columnar store, dominance sweep, engine) is shared,
so the measured gap is exactly what PR 3's walker machinery buys.
"""

from repro.algorithms.s_vectorized import SVectorized
from repro.core.constraint import UNBOUND, Constraint
from repro.core.prominence import ColumnarContextCounter


class PR2ContextCounter(ColumnarContextCounter):
    """PR-2's interned-key counter: keys re-derived every registration
    (the dims-tuple memo postdates it)."""

    def _keys(self, dims):
        ids = self._intern(dims)
        positions = self._positions
        if UNBOUND in dims:
            keys = []
            for mask in self._masks:
                eff_mask = 0
                eff_ids = []
                for i in positions[mask]:
                    if dims[i] is not UNBOUND:
                        eff_mask |= 1 << i
                        eff_ids.append(ids[i])
                keys.append((eff_mask, tuple(eff_ids)))
            return keys
        return [
            (mask, tuple(ids[i] for i in positions[mask]))
            for mask in self._masks
        ]


class PinnedPR2SVec(SVectorized):
    """``svec`` as it shipped in PR 2 (see module docstring)."""

    name = "svec-pr2"
    use_bitset_walker = False
    use_columnar_retraction = False

    def make_context_counter(self, max_bound_dims=None):
        return PR2ContextCounter(self.schema.n_dimensions, max_bound_dims)

    def _flush_repairs(self, record, subspace, repairs, agree_list):
        store = self.store
        allowed = self.allowed_mask
        universe = self.dim_universe
        anc_tbl = self._anc_tbl
        record_at = store.record_at
        anchor_masks = store.anchor_masks
        for row, constraint in repairs:
            demoted = record_at(row)
            store.delete(constraint, subspace, demoted)
            mask = constraint.bound_mask
            cand = ~mask & ~int(agree_list[row]) & universe
            if not cand:
                continue
            ab = 0
            for anchor in anchor_masks(demoted.tid, subspace):
                ab |= 1 << anchor
            dims = demoted.dims
            cvalues = constraint.values
            while cand:
                bit = cand & -cand
                cand ^= bit
                child = mask | bit
                if not allowed(child):
                    continue
                j = bit.bit_length() - 1
                if dims[j] is UNBOUND:
                    continue
                tbl = anc_tbl.get(child)
                if tbl is None:
                    tbl = self._make_anc_row(child)
                if ab & tbl[j]:
                    continue
                child_values = list(cvalues)
                child_values[j] = dims[j]
                store.insert(
                    Constraint.from_values_mask(tuple(child_values), child),
                    subspace,
                    demoted,
                )
                ab |= 1 << child

    def score_facts_inplace(self, facts, counter):
        sizes = {}
        index = self.store.scoring_index()
        if index is None:
            return False
        dims = facts.record.dims
        mask_keys = self.store.mask_keys
        key_cache = {}
        shift = self.store.score_shift
        for fact in facts:
            constraint, subspace = fact.constraint, fact.subspace
            table = index.get((subspace << shift) | constraint.bound_mask)
            if not table:
                sizes[(constraint, subspace)] = 0
                continue
            key = key_cache.get(constraint.bound_mask)
            if key is None:
                key = mask_keys[constraint.bound_mask](dims)
                key_cache[constraint.bound_mask] = key
            sizes[(constraint, subspace)] = table.get(key, 0)
        count_cache = {}
        for fact in facts:
            constraint = fact.constraint
            size = count_cache.get(constraint)
            if size is None:
                size = counter.count(constraint)
                count_cache[constraint] = size
            fact.context_size = size
            fact.skyline_size = sizes[(constraint, fact.subspace)]
        return True
