"""Remote shard cluster: socket workers vs process pipes, replica fan-out.

Not a paper figure — this repo's cluster-tier bench (PR 9).  The remote
mode promotes the process-worker pipe protocol to a length-prefixed,
CRC-framed socket protocol (``repro/service/remote.py``) so shard pools
can leave the router's process tree; the price is pickling into a real
socket instead of a pipe.  Two cells quantify that price:

* ``cluster``  — marginal per-tuple scored ingestion through two
  socket workers (each its own OS process, loopback TCP) vs the same
  stream through two supervised pipe workers on the same box.  The
  protocols carry identical payloads, so the ratio isolates the socket
  framing; it must stay within ``SOCKET_MULTIPLE`` (the PR-9
  acceptance bound), and the measured stream must stay
  property-identical between the modes.
* ``fanout``   — a burst of ``skyband`` push-down reads scattered over
  a two-replica set (:meth:`ReplicaSet.fanout`) vs the same burst
  serially against one replica.  Replicas answer reads independently,
  so the scatter must never cost more than the serial pass
  (``FANOUT_MULTIPLE`` noise ceiling) and should approach 2× on two
  free CPUs.

Run with ``pytest benchmarks/bench_cluster.py -s``; results land in
``BENCH_PR9.json`` (uploaded as a CI artifact).  ``REPRO_BENCH_SCALE``
enlarges the workloads.
"""

import gc
import os
import time
from contextlib import contextmanager

import pytest

from repro.core.constraint import UNBOUND
from repro.datasets.synthetic import synthetic_rows, synthetic_schema
from repro.service import ShardedDiscoverer
from repro.service.remote import run_worker

from _results import update_results

N, D, M = 1200, 4, 4
CHUNK = 150
CHUNKS = 4

#: Remote socket ingestion may cost at most this multiple of the
#: process-pipe mode on the same box (the PR-9 acceptance criterion).
#: Both modes pickle the same chunk payloads and pipeline identically;
#: the delta is frame headers + CRC + loopback TCP, measured ~1.0-1.1x.
SOCKET_MULTIPLE = 1.3

#: A read burst scattered over two replicas may cost at most this
#: multiple of the serial single-replica pass — fan-out must never be
#: a pessimisation, and approaches 0.5x with two free CPUs.
FANOUT_MULTIPLE = 1.25

#: Reads per replica-fan-out burst.
BURST = 24


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@contextmanager
def socket_workers(count):
    """``count`` socket shard-workers, one OS process each (the real
    deployment shape — loopback TCP, separate GILs)."""
    import multiprocessing as mp

    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    ctx = mp.get_context(method)
    processes, addresses = [], []
    try:
        for _ in range(count):
            ready = ctx.Queue()
            process = ctx.Process(
                target=run_worker,
                args=("127.0.0.1", 0, ready, False),
                daemon=True,
            )
            process.start()
            addresses.append(f"127.0.0.1:{ready.get(timeout=30)}")
            processes.append(process)
        yield addresses
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)


def reportable_keys(lists):
    return [
        [(f.constraint.values, f.subspace, f.prominence) for f in facts]
        for facts in lists
    ]


def test_remote_marginal_within_process_budget(bench_scale):
    """Socket-worker ingestion ≤ 1.3× pipe-worker ingestion, same output."""
    n = int(N * bench_scale)
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(
        n + CHUNK * CHUNKS, D, M, distribution="anticorrelated"
    )
    warm, tail = rows[:n], rows[n:]
    chunks = [tail[i * CHUNK : (i + 1) * CHUNK] for i in range(CHUNKS)]

    def measure():
        with socket_workers(2) as addresses:
            remote = ShardedDiscoverer(
                schema,
                remote={"0": addresses[:1], "1": addresses[1:]},
                chunk_size=CHUNK,
            )
            process = ShardedDiscoverer(
                schema, n_workers=2, mode="process", chunk_size=CHUNK
            )
            try:
                remote.facts_for_many(warm)
                process.facts_for_many(warm)
                remote_times, process_times = [], []
                mismatches = 0
                gc_was_enabled = gc.isenabled()
                gc.disable()
                try:
                    for chunk in chunks:
                        start = time.perf_counter()
                        expected = process.observe_many(chunk)
                        process_times.append(time.perf_counter() - start)
                        start = time.perf_counter()
                        got = remote.observe_many(chunk)
                        remote_times.append(time.perf_counter() - start)
                        if reportable_keys(got) != reportable_keys(expected):
                            mismatches += 1
                finally:
                    if gc_was_enabled:
                        gc.enable()
                counters_equal = (
                    remote.counters.snapshot() == process.counters.snapshot()
                )
                clean = (
                    remote.fault_counters()["replica_failovers"] == 0
                    and not remote.degraded
                )
            finally:
                remote.close()
                process.close()
        return {
            "process_s": min(process_times) / CHUNK,
            "remote_s": min(remote_times) / CHUNK,
            "mismatches": mismatches,
            "counters_equal": counters_equal,
            "clean": clean,
        }

    cell = measure()
    ratio = cell["remote_s"] / cell["process_s"]
    if ratio > SOCKET_MULTIPLE:  # one retry: scheduler bursts happen
        retry = measure()
        if retry["remote_s"] / retry["process_s"] < ratio:
            retry["mismatches"] += cell["mismatches"]
            retry["counters_equal"] &= cell["counters_equal"]
            retry["clean"] &= cell["clean"]
            cell = retry
            ratio = cell["remote_s"] / cell["process_s"]
    process_ms = 1e3 * cell["process_s"]
    remote_ms = 1e3 * cell["remote_s"]
    cpus = usable_cpus()
    print()
    print(
        f"scored observe_many marginal per-tuple latency @ n={n} d={D} "
        f"m={M} (anticorrelated), {cpus} usable CPUs"
    )
    print(f"  process (2 pipe workers)    {process_ms:>9.3f} ms")
    print(f"  remote  (2 socket workers)  {remote_ms:>9.3f} ms")
    print(f"  remote/process {ratio:.2f}x (ceiling {SOCKET_MULTIPLE}x)")
    update_results(
        "cluster",
        {
            "process_ms": round(process_ms, 4),
            "remote_ms": round(remote_ms, 4),
            "remote_over_process": round(ratio, 3),
            "ceiling": SOCKET_MULTIPLE,
            "workers": 2,
            "cpus": cpus,
        },
        filename="BENCH_PR9.json",
    )
    update_results(
        "meta",
        {"n": n, "d": D, "m": M, "distribution": "anticorrelated"},
        filename="BENCH_PR9.json",
    )
    assert cell["mismatches"] == 0, (
        "remote output diverged from the process-mode engine on "
        f"{cell['mismatches']} measured chunk(s)"
    )
    assert cell["counters_equal"], (
        "remote op-counter totals diverged from the process-mode engine"
    )
    assert cell["clean"], (
        "the remote pool failed over or degraded during the measurement "
        "— the numbers would mix recovery cost into protocol overhead"
    )
    assert ratio <= SOCKET_MULTIPLE, (
        f"socket-worker ingestion costs {ratio:.2f}x the pipe workers "
        f"(ceiling {SOCKET_MULTIPLE}x) — something expensive has crept "
        f"into the frame path (repro/service/remote.py); see "
        f"bench_guard.py::test_socket_frame_overhead_stays_marginal for "
        f"the protocol-only isolation"
    )


def test_replica_fanout_scales_reads(bench_scale):
    """A skyband burst over 2 replicas ≤ the serial single-replica pass."""
    n = int(600 * bench_scale)
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(n, D, M, distribution="anticorrelated")
    full = (1 << M) - 1
    values = [
        (f"v{v}",) + (UNBOUND,) * (D - 1) for v in range(6)
    ]
    with socket_workers(2) as addresses:
        engine = ShardedDiscoverer(
            schema, remote={"0": addresses}, chunk_size=CHUNK
        )
        try:
            engine.facts_for_many(rows)
            replica_set = engine._workers[0]
            calls = [
                (lambda w, v=values[i % len(values)]: w.request(
                    "skyband", (v, full, 2, None)
                ))
                for i in range(BURST)
            ]
            primary = replica_set._replicas[0]

            def serial_pass():
                start = time.perf_counter()
                out = [call(primary) for call in calls]
                return time.perf_counter() - start, out

            def fanout_pass():
                start = time.perf_counter()
                out = replica_set.fanout(calls)
                return time.perf_counter() - start, out

            serial_s, serial_out = min(serial_pass() for _ in range(3))
            fanout_s, fanout_out = min(fanout_pass() for _ in range(3))
            assert fanout_out == serial_out, (
                "replica fan-out answers diverged from the primary's — "
                "replicas are out of lockstep"
            )
        finally:
            engine.close()
    ratio = fanout_s / serial_s
    cpus = usable_cpus()
    print()
    print(
        f"{BURST}-read skyband burst @ n={n}: "
        f"serial(1 replica)={1e3 * serial_s:.1f}ms "
        f"fanout(2 replicas)={1e3 * fanout_s:.1f}ms "
        f"ratio={ratio:.2f}x (ceiling {FANOUT_MULTIPLE}x), {cpus} CPUs"
    )
    update_results(
        "fanout",
        {
            "burst": BURST,
            "serial_ms": round(1e3 * serial_s, 3),
            "fanout_ms": round(1e3 * fanout_s, 3),
            "fanout_over_serial": round(ratio, 3),
            "ceiling": FANOUT_MULTIPLE,
            "replicas": 2,
            "cpus": cpus,
        },
        filename="BENCH_PR9.json",
    )
    if cpus < 2:
        pytest.skip(
            f"read fan-out needs >= 2 usable CPUs to run the replicas in "
            f"parallel (have {cpus}); numbers recorded, ratio not asserted"
        )
    assert ratio <= FANOUT_MULTIPLE, (
        f"scattering the read burst over 2 replicas costs {ratio:.2f}x "
        f"the serial pass (ceiling {FANOUT_MULTIPLE}x) — fan-out has "
        f"become a pessimisation (repro/service/cluster.py)"
    )
