"""Vectorization regression guard for the NumPy hot paths.

Future PRs must not silently de-vectorize the columnar engine: a change
that pushes ``svec``'s inner loops back into per-tuple Python shows up
as an order-of-magnitude latency jump that the equivalence tests cannot
see (they check outputs, not wall-clock) and the operation counters
cannot see either (the counting convention is deliberately
vectorization-blind — see ``repro/metrics/counters.py``).

The guard compares marginal per-tuple latency against ``baselinevec``,
the minimal NumPy-sweep algorithm: ``svec`` does strictly more per
arrival (store maintenance, demotion repair), so a *generous* multiple
of ``baselinevec`` is a stable ceiling across machines — scalar
``stopdown`` sits far above it on this workload, so a de-vectorized
``svec`` trips the bound with a wide margin on any hardware.  Two more
ratio tripwires cover the scored path (vs the unscored one) and the
PR-3 bitset lattice walker (vs the pinned PR-2 per-visit pass).

The ratio guards write their measurements into ``BENCH_PR3.json``, the
journal-overhead guard into ``BENCH_PR6.json``, the sweep-index guard
into ``BENCH_PR7.json``, and the socket-protocol guard into
``BENCH_PR9.json`` (all uploaded as CI artifacts) so the perf
trajectory is tracked as data.

Run with ``pytest benchmarks/bench_guard.py``; part of the bench suite,
not of tier-1 (timing asserts do not belong in unit CI).
"""

import gc
import random
import socket
import tempfile
import threading
import time

import numpy as np

from repro import Constraint, DiscoveryConfig, FactDiscoverer, make_algorithm
from repro.algorithms.s_vectorized import SVectorized
from repro.api import EngineSpec, FeedSpec, open_engine
from repro.core.constraint import UNBOUND
from repro.datasets.synthetic import synthetic_rows, synthetic_schema
from repro.query.contextual import ContextualQueryEngine
from repro.service.feeds import FeedStore
from repro.service.journal import JournalWriter
from repro.service.remote import recv_msg, send_msg

from _results import update_results
from pinned_pr2 import PinnedPR2SVec

#: Default scale of the guard workload (matches bench_columnar DEFAULT).
N, D, M = 2000, 4, 4
PROBE = 100

#: svec may cost at most this multiple of baselinevec per tuple.  The
#: measured ratio is ~2x; a de-vectorized svec lands at ~12x (scalar
#: stopdown territory), so 6x separates the regimes with slack on both
#: sides.
GENEROUS_MULTIPLE = 6.0

#: Scoring may cost at most this multiple of unscored ingestion per
#: tuple.  With the store's incremental skyline-cardinality index the
#: measured ratio is ~1.4x; falling back to the scalar Invariant-2
#: sweep lands at ~4x and grows with n, so 2.5x separates the regimes.
SCORED_MULTIPLE = 2.5

#: The write-ahead journal (fsync="never") may add at most this
#: fraction to the scored ``observe_many`` marginal.  The append is a
#: buffered JSON+CRC frame write per row plus one flush per batch —
#: microseconds against a millisecond-scale discovery marginal.
JOURNAL_OVERHEAD = 0.05

#: The indexed dominance partition may cost at most this fraction of
#: the dense per-arrival sweep at n=10k.  The indexed walker consumes
#: *packed* prefix partitions — rank lookups into the sorted measure
#: orderings, pre-packed suffix bitsets and posting-bitset ANDs, a few
#: hundred uint64 words — plus a dense pass over the short un-folded
#: suffix, while the dense sweep re-compares all n stored rows per
#: probe.  Measured ~0.05-0.2x; an index that silently stops
#: short-circuiting the prefix lands at ~1x.
SWEEP_INDEX_FRACTION = 0.6

#: The bitset lattice walker may cost at most this fraction of the
#: pinned PR-2 per-visit pass per tuple.  Measured ~0.55-0.7x; a walker
#: that silently falls back to the scalar pass lands at ~1x (it *is*
#: the scalar pass plus walker bookkeeping), so 0.85x separates the
#: regimes hardware-independently.
WALKER_FRACTION = 0.85

#: The columnar k-skyband kernel may cost at most this fraction of the
#: scalar double loop at n=10k.  The kernel is one chunked dominance-
#: count reduction over the selection; the scalar path re-walks the
#: whole context per member.  Measured ~0.03-0.05x; a kernel that
#: silently falls back to the scalar loop lands at ~1x, so 0.5x
#: separates the regimes on any hardware.
SKYBAND_FRACTION = 0.5

#: One framed round-trip of a PROBE-row ``rows`` chunk over the remote
#: shard wire protocol may cost at most this fraction of the svec
#: compute the chunk buys.  The frame is one pickle + one CRC + one
#: ``sendall`` per direction — measured ~0.002x; a protocol that frames
#: per row, re-pickles payloads, or copies bodies lands an order of
#: magnitude higher.
SOCKET_FRAME_FRACTION = 0.05

#: A fully cached repeat read pass may cost at most this fraction of
#: the uncached first pass.  A hit is an LRU probe plus a list copy
#: against a kernel reduction over thousands of rows — measured
#: ~0.005x; a cache that silently stops hitting (key drift, version
#: mismatches) lands at ~1x.
CACHE_FRACTION = 0.1

#: Folding an arrival's facts into the materialized feeds (PR 10) may
#: cost at most this fraction of discovering them.  The fold is
#: O(|S_t|) dict upserts against shared per-constraint context cells
#: plus an O(2^d̂) silent-satisfier pass — measured ~0.03-0.04x; a fold
#: that re-ranks segments per arrival, loses the constraint interning,
#: or walks per-pair context updates lands well above 0.05x and grows
#: with segment size.
FEED_FOLD_FRACTION = 0.05


def _marginal(name, schema, warm, probe):
    algo = make_algorithm(name, schema)
    algo.process_many(warm)
    start = time.perf_counter()
    algo.process_many(probe)
    return (time.perf_counter() - start) / len(probe)


def test_svec_stays_vectorized():
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(N + PROBE, D, M, distribution="anticorrelated")
    warm, probe = rows[:N], rows[N:]
    base = _marginal("baselinevec", schema, warm, probe)
    svec = _marginal("svec", schema, warm, probe)
    ratio = svec / base
    print(
        f"\nper-tuple @ n={N}: baselinevec={1e3 * base:.3f}ms "
        f"svec={1e3 * svec:.3f}ms ratio={ratio:.2f}x "
        f"(ceiling {GENEROUS_MULTIPLE}x)"
    )
    update_results(
        "guard",
        {
            "baselinevec_ms": round(1e3 * base, 4),
            "svec_ms": round(1e3 * svec, 4),
            "svec_over_baselinevec": round(ratio, 2),
        },
    )
    assert ratio <= GENEROUS_MULTIPLE, (
        f"svec costs {ratio:.1f}x baselinevec per tuple (ceiling "
        f"{GENEROUS_MULTIPLE}x) — the sharing engine has likely been "
        f"de-vectorized; see benchmarks/bench_columnar.py for the "
        f"full head-to-head"
    )


def test_lattice_walker_stays_vectorized():
    """The bitset-matrix lattice walker must not fall back to the
    per-visit scalar pass.

    The pinned PR-2 engine runs the same sweep and store machinery but
    walks the lattice one (constraint, subspace) visit at a time with
    per-call store mutations; the walker answers whole passes with
    bitset-matrix reductions and grouped mutations.  A change that
    silently routes arrivals to the fallback (or de-vectorizes the
    walker internals) pushes the ratio to ~1x, which this ceiling
    catches hardware-independently.
    """
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(N + PROBE, D, M, distribution="anticorrelated")
    warm, probe = rows[:N], rows[N:]

    def measure():
        pr2 = PinnedPR2SVec(schema)
        pr2.process_many(warm)
        start = time.perf_counter()
        pr2.process_many(probe)
        pr2_marginal = (time.perf_counter() - start) / len(probe)
        walker = _marginal("svec", schema, warm, probe)
        return walker / pr2_marginal, walker, pr2_marginal

    ratio, walker, pr2_marginal = measure()
    if ratio > WALKER_FRACTION:  # one retry: scheduler bursts happen
        retry = measure()
        if retry[0] < ratio:
            ratio, walker, pr2_marginal = retry
    print(
        f"\nper-tuple @ n={N}: pr2-pass={1e3 * pr2_marginal:.3f}ms "
        f"walker={1e3 * walker:.3f}ms ratio={ratio:.2f}x "
        f"(ceiling {WALKER_FRACTION}x)"
    )
    update_results(
        "guard",
        {
            "walker_ms": round(1e3 * walker, 4),
            "pr2_pass_ms": round(1e3 * pr2_marginal, 4),
            "walker_over_pr2_pass": round(ratio, 2),
        },
    )
    assert ratio <= WALKER_FRACTION, (
        f"the bitset lattice walker costs {ratio:.2f}x the pinned PR-2 "
        f"per-visit pass (ceiling {WALKER_FRACTION}x) — the walk has "
        f"likely fallen back to scalar; see benchmarks/bench_lattice.py "
        f"for the full stage isolation"
    )


def test_sweep_index_stays_sublinear():
    """The PR-7 sweep index must keep beating the dense dominance sweep
    — and must keep matching it bit for bit.

    One deletion-heavy anticorrelated stream (every 6th arrival
    retracts a random live tuple, so tombstones, anchor invalidation
    and deferred compaction are all in play) warms a single ``svec``
    store to n=10k.  Probe records then time the store's
    ``partition_bitmasks`` with the index active vs the dense fallback
    on the *same* store, asserting both the latency fraction and exact
    array equality of the lt/gt/agree columns.
    """
    n, probes = 10_000, 60
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(
        n + probes, D, M, distribution="anticorrelated", seed=29
    )
    algo = SVectorized(schema, sweep_index="on")
    rng = random.Random(31)
    live = []
    for i, row in enumerate(rows[:n]):
        algo.process(row)
        live.append(i)
        if i % 6 == 5 and len(live) > 2:
            algo.retract(live.pop(rng.randrange(len(live))))
    store = algo.store
    sweep = store.sweep_index()
    assert sweep is not None and sweep.active, (
        "sweep index never activated on a 10k stream — the fold "
        "trigger is broken"
    )
    records = [algo.table.make_record(row) for row in rows[n:]]
    probes = [
        (np.asarray(r.values, dtype=np.float64), store.intern_dims(r.dims))
        for r in records
    ]

    def measure():
        # Time the probe work the indexed walker consumes per arrival:
        # packed per-measure partitions, posting-bitset lookups per
        # bound dimension, and the dense pass over the un-folded suffix.
        w, total = sweep.watermark, store.n_rows
        start = time.perf_counter()
        for values, dims in probes:
            sweep.measure_partitions(values)
            for j, vid in enumerate(dims):
                sweep.posting(j, int(vid))
            store.partition_suffix(values, dims, w, total)
        indexed = (time.perf_counter() - start) / len(probes)
        store._sweep = None  # pin the dense sweep on the same store
        try:
            start = time.perf_counter()
            for r in records:
                store.partition_bitmasks(r)
            dense = (time.perf_counter() - start) / len(records)
        finally:
            store._sweep = sweep
        return indexed, dense

    # Exactness first: the full indexed reconstruction must equal the
    # dense sweep bit for bit on every probe (untimed — reconstruction
    # unpacks to dense columns, which the walker itself never pays for).
    for r in records:
        got = store.partition_bitmasks(r)
        store._sweep = None
        try:
            want = store.partition_bitmasks(r)
        finally:
            store._sweep = sweep
        for g, w in zip(got, want):
            assert np.array_equal(g, w), (
                "indexed partition_bitmasks diverged from the dense "
                "sweep under a deletion-heavy stream — the index is "
                "returning stale or mis-invalidated partitions"
            )

    indexed, dense = measure()
    ratio = indexed / dense
    if ratio > SWEEP_INDEX_FRACTION:  # one retry: scheduler bursts
        retry = measure()
        if retry[0] / retry[1] < ratio:
            indexed, dense = retry
            ratio = indexed / dense
    print(
        f"\nper-probe @ n={n} (deletion-heavy): dense={1e3 * dense:.3f}ms "
        f"indexed={1e3 * indexed:.3f}ms ratio={ratio:.2f}x "
        f"(ceiling {SWEEP_INDEX_FRACTION}x)"
    )
    update_results(
        "sweep_guard",
        {
            "n": n,
            "dense_ms": round(1e3 * dense, 4),
            "indexed_ms": round(1e3 * indexed, 4),
            "indexed_over_dense": round(ratio, 2),
            "ceiling": SWEEP_INDEX_FRACTION,
            "watermark": sweep.watermark,
            "folds": sweep.folds,
        },
        filename="BENCH_PR7.json",
    )
    assert ratio <= SWEEP_INDEX_FRACTION, (
        f"indexed dominance partition costs {ratio:.2f}x the dense sweep "
        f"per probe (ceiling {SWEEP_INDEX_FRACTION}x) — the stable-prefix "
        f"short-circuit has likely regressed; see "
        f"benchmarks/bench_lattice.py::test_sweep_index_marginal_near_flat"
    )


def _marginal_scored(schema, warm, probe, score):
    engine = FactDiscoverer(schema, algorithm="svec", score=score)
    engine.facts_for_many(warm)
    start = time.perf_counter()
    engine.facts_for_many(probe)
    return (time.perf_counter() - start) / len(probe)


def test_scored_observe_many_stays_vectorized():
    """Scored batch ingestion must stay on the columnar scoring path.

    Prominence evaluation rides the store's incremental index; if a
    change silently sends ``skyline_sizes`` back to the per-(tuple,
    anchor, supermask) Python sweep — or the engine off the batched
    path — scoring stops being a modest surcharge on discovery and
    shows up here as a multiple of the unscored marginal latency.
    """
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(N + PROBE, D, M, distribution="anticorrelated")
    warm, probe = rows[:N], rows[N:]
    unscored = _marginal_scored(schema, warm, probe, score=False)
    scored = _marginal_scored(schema, warm, probe, score=True)
    ratio = scored / unscored
    if ratio > SCORED_MULTIPLE * 0.8:  # one retry: scheduler bursts
        unscored2 = _marginal_scored(schema, warm, probe, score=False)
        scored2 = _marginal_scored(schema, warm, probe, score=True)
        if scored2 / unscored2 < ratio:
            unscored, scored = unscored2, scored2
            ratio = scored / unscored
    print(
        f"\nper-tuple @ n={N}: unscored={1e3 * unscored:.3f}ms "
        f"scored={1e3 * scored:.3f}ms ratio={ratio:.2f}x "
        f"(ceiling {SCORED_MULTIPLE}x)"
    )
    update_results(
        "guard",
        {
            "unscored_ms": round(1e3 * unscored, 4),
            "scored_ms": round(1e3 * scored, 4),
            "scored_over_unscored": round(ratio, 2),
        },
    )
    assert ratio <= SCORED_MULTIPLE, (
        f"scored observe_many costs {ratio:.1f}x the unscored path per "
        f"tuple (ceiling {SCORED_MULTIPLE}x) — prominence scoring has "
        f"likely been de-vectorized; see benchmarks/bench_scoring.py "
        f"for the full head-to-head"
    )


def _journaled_marginals(schema, warm, probe, journal, batch=64):
    """One journaled scored-ingestion run with the server's discipline
    (one framed append per row, one commit per micro-batch), timing the
    discovery and journal portions separately *within the same run* —
    self-paired, so scheduler/cache noise cancels instead of swamping a
    microsecond-scale signal."""
    engine = FactDiscoverer(schema, algorithm="svec", score=True)
    engine.facts_for_many(warm)
    discovery = journaling = 0.0
    for lo in range(0, len(probe), batch):
        chunk = probe[lo : lo + batch]
        start = time.perf_counter()
        engine.facts_for_many(chunk)
        mid = time.perf_counter()
        for row in chunk:
            journal.append_ingest(row)
        journal.commit()
        discovery += mid - start
        journaling += time.perf_counter() - mid
    return discovery / len(probe), journaling / len(probe)


def test_journal_overhead_within_budget():
    """The WAL must stay off the discovery hot path.

    With ``fsync="never"`` a journal append is a buffered write; if a
    change drags per-row serialization, framing, or an accidental
    fsync/flush into the loop, journaled ingestion stops being free and
    trips the 5% budget.  Best-of-3 damps scheduler noise (the signal
    is a few microseconds against a millisecond marginal).
    """
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(N + PROBE, D, M, distribution="anticorrelated")
    warm, probe = rows[:N], rows[N:]
    best = None
    for _ in range(3):
        with tempfile.TemporaryDirectory() as wal:
            with JournalWriter(wal, fsync="never") as journal:
                pair = _journaled_marginals(schema, warm, probe, journal)
        if best is None or pair[1] / pair[0] < best[1] / best[0]:
            best = pair
    best_off, journal_cost = best
    best_on = best_off + journal_cost
    overhead = journal_cost / best_off
    print(
        f"\nper-tuple @ n={N}: journal-off={1e3 * best_off:.3f}ms "
        f"journal-on={1e3 * best_on:.3f}ms overhead={100 * overhead:.1f}% "
        f"(budget {100 * JOURNAL_OVERHEAD:.0f}%)"
    )
    update_results(
        "journal_guard",
        {
            "journal_off_ms": round(1e3 * best_off, 4),
            "journal_on_ms": round(1e3 * best_on, 4),
            "overhead_pct": round(100 * overhead, 2),
            "budget_pct": 100 * JOURNAL_OVERHEAD,
        },
        filename="BENCH_PR6.json",
    )
    assert overhead <= JOURNAL_OVERHEAD, (
        f"journaled scored observe_many costs {100 * overhead:.1f}% over "
        f"the unjournaled marginal (budget {100 * JOURNAL_OVERHEAD:.0f}%) "
        f"— something expensive (fsync? re-serialization?) has crept "
        f"into the per-row append path"
    )


def test_socket_frame_overhead_stays_marginal():
    """The remote shard wire protocol must stay off the compute hot path.

    Socket workers (PR 9) pay pickle + CRC32 + framing per chunk; the
    parity tests pin the answers but cannot see the protocol getting
    expensive (per-row frames, double pickling, body copies) — only
    wall-clock can.  One framed round-trip of a PROBE-row ``rows``
    chunk (request out, full payload echoed back — twice what a real
    reply carries, so conservative) is timed over a socketpair, no
    real network in the loop, against the svec compute the chunk buys.
    """
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(N + PROBE, D, M, distribution="anticorrelated")
    warm, probe = rows[:N], rows[N:]
    chunk_compute = _marginal("svec", schema, warm, probe) * len(probe)

    rounds, batches = 10, 3
    left, right = socket.socketpair()
    try:

        def echo():
            for _ in range(rounds * batches):
                _op, payload = recv_msg(right)
                send_msg(right, "ok", payload)

        thread = threading.Thread(target=echo, daemon=True)
        thread.start()
        best = None
        for _ in range(batches):
            start = time.perf_counter()
            for _ in range(rounds):
                send_msg(left, "rows", probe)
                recv_msg(left)
            took = (time.perf_counter() - start) / rounds
            if best is None or took < best:
                best = took
        thread.join(timeout=10)
    finally:
        left.close()
        right.close()
    ratio = best / chunk_compute
    print(
        f"\n{PROBE}-row chunk @ n={N}: frame-roundtrip={1e3 * best:.3f}ms "
        f"svec-compute={1e3 * chunk_compute:.1f}ms ratio={ratio:.4f}x "
        f"(ceiling {SOCKET_FRAME_FRACTION}x)"
    )
    update_results(
        "cluster_guard",
        {
            "chunk_rows": PROBE,
            "frame_roundtrip_ms": round(1e3 * best, 4),
            "chunk_compute_ms": round(1e3 * chunk_compute, 3),
            "roundtrip_over_compute": round(ratio, 4),
            "ceiling": SOCKET_FRAME_FRACTION,
        },
        filename="BENCH_PR9.json",
    )
    assert ratio <= SOCKET_FRAME_FRACTION, (
        f"one framed chunk round-trip costs {ratio:.3f}x the chunk's "
        f"svec compute (ceiling {SOCKET_FRAME_FRACTION}x) — something "
        f"expensive has crept into the wire protocol "
        f"(repro/service/remote.py); see benchmarks/bench_cluster.py "
        f"for the end-to-end socket-vs-pipe comparison"
    )


def test_skyband_kernel_stays_columnar():
    """The k-skyband read path must not fall back to the scalar loop.

    ``ContextualQueryEngine.skyband`` answers through one chunked
    dominance-count reduction (``repro/query/kernels.py``); the
    equivalence tests pin its output against the ``use_kernels=False``
    double loop but cannot see a silent fallback — only wall-clock can.
    One probe over a ~n/8-row one-bound context at n=10k separates the
    regimes by ~20x.
    """
    n, probes = 10_000, 2
    schema = synthetic_schema(D, M)
    algo = make_algorithm("svec", schema)
    algo.process_many(
        synthetic_rows(n, D, M, distribution="anticorrelated")
    )
    constraint = Constraint(("v1",) + (UNBOUND,) * (D - 1))
    full = (1 << M) - 1

    def measure(use_kernels):
        queries = ContextualQueryEngine(algo, use_kernels=use_kernels)
        best = None
        for _ in range(probes):
            start = time.perf_counter()
            out = queries.skyband(constraint, full, 2)
            took = time.perf_counter() - start
            if best is None or took < best[0]:
                best = (took, sorted(r.tid for r in out))
        return best

    kernel_s, kernel_tids = measure(True)
    scalar_s, scalar_tids = measure(False)
    assert kernel_tids == scalar_tids
    ratio = kernel_s / scalar_s
    print(
        f"\nskyband @ n={n}: kernels={1e3 * kernel_s:.1f}ms "
        f"scalar={1e3 * scalar_s:.1f}ms ratio={ratio:.3f}x "
        f"(ceiling {SKYBAND_FRACTION}x)"
    )
    update_results(
        "read_guard",
        {
            "skyband_kernels_ms": round(1e3 * kernel_s, 3),
            "skyband_scalar_ms": round(1e3 * scalar_s, 3),
            "kernels_over_scalar": round(ratio, 4),
        },
        filename="BENCH_PR8.json",
    )
    assert ratio <= SKYBAND_FRACTION, (
        f"columnar skyband costs {ratio:.2f}x the scalar loop (ceiling "
        f"{SKYBAND_FRACTION}x) — the read kernels have likely stopped "
        f"vectorizing; see benchmarks/bench_query.py for the full sweep"
    )


def test_query_cache_repeats_stay_free():
    """A cached repeat read must stay a cache probe, not a recompute.

    The correctness tests pin cached answers against plain engines but
    cannot see a cache that recomputes on every probe (key drift, a
    version function that never matches) — the answers stay right and
    only wall-clock changes.  Best-of-3 on the repeat pass damps
    scheduler noise against a sub-millisecond signal.
    """
    n = 2000
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(n, D, M, distribution="anticorrelated")
    constraints = [
        Constraint((f"v{v}",) + (UNBOUND,) * (D - 1)) for v in range(8)
    ]
    full = (1 << M) - 1
    spec = EngineSpec(schema, "svec", DiscoveryConfig(), query_cache=64)

    def read_pass(queries):
        start = time.perf_counter()
        for constraint in constraints:
            queries.skyband(constraint, full, 2)
        return time.perf_counter() - start

    with open_engine(spec) as engine:
        engine.observe_many(rows)
        queries = engine.query()
        uncached = read_pass(queries)
        cached = min(read_pass(queries) for _ in range(3))
        counters = engine.query_cache_counters()
    assert counters["hits"] >= 3 * len(constraints), counters
    ratio = cached / uncached
    print(
        f"\n{len(constraints)} reads @ n={n}: uncached={1e3 * uncached:.1f}ms "
        f"cached={1e3 * cached:.3f}ms ratio={ratio:.4f}x "
        f"(ceiling {CACHE_FRACTION}x)"
    )
    update_results(
        "read_guard",
        {
            "cache_uncached_ms": round(1e3 * uncached, 3),
            "cache_repeat_ms": round(1e3 * cached, 4),
            "cached_over_uncached": round(ratio, 4),
        },
        filename="BENCH_PR8.json",
    )
    assert ratio <= CACHE_FRACTION, (
        f"cached repeat pass costs {ratio:.2f}x the uncached pass "
        f"(ceiling {CACHE_FRACTION}x) — the result cache has likely "
        f"stopped hitting; see benchmarks/bench_query.py"
    )


def _feed_fold_marginals(schema, warm, probe):
    """(discover_s, fold_s) over one probe pass, same stream/run.

    The two phases are timed inside a single ingest loop so the ratio
    is immune to the run-to-run wall-clock variance that dominates A/B
    comparisons at this scale; the cyclic GC is paused for the probe so
    collection pauses (whose cost scales with the *whole* live heap,
    feeds or not) don't land in whichever phase happens to allocate the
    triggering object.
    """
    engine = open_engine(EngineSpec(schema=schema, score=True))
    # Cap sized above the workload's tracked-pair working set: eviction
    # churn is a cap-sizing policy cost (measured as data in
    # bench_feeds.py), not part of the fold mechanism this guard pins.
    store = FeedStore(
        schema,
        engine.config,
        FeedSpec(group_by=(schema.dimensions[0],), max_entries=1 << 20),
    )
    for row in warm:
        factset = engine.facts_for(row)
        store.apply_event(factset.record, factset)
    gc.collect()
    gc.disable()
    try:
        discover = fold = 0.0
        for row in probe:
            t0 = time.perf_counter()
            factset = engine.facts_for(row)
            t1 = time.perf_counter()
            store.apply_event(factset.record, factset)
            discover += t1 - t0
            fold += time.perf_counter() - t1
    finally:
        gc.enable()
    return discover, fold


def test_feed_fold_overhead_stays_marginal():
    """Materialized feed maintenance must stay off the ingest hot path.

    The parity tests pin the feed contents to ``query().batch`` but
    cannot see the fold getting expensive — only this ratio can.  A
    regression mode to watch: per-pair context bookkeeping (instead of
    the shared per-constraint cells) multiplies the silent-satisfier
    pass by the subspace count and trips the budget immediately.
    """
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(N + PROBE, D, M, distribution="anticorrelated")
    warm, probe = rows[:N], rows[N:]
    best = None
    for _ in range(3):
        pair = _feed_fold_marginals(schema, warm, probe)
        if best is None or pair[1] / pair[0] < best[1] / best[0]:
            best = pair
    discover, fold = best
    overhead = fold / discover
    print(
        f"\nper-tuple @ n={N}: discover={1e3 * discover / PROBE:.3f}ms "
        f"feed-fold={1e3 * fold / PROBE:.3f}ms "
        f"overhead={100 * overhead:.1f}% "
        f"(budget {100 * FEED_FOLD_FRACTION:.0f}%)"
    )
    update_results(
        "feed_guard",
        {
            "discover_ms": round(1e3 * discover / PROBE, 4),
            "fold_ms": round(1e3 * fold / PROBE, 4),
            "overhead_pct": round(100 * overhead, 2),
            "budget_pct": 100 * FEED_FOLD_FRACTION,
        },
        filename="BENCH_PR10.json",
    )
    assert overhead <= FEED_FOLD_FRACTION, (
        f"feed fold costs {100 * overhead:.1f}% of the discovery "
        f"marginal (budget {100 * FEED_FOLD_FRACTION:.0f}%) — per-pair "
        f"context updates, per-arrival re-ranking, or lost interning "
        f"has crept into FeedStore.apply_event"
    )
