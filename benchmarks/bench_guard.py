"""Vectorization regression guard for the NumPy hot paths.

Future PRs must not silently de-vectorize the columnar engine: a change
that pushes ``svec``'s inner loops back into per-tuple Python shows up
as an order-of-magnitude latency jump that the equivalence tests cannot
see (they check outputs, not wall-clock) and the operation counters
cannot see either (the counting convention is deliberately
vectorization-blind — see ``repro/metrics/counters.py``).

The guard compares marginal per-tuple latency against ``baselinevec``,
the minimal NumPy-sweep algorithm: ``svec`` does strictly more per
arrival (store maintenance, demotion repair), so a *generous* multiple
of ``baselinevec`` is a stable ceiling across machines — scalar
``stopdown`` sits far above it on this workload, so a de-vectorized
``svec`` trips the bound with a wide margin on any hardware.  Two more
ratio tripwires cover the scored path (vs the unscored one) and the
PR-3 bitset lattice walker (vs the pinned PR-2 per-visit pass).

The ratio guards write their measurements into ``BENCH_PR3.json`` and
the journal-overhead guard into ``BENCH_PR6.json`` (both uploaded as CI
artifacts) so the perf trajectory is tracked as data.

Run with ``pytest benchmarks/bench_guard.py``; part of the bench suite,
not of tier-1 (timing asserts do not belong in unit CI).
"""

import tempfile
import time

from repro import FactDiscoverer, make_algorithm
from repro.datasets.synthetic import synthetic_rows, synthetic_schema
from repro.service.journal import JournalWriter

from _results import update_results
from pinned_pr2 import PinnedPR2SVec

#: Default scale of the guard workload (matches bench_columnar DEFAULT).
N, D, M = 2000, 4, 4
PROBE = 100

#: svec may cost at most this multiple of baselinevec per tuple.  The
#: measured ratio is ~2x; a de-vectorized svec lands at ~12x (scalar
#: stopdown territory), so 6x separates the regimes with slack on both
#: sides.
GENEROUS_MULTIPLE = 6.0

#: Scoring may cost at most this multiple of unscored ingestion per
#: tuple.  With the store's incremental skyline-cardinality index the
#: measured ratio is ~1.4x; falling back to the scalar Invariant-2
#: sweep lands at ~4x and grows with n, so 2.5x separates the regimes.
SCORED_MULTIPLE = 2.5

#: The write-ahead journal (fsync="never") may add at most this
#: fraction to the scored ``observe_many`` marginal.  The append is a
#: buffered JSON+CRC frame write per row plus one flush per batch —
#: microseconds against a millisecond-scale discovery marginal.
JOURNAL_OVERHEAD = 0.05

#: The bitset lattice walker may cost at most this fraction of the
#: pinned PR-2 per-visit pass per tuple.  Measured ~0.55-0.7x; a walker
#: that silently falls back to the scalar pass lands at ~1x (it *is*
#: the scalar pass plus walker bookkeeping), so 0.85x separates the
#: regimes hardware-independently.
WALKER_FRACTION = 0.85


def _marginal(name, schema, warm, probe):
    algo = make_algorithm(name, schema)
    algo.process_many(warm)
    start = time.perf_counter()
    algo.process_many(probe)
    return (time.perf_counter() - start) / len(probe)


def test_svec_stays_vectorized():
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(N + PROBE, D, M, distribution="anticorrelated")
    warm, probe = rows[:N], rows[N:]
    base = _marginal("baselinevec", schema, warm, probe)
    svec = _marginal("svec", schema, warm, probe)
    ratio = svec / base
    print(
        f"\nper-tuple @ n={N}: baselinevec={1e3 * base:.3f}ms "
        f"svec={1e3 * svec:.3f}ms ratio={ratio:.2f}x "
        f"(ceiling {GENEROUS_MULTIPLE}x)"
    )
    update_results(
        "guard",
        {
            "baselinevec_ms": round(1e3 * base, 4),
            "svec_ms": round(1e3 * svec, 4),
            "svec_over_baselinevec": round(ratio, 2),
        },
    )
    assert ratio <= GENEROUS_MULTIPLE, (
        f"svec costs {ratio:.1f}x baselinevec per tuple (ceiling "
        f"{GENEROUS_MULTIPLE}x) — the sharing engine has likely been "
        f"de-vectorized; see benchmarks/bench_columnar.py for the "
        f"full head-to-head"
    )


def test_lattice_walker_stays_vectorized():
    """The bitset-matrix lattice walker must not fall back to the
    per-visit scalar pass.

    The pinned PR-2 engine runs the same sweep and store machinery but
    walks the lattice one (constraint, subspace) visit at a time with
    per-call store mutations; the walker answers whole passes with
    bitset-matrix reductions and grouped mutations.  A change that
    silently routes arrivals to the fallback (or de-vectorizes the
    walker internals) pushes the ratio to ~1x, which this ceiling
    catches hardware-independently.
    """
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(N + PROBE, D, M, distribution="anticorrelated")
    warm, probe = rows[:N], rows[N:]

    def measure():
        pr2 = PinnedPR2SVec(schema)
        pr2.process_many(warm)
        start = time.perf_counter()
        pr2.process_many(probe)
        pr2_marginal = (time.perf_counter() - start) / len(probe)
        walker = _marginal("svec", schema, warm, probe)
        return walker / pr2_marginal, walker, pr2_marginal

    ratio, walker, pr2_marginal = measure()
    if ratio > WALKER_FRACTION:  # one retry: scheduler bursts happen
        retry = measure()
        if retry[0] < ratio:
            ratio, walker, pr2_marginal = retry
    print(
        f"\nper-tuple @ n={N}: pr2-pass={1e3 * pr2_marginal:.3f}ms "
        f"walker={1e3 * walker:.3f}ms ratio={ratio:.2f}x "
        f"(ceiling {WALKER_FRACTION}x)"
    )
    update_results(
        "guard",
        {
            "walker_ms": round(1e3 * walker, 4),
            "pr2_pass_ms": round(1e3 * pr2_marginal, 4),
            "walker_over_pr2_pass": round(ratio, 2),
        },
    )
    assert ratio <= WALKER_FRACTION, (
        f"the bitset lattice walker costs {ratio:.2f}x the pinned PR-2 "
        f"per-visit pass (ceiling {WALKER_FRACTION}x) — the walk has "
        f"likely fallen back to scalar; see benchmarks/bench_lattice.py "
        f"for the full stage isolation"
    )


def _marginal_scored(schema, warm, probe, score):
    engine = FactDiscoverer(schema, algorithm="svec", score=score)
    engine.facts_for_many(warm)
    start = time.perf_counter()
    engine.facts_for_many(probe)
    return (time.perf_counter() - start) / len(probe)


def test_scored_observe_many_stays_vectorized():
    """Scored batch ingestion must stay on the columnar scoring path.

    Prominence evaluation rides the store's incremental index; if a
    change silently sends ``skyline_sizes`` back to the per-(tuple,
    anchor, supermask) Python sweep — or the engine off the batched
    path — scoring stops being a modest surcharge on discovery and
    shows up here as a multiple of the unscored marginal latency.
    """
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(N + PROBE, D, M, distribution="anticorrelated")
    warm, probe = rows[:N], rows[N:]
    unscored = _marginal_scored(schema, warm, probe, score=False)
    scored = _marginal_scored(schema, warm, probe, score=True)
    ratio = scored / unscored
    if ratio > SCORED_MULTIPLE * 0.8:  # one retry: scheduler bursts
        unscored2 = _marginal_scored(schema, warm, probe, score=False)
        scored2 = _marginal_scored(schema, warm, probe, score=True)
        if scored2 / unscored2 < ratio:
            unscored, scored = unscored2, scored2
            ratio = scored / unscored
    print(
        f"\nper-tuple @ n={N}: unscored={1e3 * unscored:.3f}ms "
        f"scored={1e3 * scored:.3f}ms ratio={ratio:.2f}x "
        f"(ceiling {SCORED_MULTIPLE}x)"
    )
    update_results(
        "guard",
        {
            "unscored_ms": round(1e3 * unscored, 4),
            "scored_ms": round(1e3 * scored, 4),
            "scored_over_unscored": round(ratio, 2),
        },
    )
    assert ratio <= SCORED_MULTIPLE, (
        f"scored observe_many costs {ratio:.1f}x the unscored path per "
        f"tuple (ceiling {SCORED_MULTIPLE}x) — prominence scoring has "
        f"likely been de-vectorized; see benchmarks/bench_scoring.py "
        f"for the full head-to-head"
    )


def _journaled_marginals(schema, warm, probe, journal, batch=64):
    """One journaled scored-ingestion run with the server's discipline
    (one framed append per row, one commit per micro-batch), timing the
    discovery and journal portions separately *within the same run* —
    self-paired, so scheduler/cache noise cancels instead of swamping a
    microsecond-scale signal."""
    engine = FactDiscoverer(schema, algorithm="svec", score=True)
    engine.facts_for_many(warm)
    discovery = journaling = 0.0
    for lo in range(0, len(probe), batch):
        chunk = probe[lo : lo + batch]
        start = time.perf_counter()
        engine.facts_for_many(chunk)
        mid = time.perf_counter()
        for row in chunk:
            journal.append_ingest(row)
        journal.commit()
        discovery += mid - start
        journaling += time.perf_counter() - mid
    return discovery / len(probe), journaling / len(probe)


def test_journal_overhead_within_budget():
    """The WAL must stay off the discovery hot path.

    With ``fsync="never"`` a journal append is a buffered write; if a
    change drags per-row serialization, framing, or an accidental
    fsync/flush into the loop, journaled ingestion stops being free and
    trips the 5% budget.  Best-of-3 damps scheduler noise (the signal
    is a few microseconds against a millisecond marginal).
    """
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(N + PROBE, D, M, distribution="anticorrelated")
    warm, probe = rows[:N], rows[N:]
    best = None
    for _ in range(3):
        with tempfile.TemporaryDirectory() as wal:
            with JournalWriter(wal, fsync="never") as journal:
                pair = _journaled_marginals(schema, warm, probe, journal)
        if best is None or pair[1] / pair[0] < best[1] / best[0]:
            best = pair
    best_off, journal_cost = best
    best_on = best_off + journal_cost
    overhead = journal_cost / best_off
    print(
        f"\nper-tuple @ n={N}: journal-off={1e3 * best_off:.3f}ms "
        f"journal-on={1e3 * best_on:.3f}ms overhead={100 * overhead:.1f}% "
        f"(budget {100 * JOURNAL_OVERHEAD:.0f}%)"
    )
    update_results(
        "journal_guard",
        {
            "journal_off_ms": round(1e3 * best_off, 4),
            "journal_on_ms": round(1e3 * best_on, 4),
            "overhead_pct": round(100 * overhead, 2),
            "budget_pct": 100 * JOURNAL_OVERHEAD,
        },
        filename="BENCH_PR6.json",
    )
    assert overhead <= JOURNAL_OVERHEAD, (
        f"journaled scored observe_many costs {100 * overhead:.1f}% over "
        f"the unjournaled marginal (budget {100 * JOURNAL_OVERHEAD:.0f}%) "
        f"— something expensive (fsync? re-serialization?) has crept "
        f"into the per-row append path"
    )
