"""Fig. 12 — file-based FSBottomUp vs FSTopDown on NBA.

Paper claim: FSTopDown outperforms FSBottomUp by multiple times because
maximal-constraint storage touches far fewer files (fewer reads *and*
writes); I/O cost dominates in-memory computation.
"""

from repro.experiments import figure12a, figure12b, figure12c

from conftest import run_figure


def test_fig12a_varying_n(benchmark, bench_scale):
    fig = run_figure(benchmark, figure12a, bench_scale)
    # At laptop scale the OS page cache absorbs most steady-state I/O,
    # so wall-clock per window is noisy (see EXPERIMENTS.md).  The
    # paper's mechanism — FSTopDown touches far fewer files — is
    # asserted on the I/O counters, which are deterministic.
    from repro import DiscoveryConfig
    from repro.algorithms import FSBottomUp, FSTopDown
    from repro.datasets import nba_rows, nba_schema

    config = DiscoveryConfig(max_bound_dims=4)
    rows = nba_rows(int(60 * bench_scale), d=5, m=4)
    bu = FSBottomUp(nba_schema(5, 4), config)
    td = FSTopDown(nba_schema(5, 4), config)
    bu.process_stream(rows)
    td.process_stream(rows)
    print(
        f"\nfile writes: fsbottomup={bu.counters.file_writes:,} "
        f"fstopdown={td.counters.file_writes:,}"
    )
    # Writes are the dominant asymmetry (every store mutation flushes);
    # reads depend on repair traffic and can go either way at this
    # scale, so only the write ratio is asserted.
    assert td.counters.file_writes * 2 < bu.counters.file_writes
    bu.close()
    td.close()


def test_fig12b_varying_d(benchmark, bench_scale):
    fig = run_figure(benchmark, figure12b, bench_scale)
    final = fig.final_values()
    assert final["fstopdown"] < final["fsbottomup"]


def test_fig12c_varying_m(benchmark, bench_scale):
    fig = run_figure(benchmark, figure12c, bench_scale)
    final = fig.final_values()
    assert final["fstopdown"] < final["fsbottomup"]
