"""Scored-ingestion head-to-head: columnar vs pre-PR scalar scoring.

Not a paper figure — this repo's prominence-scoring vectorization bench
(PR 2).  Discovery was made columnar in PR 1, but scoring — the default
engine configuration — stayed scalar: ``TopDown.skyline_sizes`` walked
every stored tuple's anchor/supermask chains in Python and the context
counter rebuilt ``C^t`` per arrival.  PR 2 replaced both for ``svec``:
the store maintains an incremental skyline-cardinality index (anchor
-bitset flips on insert/delete, O(1) dict probes per fact at score
time) and the engine registers context counts through the interned-key
``ColumnarContextCounter``.

The contenders run the same anticorrelated stream through a scored
``FactDiscoverer`` and we report *marginal* per-tuple latency at
``n=3000, d=4, m=4`` (the ``bench_columnar.py`` default grid cell):

* ``svec`` — the columnar scoring pipeline (this PR);
* ``svec-scalar-score`` — the same discovery engine pinned to the
  pre-PR scalar scoring path (scalar ``skyline_sizes`` + scalar
  ``ContextCounter``), i.e. what scored ingestion cost before;
* the scored-vs-unscored split for ``svec``, showing what scoring now
  adds on top of raw discovery.

Headline assertions: columnar scoring is ≥ 3× faster end to end than
the PR-1 scalar scoring path at the default cell, and — since PR 3's
bitset-matrix lattice walker (see ``bench_lattice.py``) — the same
scored marginal is ≥ 1.4× faster than the whole engine as it shipped
in PR 2 (measured ~1.5-1.9×; the pinned PR-2 contender shares the
sweep, the store semantics and the scoring index, so the end-to-end
ratio is the conservative floor of the walker's stage-level ≥ 2×),
while being output-identical (``tests/test_scoring_equivalence.py``).

Run with ``pytest benchmarks/bench_scoring.py -s`` to see the table;
``REPRO_BENCH_SCALE`` enlarges the workload.  Results are merged into
``BENCH_PR3.json`` (see ``benchmarks/_results.py``).
"""

import gc
import time

from repro import ContextCounter, FactDiscoverer
from repro.algorithms.s_vectorized import SVectorized
from repro.algorithms.top_down import TopDown
from repro.datasets.synthetic import synthetic_rows, synthetic_schema

from _results import update_results
from pinned_pr2 import PinnedPR2SVec

N, D, M = 3000, 4, 4
CHUNK = 100
CHUNKS = 4

#: Required end-to-end speedup of scored svec ingestion over the PR-1
#: scalar scoring path (measured ~3.2-3.6x at the PR-2 seed, higher
#: since the PR-3 walker).
REQUIRED_SPEEDUP = 3.0

#: Required end-to-end speedup of scored svec ingestion over the whole
#: pinned PR-2 engine (scalar lattice passes + per-fact object scoring;
#: measured ~1.5-1.9x — see the module docstring for why the shared
#: machinery compresses this below the walker's stage-level 2x).
PR2_REQUIRED_SPEEDUP = 1.4


class _PrePRContextCounter(ContextCounter):
    """The scalar counter as it behaved before this PR: ``C^t`` is
    re-derived per arrival even when the engine offers its memoised
    constraints (the sharing hook postdates the baseline)."""

    def register(self, record, constraints=None):
        super().register(record)

    def unregister(self, record, constraints=None):
        super().unregister(record)


class ScalarScoredSVec(SVectorized):
    """``svec`` discovery with PR-1-era scoring: the scalar Invariant-2
    ``skyline_sizes`` sweep and the scalar constraint-rebuilding
    counter.  Pinning both here keeps the pre-PR baseline measurable
    after the fast paths became the default."""

    name = "svec-scalar-score"

    def skyline_sizes(self, facts):
        return TopDown.skyline_sizes(self, facts)

    def make_context_counter(self, max_bound_dims=None):
        return _PrePRContextCounter(max_bound_dims)


def marginal_scored_latencies(schema, contenders, warm, chunks):
    """Best-of-chunks per-tuple seconds per contender once the history
    holds ``len(warm)``.

    All engines ingest the same stream and are timed chunk-by-chunk in
    an interleaved order, so scheduler/allocator drift during the run
    hits every contender alike instead of biasing whichever ran last;
    taking each contender's *fastest* chunk (the standard estimator for
    CPU-bound code — noise only ever adds time) keeps the asserted
    ratio stable on loaded machines.
    """
    engines = {
        name: FactDiscoverer(schema, algorithm=algorithm, score=score)
        for name, (algorithm, score) in contenders.items()
    }
    for engine in engines.values():
        engine.facts_for_many(warm)
    samples = {name: [] for name in engines}
    # Collector pauses land on whichever contender is mid-chunk and are
    # the dominant noise source here; time with GC off (as
    # pytest-benchmark's disable_gc mode does).
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for chunk in chunks:
            for name, engine in engines.items():
                start = time.perf_counter()
                engine.facts_for_many(chunk)
                samples[name].append(
                    (time.perf_counter() - start) / len(chunk)
                )
    finally:
        if gc_was_enabled:
            gc.enable()
    return {name: min(times) for name, times in samples.items()}


def test_columnar_scoring_speedup(benchmark, bench_scale):
    """Scored svec ≥ 3× faster than the pre-PR scalar scoring path."""
    n = int(N * bench_scale)
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(n + CHUNK * CHUNKS, D, M, distribution="anticorrelated")
    warm = rows[:n]
    chunks = [rows[n + i * CHUNK : n + (i + 1) * CHUNK] for i in range(CHUNKS)]

    def measure():
        return marginal_scored_latencies(
            schema,
            {
                "scalar-score": (ScalarScoredSVec(schema), True),
                "pr2-engine": (PinnedPR2SVec(schema), True),
                "columnar-score": ("svec", True),
                "no-score": ("svec", False),
            },
            warm,
            chunks,
        )

    def margin(cell):
        """Worst normalized distance to the two speedup thresholds."""
        return min(
            cell["scalar-score"] / cell["columnar-score"] / REQUIRED_SPEEDUP,
            cell["pr2-engine"] / cell["columnar-score"] / PR2_REQUIRED_SPEEDUP,
        )

    def run():
        # One retry on a sub-threshold first attempt: an OS scheduling
        # burst can still depress a whole measurement; a genuine
        # de-vectorization fails both attempts by a wide margin.  Keep
        # whichever attempt clears its thresholds by the better margin.
        cell = measure()
        if margin(cell) < 1.0:
            retry = measure()
            if margin(retry) > margin(cell):
                cell = retry
        return cell

    cell = benchmark.pedantic(run, iterations=1, rounds=1)
    speedup = cell["scalar-score"] / cell["columnar-score"]
    pr2_speedup = cell["pr2-engine"] / cell["columnar-score"]
    scoring_cost = cell["columnar-score"] - cell["no-score"]
    print()
    print(f"scored marginal per-tuple latency @ n={n} d={D} m={M} "
          f"(anticorrelated)")
    for name in ("scalar-score", "pr2-engine", "columnar-score", "no-score"):
        print(f"  {name:<16} {1e3 * cell[name]:>9.3f} ms")
    print(f"  speedup {speedup:.2f}x over PR-1 scalar scoring, "
          f"{pr2_speedup:.2f}x over the pinned PR-2 engine; scoring adds "
          f"{1e3 * scoring_cost:.3f} ms over unscored discovery")
    benchmark.extra_info["scalar_ms"] = round(1e3 * cell["scalar-score"], 3)
    benchmark.extra_info["pr2_ms"] = round(1e3 * cell["pr2-engine"], 3)
    benchmark.extra_info["columnar_ms"] = round(1e3 * cell["columnar-score"], 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["pr2_speedup"] = round(pr2_speedup, 2)
    update_results(
        "scoring",
        {
            "pr1_scalar_ms": round(1e3 * cell["scalar-score"], 4),
            "pr2_engine_ms": round(1e3 * cell["pr2-engine"], 4),
            "columnar_ms": round(1e3 * cell["columnar-score"], 4),
            "no_score_ms": round(1e3 * cell["no-score"], 4),
            "scoring_surcharge_ms": round(1e3 * scoring_cost, 4),
            "speedup_vs_pr1": round(speedup, 2),
            "speedup_vs_pr2": round(pr2_speedup, 2),
        },
    )
    update_results(
        "meta", {"n": n, "d": D, "m": M, "distribution": "anticorrelated"}
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"columnar scoring regressed: only {speedup:.2f}x over the scalar "
        f"scoring path (need >= {REQUIRED_SPEEDUP}x); see "
        f"benchmarks/bench_guard.py for the de-vectorization tripwire"
    )
    assert pr2_speedup >= PR2_REQUIRED_SPEEDUP, (
        f"scored ingestion is only {pr2_speedup:.2f}x the pinned PR-2 "
        f"engine (need >= {PR2_REQUIRED_SPEEDUP}x) — the bitset walker "
        f"has likely been de-vectorized; see benchmarks/bench_lattice.py"
    )
    # Scoring must stay a modest surcharge on discovery, not dominate it
    # (pre-PR-2 it tripled the per-tuple cost).
    assert scoring_cost < cell["no-score"], (
        f"scoring adds {1e3 * scoring_cost:.3f} ms on top of "
        f"{1e3 * cell['no-score']:.3f} ms unscored — the scored path has "
        f"likely fallen off the columnar index"
    )
