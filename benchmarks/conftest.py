"""Shared helpers for the figure-reproduction benches.

Each bench runs one paper figure at a scaled-down workload, prints the
figure's table (visible with ``pytest -s`` and in benchmark output), and
asserts the paper's qualitative claims (who wins, roughly by how much).

Set ``REPRO_BENCH_SCALE`` (float) to enlarge the workloads.
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def run_figure(benchmark, figure_fn, scale, **kwargs):
    """Execute one figure function exactly once under pytest-benchmark,
    print its table(s), and return the result object(s)."""
    result = benchmark.pedantic(
        lambda: figure_fn(scale=scale, **kwargs), iterations=1, rounds=1
    )
    figures = result if isinstance(result, tuple) else (result,)
    for fig in figures:
        print()
        print(fig.table())
        for series in fig.series:
            if series.ys:
                benchmark.extra_info[series.label] = series.ys[-1]
    return result
