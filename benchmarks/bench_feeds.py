"""Feed fan-out throughput: materialized feeds vs subscriber count.

Not a paper figure — this repo's read-tier bench (PR 10).  The
:class:`repro.service.feeds.FeedStore` materializes ranked per-segment
standings off the fact stream, and the :class:`FeedGateway` pushes them
to WebSocket subscribers with per-connection coalescing, so delivery
cost scales with *subscriber count × segments*, never with engine
throughput or replayed history.

The bench runs a real ``StreamServer`` + ``FeedGateway`` on an
ephemeral port, connects 10 / 100 / 1000 concurrent ``FeedClient``
WebSockets, bursts one ingest stream through the engine, and measures
delivered frames per second until every subscriber has converged on the
store's final per-segment versions.  Two claims are asserted:

* **convergence under fan-out** — every one of the 1000 subscribers
  ends on the current materialized state (catch-up is by coalesced
  snapshot, so a slow consumer converges in O(segments) frames, not
  O(arrivals));
* **bounded delivery state** — the per-connection dirty set never
  exceeds ``max_pending_segments`` (structural bound; the drop/resync
  counters recorded here show the mechanism engaging, or not needing
  to).

The ingest-overhead guard (feed fold ≤ 5% of discovery) lives in
``bench_guard.py`` with the other regression tripwires; both write to
``BENCH_PR10.json`` (uploaded as a CI artifact).

Run with ``pytest benchmarks/bench_feeds.py -s``; ``REPRO_BENCH_SCALE``
enlarges the burst.
"""

import asyncio
import time

from repro.api import EngineSpec, FeedSpec, open_engine
from repro.datasets.synthetic import synthetic_rows, synthetic_schema
from repro.service import FeedClient, FeedGateway, StreamServer

from _results import update_results

D, M = 4, 4
#: Arrivals seeding the segments before subscribers connect, and the
#: burst pushed while they listen.
SEED, BURST = 60, 120
SUBSCRIBERS = (10, 100, 1000)
#: Per-frame ranking cut — keeps frame size constant as the store grows.
TOP_K = 10


async def _connect_all(port, count):
    clients = []
    # Batched so 1000 handshakes don't serialize on round-trips.
    for start in range(0, count, 50):
        batch = await asyncio.gather(
            *(
                FeedClient.connect("127.0.0.1", port)
                for _ in range(min(50, count - start))
            )
        )
        clients.extend(batch)
    return clients


async def _drain_initial(clients, n_segments):
    async def initial(client):
        for _ in range(n_segments):
            await client.recv(timeout=10.0)

    await asyncio.gather(*(initial(c) for c in clients))


async def _converge(client, finals):
    """Read frames until this client has seen every segment's final
    version; returns the number of frames it took."""
    seen = {}
    frames = 0
    while any(seen.get(k, -1) < v for k, v in finals.items()):
        frame = await client.recv(timeout=15.0)
        frames += 1
        seen[frame["segment"]] = frame["version"]
    return frames


async def _fanout(rows, count):
    engine = open_engine(
        EngineSpec(
            schema=synthetic_schema(D, M),
            score=True,
            feeds=FeedSpec(group_by=("d0",), top_k=TOP_K),
        )
    )
    server = StreamServer(engine, batch_max=64, batch_window=0.001)
    await server.start()
    gateway = FeedGateway(server, max_pending_segments=4)
    listener = await gateway.start()
    port = listener.sockets[0].getsockname()[1]
    try:
        await server.ingest_many(rows[:SEED])
        await server.drain()
        n_segments = len(server.feeds.segment_keys())

        clients = await _connect_all(port, count)
        await _drain_initial(clients, n_segments)
        assert server.stats.gateway_subscribers == count

        sent_before = server.stats.gateway_frames_sent
        start = time.perf_counter()
        await server.ingest_many(rows[SEED:])
        await server.drain()
        finals = {
            seg["segment"]: seg["version"] for seg in server.feeds.segments()
        }
        frames = await asyncio.gather(*(_converge(c, finals) for c in clients))
        elapsed = time.perf_counter() - start

        # Convergence is by coalesced snapshot: a subscriber needs
        # O(segments) frames to reach the final state, not O(arrivals).
        assert max(frames) <= 4 * len(finals)

        stats = server.stats.snapshot()
        delivered = stats["gateway_frames_sent"] - sent_before
        await asyncio.gather(*(c.close() for c in clients))
        return {
            "subscribers": count,
            "segments": len(finals),
            "burst_arrivals": len(rows) - SEED,
            "frames_delivered": delivered,
            "seconds": round(elapsed, 4),
            "frames_per_sec": round(delivered / elapsed, 1),
            "max_frames_per_subscriber": max(frames),
            "coalesced": stats["gateway_frames_coalesced"],
            "dropped": stats["gateway_frames_dropped"],
        }
    finally:
        await gateway.stop()
        await server.stop()


def test_fanout_throughput_vs_subscribers(benchmark, bench_scale):
    """1000 concurrent WebSocket subscribers all converge on the
    materialized state; delivered frames stay O(subscribers×segments)."""
    rows = synthetic_rows(
        SEED + int(BURST * bench_scale), D, M, distribution="anticorrelated"
    )

    def run():
        return [
            asyncio.run(_fanout(rows, count)) for count in SUBSCRIBERS
        ]

    results = benchmark.pedantic(run, iterations=1, rounds=1)

    print()
    print("subscribers  frames  frames/s  max/conn  coalesced  dropped")
    for row in results:
        print(
            f"{row['subscribers']:>11}  {row['frames_delivered']:>6}  "
            f"{row['frames_per_sec']:>8}  {row['max_frames_per_subscriber']:>8}  "
            f"{row['coalesced']:>9}  {row['dropped']:>7}"
        )
        benchmark.extra_info[f"fps_{row['subscribers']}"] = row[
            "frames_per_sec"
        ]

    big = results[-1]
    assert big["subscribers"] == SUBSCRIBERS[-1]
    # Fan-out delivered every subscriber O(segments) frames — coalescing
    # kept total frames far below subscribers × burst size.
    assert big["frames_delivered"] <= (
        big["subscribers"] * 4 * big["segments"]
    )
    update_results(
        "fanout",
        {"runs": results, "meta": {"d": D, "m": M, "seed": SEED}},
        filename="BENCH_PR10.json",
    )


def test_capped_churn_overhead_recorded():
    """Ingest overhead when the cap binds hard — recorded as data.

    With ``max_entries`` far below the workload's tracked-pair working
    set, nearly every arrival both creates and evicts entries, so the
    fold pays cap-policy churn on top of the mechanism cost that
    ``bench_guard.py`` pins at 5%.  That churn is a sizing decision,
    not a regression, so this bench only tripwires a gross blowup (the
    pre-hysteresis eviction scan sat ~5x above today's number).
    """
    import gc

    from repro.api import EngineSpec, FeedSpec, open_engine
    from repro.service.feeds import FeedStore

    n, probe_n = 2000, 100
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(n + probe_n, D, M, distribution="anticorrelated")
    engine = open_engine(EngineSpec(schema=schema, score=True))
    store = FeedStore(
        schema, engine.config, FeedSpec(group_by=(schema.dimensions[0],))
    )
    for row in rows[:n]:
        factset = engine.facts_for(row)
        store.apply_event(factset.record, factset)
    gc.collect()
    gc.disable()
    try:
        discover = fold = 0.0
        for row in rows[n:]:
            t0 = time.perf_counter()
            factset = engine.facts_for(row)
            t1 = time.perf_counter()
            store.apply_event(factset.record, factset)
            discover += t1 - t0
            fold += time.perf_counter() - t1
    finally:
        gc.enable()
    overhead = fold / discover
    stats = store.stats()
    print(
        f"\ncap-bound churn @ n={n}, cap={store.spec.max_entries}: "
        f"discover={1e3 * discover / probe_n:.3f}ms "
        f"fold={1e3 * fold / probe_n:.3f}ms "
        f"overhead={100 * overhead:.1f}% evicted={stats['evicted']}"
    )
    update_results(
        "capped_churn",
        {
            "cap": store.spec.max_entries,
            "discover_ms": round(1e3 * discover / probe_n, 4),
            "fold_ms": round(1e3 * fold / probe_n, 4),
            "overhead_pct": round(100 * overhead, 2),
            "evicted": stats["evicted"],
        },
        filename="BENCH_PR10.json",
    )
    assert overhead <= 0.30, (
        f"cap-bound fold costs {100 * overhead:.1f}% of discovery — "
        f"the eviction scan has likely lost its hysteresis or its "
        f"float-only victim selection"
    )
