"""Read-path bench for the PR-8 query subsystem.

Three asserted cells — the acceptance bars of the cost-ordered query
planner PR — plus two data-only sections, all merged into
``BENCH_PR8.json`` (committed and uploaded as a CI artifact):

* **kernels** — columnar k-skyband vs the scalar double loop at
  ``n=10k d=4 m=4`` anticorrelated, with a latency-vs-``n`` sweep from
  the same incrementally grown engine.  Bar: kernels ≥ 2× (measured
  ~20×), tids identical at every ``n``.
* **planner** — cheapest-first + top-k early termination vs fixed-order
  batch execution on a mixed workload of indexed (maintained) and
  counted (beyond-``m̂``-subspace) queries.  Bar: planner ≥ 2×
  (measured ~30×), results identical, and the skip counter proves the
  win comes from early termination, not noise.
* **cache** — repeat reads through ``EngineSpec(query_cache=N)`` vs the
  first uncached pass.  Bar: ≥ 10× (measured far higher — a hit is a
  dict probe), answers identical, every repeat a counted hit.  A
  mixed read/write section reports cache hit rate vs write interval
  (writes bump the engine version, so each one invalidates wholesale).

Run with ``pytest benchmarks/bench_query.py -s``; ``REPRO_BENCH_SCALE``
enlarges the workloads.  Part of the bench suite, not of tier-1.
"""

import time

from repro import Constraint, DiscoveryConfig, FactDiscoverer, make_algorithm
from repro.api import EngineSpec, open_engine
from repro.core.constraint import UNBOUND
from repro.datasets.synthetic import synthetic_rows, synthetic_schema
from repro.query.contextual import ContextualQueryEngine
from repro.query.planner import QueryPlan

from _results import update_results

RESULTS = "BENCH_PR8.json"

D, M = 4, 4
FULL = (1 << M) - 1  # all-measures subspace
TOP = Constraint((UNBOUND,) * D)

#: The kernels acceptance cell: largest skylines (anticorrelated), the
#: history size the ISSUE pins, k=2 skyband over one-bound contexts of
#: ~n/8 rows each (domain cardinality 8).
KERNEL_N = 10_000
SKYBAND_K = 2
PROBE_VALUES = ("v0", "v1", "v2", "v3")

#: Columnar skyband must beat the scalar loop by at least this much at
#: the acceptance cell.  Measured ~20×; the bar is deliberately loose
#: so slow CI hardware cannot flake it.
KERNEL_SPEEDUP = 2.0

#: Cheapest-first must beat fixed-order by at least this much on the
#: mixed workload below.  Measured ~30×: every counted pair's upper
#: bound (its context size) sits far below the threshold the first
#: indexed evaluation establishes, so the planner skips them all while
#: fixed order evaluates each one.
PLANNER_SPEEDUP = 2.0

#: A fully cached repeat pass must beat the uncached first pass by at
#: least this much (the ISSUE bar).  A hit is an LRU probe plus a list
#: copy, so the measured ratio is orders of magnitude higher.
CACHE_SPEEDUP = 10.0

#: Reads between writes for the hit-rate section (0 = read-only).
WRITE_INTERVALS = (0, 16, 4, 1)


def _one_bound(value):
    return Constraint((value,) + (UNBOUND,) * (D - 1))


# ----------------------------------------------------------------------
# Cell 1: columnar skyband kernels vs the scalar double loop
# ----------------------------------------------------------------------
def _skyband_pass(queries, constraints):
    start = time.perf_counter()
    out = [
        sorted(r.tid for r in queries.skyband(c, FULL, SKYBAND_K))
        for c in constraints
    ]
    return time.perf_counter() - start, out


def test_columnar_skyband_speedup(bench_scale):
    """Kernels ≥ 2× scalar skyband at n=10k, identical tids at every n."""
    targets = [int(KERNEL_N * f * bench_scale) for f in (0.25, 0.5, 1.0)]
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(targets[-1], D, M, distribution="anticorrelated")
    constraints = [_one_bound(v) for v in PROBE_VALUES]

    algo = make_algorithm("svec", schema)
    kernel_q = ContextualQueryEngine(algo)
    scalar_q = ContextualQueryEngine(algo, use_kernels=False)

    sweep, done = [], 0
    for n in targets:
        algo.process_many(rows[done:n])
        done = n
        kernel_s, kernel_out = _skyband_pass(kernel_q, constraints)
        scalar_s, scalar_out = _skyband_pass(scalar_q, constraints)
        assert kernel_out == scalar_out, f"kernel/scalar tids diverge at n={n}"
        sweep.append((n, kernel_s, scalar_s))

    print(f"\nk-skyband (k={SKYBAND_K}) over {len(constraints)} one-bound "
          f"contexts, anticorrelated d={D} m={M}")
    print(f"{'n':>8}{'kernels':>12}{'scalar':>12}{'speedup':>10}")
    for n, kernel_s, scalar_s in sweep:
        print(f"{n:>8}{1e3 * kernel_s:>10.1f}ms{1e3 * scalar_s:>10.1f}ms"
              f"{scalar_s / kernel_s:>9.1f}x")

    n, kernel_s, scalar_s = sweep[-1]
    speedup = scalar_s / kernel_s
    update_results(
        "kernels",
        {
            "n": n,
            "skyband_k": SKYBAND_K,
            "kernels_ms": round(1e3 * kernel_s, 3),
            "scalar_ms": round(1e3 * scalar_s, 3),
            "speedup": round(speedup, 2),
            "latency_vs_n": [
                {"n": sn, "kernels_ms": round(1e3 * ks, 3),
                 "scalar_ms": round(1e3 * ss, 3)}
                for sn, ks, ss in sweep
            ],
        },
        filename=RESULTS,
    )
    assert speedup >= KERNEL_SPEEDUP, (
        f"columnar skyband only {speedup:.1f}x over scalar at n={n} "
        f"(need >= {KERNEL_SPEEDUP}x) — the kernels have likely stopped "
        f"vectorizing; see repro/query/kernels.py"
    )


# ----------------------------------------------------------------------
# Cell 2: cheapest-first + early termination vs fixed-order batches
# ----------------------------------------------------------------------
def _planner_workload():
    """Indexed pairs on the maintained subspace + counted two-bound
    pairs on a beyond-``m̂`` subspace.  The indexed evaluations are free
    and establish a high top-k threshold; every counted pair's context
    (~n/64 rows) then upper-bounds its prominence below that threshold,
    so a sound planner proves all of them irrelevant without running
    one."""
    maintained, beyond = 0b0011, 0b0111
    indexed = [(TOP, maintained)] + [
        (_one_bound(f"v{v}"), maintained) for v in range(8)
    ]
    counted = [
        (Constraint((f"v{a}", f"v{b}", UNBOUND, UNBOUND)), beyond)
        for a in range(8)
        for b in range(8)
    ]
    return indexed + counted


def _best_of(runs, fn):
    best = None
    for _ in range(runs):
        took, value = fn()
        if best is None or took < best[0]:
            best = (took, value)
    return best


def test_planner_beats_fixed_order(bench_scale):
    """Cost order + τ/top-k push-down ≥ 2× fixed order, same answers."""
    n = int(4000 * bench_scale)
    schema = synthetic_schema(D, M)
    engine = FactDiscoverer(
        schema,
        algorithm="svec",
        config=DiscoveryConfig(max_measure_dims=2),
        score=True,
    )
    engine.facts_for_many(
        synthetic_rows(n, D, M, distribution="correlated", seed=7)
    )
    queries = engine.query()
    workload = _planner_workload()

    def run(ordered):
        plan = QueryPlan(queries, workload, top_k=1, ordered=ordered)
        start = time.perf_counter()
        results = plan.execute()
        return time.perf_counter() - start, (plan, results)

    planned_s, (plan, planned) = _best_of(3, lambda: run(True))
    fixed_s, (_, fixed) = _best_of(3, lambda: run(False))

    key = lambda r: (r.constraint, r.subspace, r.prominence)
    assert list(map(key, planned)) == list(map(key, fixed)), \
        "planned and fixed-order batches disagree"
    assert plan.skipped > 0, "planner never early-terminated"

    speedup = fixed_s / planned_s
    print(f"\nmixed top-k batch, n={n}: {len(workload)} queries, "
          f"skipped={plan.skipped} stats_hits={plan.stats_hits} "
          f"evaluated={plan.evaluated_count}")
    print(f"planned={1e3 * planned_s:.2f}ms fixed={1e3 * fixed_s:.2f}ms "
          f"speedup={speedup:.1f}x")
    update_results(
        "planner",
        {
            "n": n,
            "queries": len(workload),
            "top_k": 1,
            "planned_ms": round(1e3 * planned_s, 3),
            "fixed_ms": round(1e3 * fixed_s, 3),
            "speedup": round(speedup, 2),
            "skipped": plan.skipped,
            "stats_hits": plan.stats_hits,
            "evaluated": plan.evaluated_count,
        },
        filename=RESULTS,
    )
    assert speedup >= PLANNER_SPEEDUP, (
        f"cheapest-first only {speedup:.1f}x over fixed order (need >= "
        f"{PLANNER_SPEEDUP}x) — bound push-down has likely stopped "
        f"skipping; see repro/query/planner.py"
    )


# ----------------------------------------------------------------------
# Cell 3: versioned result cache — repeat reads and hit rate vs writes
# ----------------------------------------------------------------------
def _read_pass(queries, constraints):
    start = time.perf_counter()
    raw = [queries.skyline(TOP, FULL)]
    for c in constraints:
        raw.append(queries.skyband(c, FULL, SKYBAND_K))
    took = time.perf_counter() - start
    return took, [sorted(r.tid for r in records) for records in raw]


def test_cache_repeat_speedup(bench_scale):
    """A fully cached repeat pass ≥ 10× the uncached first pass."""
    n = int(4000 * bench_scale)
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(n, D, M, distribution="anticorrelated")
    constraints = [_one_bound(f"v{v}") for v in range(8)]
    spec = EngineSpec(schema, "svec", DiscoveryConfig(), query_cache=64)
    with open_engine(spec) as engine:
        engine.observe_many(rows)
        queries = engine.query()
        uncached_s, first = _read_pass(queries, constraints)
        cached_s, repeat = _read_pass(queries, constraints)
        counters = engine.query_cache_counters()

    assert first == repeat, "cached repeat changed the answers"
    n_reads = len(constraints) + 1
    assert counters["hits"] == n_reads, counters

    speedup = uncached_s / cached_s
    print(f"\n{n_reads} reads @ n={n}: uncached={1e3 * uncached_s:.1f}ms "
          f"cached={1e3 * cached_s:.2f}ms speedup={speedup:.0f}x "
          f"(counters {counters})")
    update_results(
        "cache",
        {
            "n": n,
            "reads": n_reads,
            "uncached_ms": round(1e3 * uncached_s, 3),
            "cached_ms": round(1e3 * cached_s, 4),
            "speedup": round(speedup, 1),
            "hits": counters["hits"],
            "misses": counters["misses"],
        },
        filename=RESULTS,
    )
    assert speedup >= CACHE_SPEEDUP, (
        f"cached repeat only {speedup:.1f}x over uncached (need >= "
        f"{CACHE_SPEEDUP}x) — the result cache has likely stopped "
        f"hitting; see repro/query/cache.py"
    )


def test_cache_hit_rate_vs_write_interval(bench_scale):
    """Mixed read/write: hit rate vs writes per read (data section).

    Every write bumps the engine version ``(arrivals, deletions)``, so
    one write wholesale-invalidates the cache; the hit rate should fall
    monotonically as writes become more frequent and reach zero when
    every read is preceded by a write."""
    n = int(1000 * bench_scale)
    reads = 64
    schema = synthetic_schema(D, M)
    rows = synthetic_rows(n + reads, D, M, distribution="anticorrelated")
    constraints = [_one_bound(f"v{v}") for v in range(8)]

    rates = {}
    for interval in WRITE_INTERVALS:
        spec = EngineSpec(schema, "svec", DiscoveryConfig(), query_cache=64)
        with open_engine(spec) as engine:
            engine.observe_many(rows[:n])
            queries = engine.query()
            writes = 0
            for i in range(reads):
                queries.skyband(constraints[i % len(constraints)], FULL,
                                SKYBAND_K)
                if interval and (i + 1) % interval == 0:
                    engine.observe_many([rows[n + writes]])
                    writes += 1
            counters = engine.query_cache_counters()
        label = "read_only" if interval == 0 else f"write_every_{interval}"
        rates[label] = round(
            counters["hits"] / (counters["hits"] + counters["misses"]), 3
        )

    print(f"\ncache hit rate over {reads} reads @ n={n}: {rates}")
    update_results("cache_hit_rate", rates, filename=RESULTS)
    update_results(
        "meta",
        {"d": D, "m": M, "distribution": "anticorrelated"},
        filename=RESULTS,
    )
    assert rates["read_only"] > rates["write_every_1"], rates
    assert rates["write_every_1"] == 0.0, rates
