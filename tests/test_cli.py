"""Tests for the repro-facts command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.datasets import nba_rows, nba_schema, save_rows


@pytest.fixture
def nba_csv(tmp_path):
    schema = nba_schema(4, 4)
    path = str(tmp_path / "nba.csv")
    save_rows(path, schema, nba_rows(40, d=4, m=4))
    return path


DIMS = "player,season,team,opp_team"
MEAS = "points,rebounds,assists,blocks"


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_discover_args(self):
        args = build_parser().parse_args(
            ["discover", "x.csv", "-d", DIMS, "-m", MEAS, "--tau", "5"]
        )
        assert args.csv == "x.csv"
        assert args.tau == 5.0


class TestDiscover:
    def test_discover_prints_facts(self, nba_csv, capsys):
        rc = main(
            ["discover", nba_csv, "-d", DIMS, "-m", MEAS,
             "--dhat", "2", "--mhat", "2", "--tau", "3"]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "facts from 40 tuples" in err

    def test_discover_batched_matches_row_at_a_time(self, nba_csv, capsys):
        rc = main(
            ["discover", nba_csv, "-d", DIMS, "-m", MEAS,
             "--dhat", "2", "--mhat", "2", "--tau", "3",
             "--algorithm", "svec"]
        )
        assert rc == 0
        unbatched = capsys.readouterr()
        rc = main(
            ["discover", nba_csv, "-d", DIMS, "-m", MEAS,
             "--dhat", "2", "--mhat", "2", "--tau", "3",
             "--algorithm", "svec", "--batch", "16"]
        )
        assert rc == 0
        batched = capsys.readouterr()
        assert batched.out == unbatched.out
        assert "facts from 40 tuples" in batched.err

    def test_discover_no_score_streams_unscored_facts(self, nba_csv, capsys):
        rc = main(
            ["discover", nba_csv, "-d", DIMS, "-m", MEAS,
             "--dhat", "2", "--mhat", "2", "--no-score",
             "--algorithm", "svec", "--batch", "16"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "facts from 40 tuples" in captured.err
        # Unscored facts carry no prominence annotation.
        assert "prominence=" not in captured.out

    def test_discover_no_score_rejects_tau_and_top_k(self, nba_csv, capsys):
        for extra in (["--tau", "3"], ["--top-k", "2"]):
            rc = main(
                ["discover", nba_csv, "-d", DIMS, "-m", MEAS,
                 "--no-score", *extra]
            )
            assert rc == 2
            assert "prominence" in capsys.readouterr().err

    def test_discover_json(self, nba_csv, capsys):
        import json

        rc = main(
            ["discover", nba_csv, "-d", DIMS, "-m", MEAS,
             "--dhat", "1", "--mhat", "1", "--tau", "2", "--json"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        for line in out.strip().splitlines():
            doc = json.loads(line)
            assert {"tuple_id", "constraint", "measures", "prominence"} <= set(doc)

    def test_discover_narrated(self, nba_csv, capsys):
        rc = main(
            ["discover", nba_csv, "-d", DIMS, "-m", MEAS,
             "--dhat", "1", "--mhat", "1", "--tau", "2", "--narrate"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        # Narrations end with a period and mention records.
        if out:
            assert "unbeaten among" in out


class TestQuery:
    def test_query_outputs_skyline(self, nba_csv, capsys):
        rc = main(
            ["query", nba_csv, "-d", DIMS, "-m", MEAS,
             "-q", "* | points, rebounds"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "skyline size" in captured.err
        assert "points" in captured.out

    def test_query_with_constraint(self, nba_csv, capsys):
        rc = main(
            ["query", nba_csv, "-d", DIMS, "-m", MEAS,
             "-q", "season=1991-92 | points"]
        )
        assert rc == 0


class TestDemo:
    def test_demo_runs(self, capsys):
        rc = main(["demo", "--tuples", "60", "--tau", "5"])
        assert rc == 0
        assert "prominent facts from 60 tuples" in capsys.readouterr().err


class TestErrorHandling:
    def test_bad_query_string(self, nba_csv, capsys):
        rc = main(["query", nba_csv, "-d", DIMS, "-m", MEAS, "-q", "no pipe here"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_attribute_in_query(self, nba_csv, capsys):
        rc = main(["query", nba_csv, "-d", DIMS, "-m", MEAS, "-q", "coach=X | points"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_csv(self, capsys):
        rc = main(["discover", "/nonexistent.csv", "-d", DIMS, "-m", MEAS])
        assert rc == 2
        assert "cannot open" in capsys.readouterr().err


class TestFigures:
    def test_unknown_figure(self, capsys):
        rc = main(["figures", "fig99"])
        assert rc == 2

    def test_min_prefer_plumbs_through(self, tmp_path, capsys):
        # fouls min-preferred: a low-foul line must be able to win.
        from repro.datasets import save_rows
        from repro import MIN, TableSchema

        schema = TableSchema(("player",), ("points", "fouls"), {"fouls": MIN})
        rows = [
            {"player": "A", "points": 10, "fouls": 5},
            {"player": "B", "points": 10, "fouls": 0},
        ]
        path = str(tmp_path / "f.csv")
        save_rows(path, schema, rows)
        rc = main(
            ["query", path, "-d", "player", "-m", "points,fouls",
             "--min-prefer", "fouls", "-q", "* | points, fouls"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "'player': 'B'" in out
