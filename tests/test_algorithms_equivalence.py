"""Cross-algorithm equivalence — the master correctness oracle.

All ten algorithms must produce identical ``S_t`` for every arriving
tuple, on hand-written cases, on the paper's examples, and on randomized
streams (hypothesis), with and without the ``d̂``/``m̂`` caps.  BruteForce
(Alg. 2) and an independent from-scratch oracle anchor the comparison.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DiscoveryConfig, TableSchema, make_algorithm
from repro.core.constraint import satisfied_constraints
from repro.core.lattice import nonempty_subspaces
from repro.core.skyline import is_contextual_skyline_tuple

from tests.conftest import MEMORY_ALGORITHMS


def oracle_facts(table_records, record, schema, config):
    """Independent recomputation of S_t from Def. 3 directly."""
    pairs = set()
    for constraint in satisfied_constraints(record, config.max_bound_dims):
        for subspace in nonempty_subspaces(
            schema.full_measure_mask, config.max_measure_dims
        ):
            if is_contextual_skyline_tuple(record, table_records, constraint, subspace):
                pairs.add((constraint, subspace))
    return pairs


def run_all(schema, rows, config=None):
    outs = {}
    for name in MEMORY_ALGORITHMS:
        algo = make_algorithm(name, schema, config)
        outs[name] = [fs.pairs for fs in algo.process_stream(rows)]
    return outs


# ----------------------------------------------------------------------
# Deterministic cases
# ----------------------------------------------------------------------
class TestDeterministicEquivalence:
    def test_running_example(self, running_example_schema, running_example_rows):
        outs = run_all(running_example_schema, running_example_rows)
        ref = outs["bruteforce"]
        for name, got in outs.items():
            assert got == ref, name

    def test_gamelog_example(self, gamelog_schema, gamelog_rows):
        outs = run_all(gamelog_schema, gamelog_rows)
        ref = outs["bruteforce"]
        for name, got in outs.items():
            assert got == ref, name

    def test_with_dhat_cap(self, gamelog_schema, gamelog_rows):
        config = DiscoveryConfig(max_bound_dims=2)
        outs = run_all(gamelog_schema, gamelog_rows, config)
        ref = outs["bruteforce"]
        for name, got in outs.items():
            assert got == ref, name
        assert all(
            c.bound_count <= 2 for pairs in ref for (c, _m) in pairs
        )

    def test_with_mhat_cap(self, gamelog_schema, gamelog_rows):
        config = DiscoveryConfig(max_measure_dims=2)
        outs = run_all(gamelog_schema, gamelog_rows, config)
        ref = outs["bruteforce"]
        for name, got in outs.items():
            assert got == ref, name
        assert all(
            bin(m).count("1") <= 2 for pairs in ref for (_c, m) in pairs
        )

    def test_duplicate_tuples(self):
        """Identical tuples must coexist in skylines (no self-domination)."""
        schema = TableSchema(("d",), ("m1", "m2"))
        rows = [{"d": "x", "m1": 3, "m2": 3}] * 3
        outs = run_all(schema, rows)
        ref = outs["bruteforce"]
        for name, got in outs.items():
            assert got == ref, name
        # Every copy stays a skyline tuple everywhere.
        assert all(len(pairs) == 2 * 3 for pairs in ref)

    def test_single_dimension_single_measure(self):
        schema = TableSchema(("d",), ("m",))
        rows = [{"d": v, "m": x} for v, x in
                [("a", 1), ("b", 5), ("a", 3), ("b", 5), ("a", 0)]]
        outs = run_all(schema, rows)
        ref = outs["bruteforce"]
        for name, got in outs.items():
            assert got == ref, name

    def test_min_preferences_respected(self):
        from repro import MIN

        schema = TableSchema(("d",), ("pts", "fouls"), {"fouls": MIN})
        rows = [
            {"d": "x", "pts": 10, "fouls": 5},
            {"d": "x", "pts": 10, "fouls": 2},  # better: fewer fouls
            {"d": "x", "pts": 12, "fouls": 6},
        ]
        outs = run_all(schema, rows)
        ref = outs["bruteforce"]
        for name, got in outs.items():
            assert got == ref, name
        # Tuple 1 dominates tuple 0 in {fouls} and in {pts, fouls}.
        fouls = schema.measure_mask(("fouls",))
        assert all(m != fouls or c.bound_count >= 0 for c, m in ref[1])


# ----------------------------------------------------------------------
# Randomised equivalence (hypothesis)
# ----------------------------------------------------------------------
row_strategy = st.fixed_dictionaries(
    {
        "d0": st.sampled_from(["a", "b", "c"]),
        "d1": st.sampled_from(["x", "y"]),
        "m0": st.integers(min_value=0, max_value=4),
        "m1": st.integers(min_value=0, max_value=4),
    }
)


class TestRandomisedEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(row_strategy, min_size=1, max_size=18))
    def test_all_algorithms_match_bruteforce(self, rows):
        schema = TableSchema(("d0", "d1"), ("m0", "m1"))
        outs = run_all(schema, rows)
        ref = outs["bruteforce"]
        for name, got in outs.items():
            assert got == ref, name

    @settings(max_examples=20, deadline=None)
    @given(st.lists(row_strategy, min_size=1, max_size=14))
    def test_bruteforce_matches_definitional_oracle(self, rows):
        schema = TableSchema(("d0", "d1"), ("m0", "m1"))
        config = DiscoveryConfig()
        algo = make_algorithm("bruteforce", schema, config)
        history = []
        for row in rows:
            record = algo.table.make_record(row)
            expected = oracle_facts(history, record, schema, config)
            got = algo.process(row).pairs
            assert got == expected
            history.append(record)

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(row_strategy, min_size=1, max_size=14),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=1, max_value=2),
    )
    def test_equivalence_under_caps(self, rows, dhat, mhat):
        schema = TableSchema(("d0", "d1"), ("m0", "m1"))
        config = DiscoveryConfig(max_bound_dims=dhat, max_measure_dims=mhat)
        outs = run_all(schema, rows, config)
        ref = outs["bruteforce"]
        for name, got in outs.items():
            assert got == ref, name


class TestThreeDimThreeMeasure:
    """Wider spaces exercise the subspace-sharing matrices harder."""

    @settings(max_examples=12, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b"]),
                st.sampled_from(["x", "y"]),
                st.sampled_from(["p", "q"]),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_sharing_algorithms_match(self, tuples):
        schema = TableSchema(("d0", "d1", "d2"), ("m0", "m1", "m2"))
        rows = [
            {"d0": a, "d1": b, "d2": c, "m0": x, "m1": y, "m2": z}
            for a, b, c, x, y, z in tuples
        ]
        outs = {}
        for name in ["bruteforce", "bottomup", "topdown", "sbottomup", "stopdown",
                     "svec"]:
            algo = make_algorithm(name, schema)
            outs[name] = [fs.pairs for fs in algo.process_stream(rows)]
        ref = outs["bruteforce"]
        for name, got in outs.items():
            assert got == ref, name
