"""HTTP/WebSocket feed gateway: REST reads, push frames, backpressure.

Everything runs against a real :class:`StreamServer` + ephemeral-port
:class:`FeedGateway`; the WebSocket side uses the hand-rolled
:class:`FeedClient` (which doubles as the protocol's self-test — both
ends implement RFC 6455 independently of each other's buffers).
"""

import asyncio

import pytest

from repro import TableSchema
from repro.api import EngineSpec, FeedSpec, open_engine
from repro.service import FeedClient, FeedGateway, StreamServer, fetch_json
from repro.service.gateway import (
    SubscriptionFilter,
    _Subscriber,
    ws_accept_key,
)

SCHEMA = TableSchema(("d0", "d1"), ("m0", "m1"))


def make_rows(n):
    return [
        {"d0": f"a{i % 3}", "d1": f"b{i % 2}", "m0": i % 5, "m1": (7 - i) % 5}
        for i in range(n)
    ]


def make_spec(**feed_kwargs) -> EngineSpec:
    feed_kwargs.setdefault("group_by", ("d0",))
    return EngineSpec(
        schema=SCHEMA, score=True, feeds=FeedSpec(**feed_kwargs)
    )


async def start_stack(spec=None, **gateway_kwargs):
    engine = open_engine(spec or make_spec())
    server = StreamServer(engine, batch_max=8, batch_window=0.001)
    await server.start()
    gateway = FeedGateway(server, **gateway_kwargs)
    listener = await gateway.start()
    port = listener.sockets[0].getsockname()[1]
    return server, gateway, port


async def stop_stack(server, gateway):
    await gateway.stop()
    await server.stop()


class TestHandshake:
    def test_rfc6455_accept_vector(self):
        # The worked example from RFC 6455 §1.3.
        assert (
            ws_accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )


class TestRestReads:
    def test_endpoints(self):
        async def run():
            server, gateway, port = await start_stack()
            try:
                await server.ingest_many(make_rows(12))
                await server.drain()

                health = await fetch_json("127.0.0.1", port, "/healthz")
                assert health["ok"] is True

                listing = await fetch_json("127.0.0.1", port, "/feeds")
                keys = [seg["segment"] for seg in listing["segments"]]
                assert keys == server.feeds.segment_keys()

                stats = await fetch_json("127.0.0.1", port, "/stats")
                assert stats["stats"]["gateway_http_requests"] >= 2
                assert stats["stats"]["feeds"]["segments"] == len(keys)

                with pytest.raises(ValueError):
                    await fetch_json("127.0.0.1", port, "/feeds/nope")
                with pytest.raises(ValueError):
                    await fetch_json("127.0.0.1", port, "/nothing-here")
                with pytest.raises(ValueError):
                    await fetch_json(
                        "127.0.0.1", port,
                        f"/feeds/{keys[0]}?cursor=garbage",
                    )
            finally:
                await stop_stack(server, gateway)

        asyncio.run(run())

    def test_cursor_pagination_matches_store(self):
        async def run():
            server, gateway, port = await start_stack()
            try:
                await server.ingest_many(make_rows(15))
                await server.drain()
                key = server.feeds.segment_keys()[0]
                expected = [
                    entry.to_json_dict(server.feeds.schema)
                    for entry in server.feeds.entries_ranked(key)
                ]
                got, cursor = [], None
                while True:
                    path = f"/feeds/{key}?limit=4"
                    if cursor:
                        path += f"&cursor={cursor}"
                    page = await fetch_json("127.0.0.1", port, path)
                    got.extend(page["entries"])
                    cursor = page["next_cursor"]
                    if cursor is None:
                        break
                assert got == expected
            finally:
                await stop_stack(server, gateway)

        asyncio.run(run())

    def test_read_filters_pass_through(self):
        async def run():
            server, gateway, port = await start_stack()
            try:
                await server.ingest_many(make_rows(15))
                await server.drain()
                key = server.feeds.segment_keys()[0]
                page = await fetch_json(
                    "127.0.0.1", port, f"/feeds/{key}?top_k=2&tau=1.0"
                )
                expected = server.feeds.entries_ranked(key, top_k=2, tau=1.0)
                assert page["total"] == len(expected)
                assert all(
                    entry["prominence"] >= 1.0 for entry in page["entries"]
                )
            finally:
                await stop_stack(server, gateway)

        asyncio.run(run())


class TestWebSocketPush:
    def test_snapshot_then_updates(self):
        async def run():
            server, gateway, port = await start_stack()
            try:
                await server.ingest_many(make_rows(6))
                await server.drain()
                n_segments = len(server.feeds.segment_keys())

                client = await FeedClient.connect("127.0.0.1", port)
                frames = [await client.recv() for _ in range(n_segments)]
                assert {f["type"] for f in frames} == {"snapshot"}
                assert sorted(f["segment"] for f in frames) == (
                    server.feeds.segment_keys()
                )

                await server.ingest({"d0": "a0", "d1": "b0", "m0": 4, "m1": 4})
                await server.drain()
                update = await client.recv()
                assert update["type"] in ("update", "snapshot")
                # Frame content is the store's current ranked state.
                live = server.feeds.read(update["segment"])
                assert update["version"] == live["version"]
                await client.close()
            finally:
                await stop_stack(server, gateway)

        asyncio.run(run())

    def test_subscription_filters(self):
        async def run():
            server, gateway, port = await start_stack()
            try:
                await server.ingest_many(make_rows(9))
                await server.drain()
                client = await FeedClient.connect(
                    "127.0.0.1", port, "/subscribe?entity=a1&tau=1.0"
                )
                frame = await client.recv()
                assert frame["segment"] == "d0=a1"
                assert all(
                    entry["prominence"] >= 1.0 for entry in frame["entries"]
                )
                # No other segment is ever delivered.
                with pytest.raises(asyncio.TimeoutError):
                    await client.recv(timeout=0.3)
                await client.close()
            finally:
                await stop_stack(server, gateway)

        asyncio.run(run())

    def test_subscriber_count_tracks_connections(self):
        async def run():
            server, gateway, port = await start_stack()
            try:
                await server.ingest_many(make_rows(4))
                await server.drain()
                clients = [
                    await FeedClient.connect("127.0.0.1", port)
                    for _ in range(5)
                ]
                assert server.stats.gateway_subscribers == 5
                for client in clients:
                    await client.close()
                for _ in range(50):
                    if server.stats.gateway_subscribers == 0:
                        break
                    await asyncio.sleep(0.02)
                assert server.stats.gateway_subscribers == 0
            finally:
                await stop_stack(server, gateway)

        asyncio.run(run())


class TestBackpressure:
    def test_dirty_set_is_bounded_and_coalesces(self):
        """The per-connection delivery state never exceeds
        ``max_pending_segments`` no matter how many changes arrive; the
        overflow collapses into one resync and repeats coalesce."""

        async def run():
            server, gateway, port = await start_stack(
                max_pending_segments=3
            )
            try:
                conn = _Subscriber(SubscriptionFilter(), writer=None)
                gateway._subscribers.add(conn)

                # Same segment dirtied twice: second mark coalesces.
                gateway._on_feed_change({"d0=a0"})
                gateway._on_feed_change({"d0=a0"})
                assert len(conn.dirty) == 1
                assert server.stats.gateway_frames_coalesced == 1

                # Distinct segments beyond the cap: bounded + resync.
                gateway._on_feed_change(
                    {f"d0=z{i}" for i in range(10)}
                )
                assert len(conn.dirty) <= 3
                assert conn.resync is True
                assert server.stats.gateway_frames_dropped > 0

                # While resyncing, further marks never grow the set.
                gateway._on_feed_change({"d0=more"})
                assert len(conn.dirty) == 0
                gateway._subscribers.discard(conn)
            finally:
                await stop_stack(server, gateway)

        asyncio.run(run())

    def test_slow_consumer_catches_up_to_current_state(self):
        """A consumer that reads nothing during a burst still converges:
        the frames it eventually reads carry the store's *final* state
        (coalesced), not a replay of every intermediate version."""

        async def run():
            server, gateway, port = await start_stack(
                max_pending_segments=2
            )
            try:
                client = await FeedClient.connect("127.0.0.1", port)
                # Burst of arrivals across many segments while the
                # client sits idle.
                for i in range(30):
                    await server.ingest(
                        {
                            "d0": f"a{i % 6}",
                            "d1": f"b{i % 2}",
                            "m0": i % 5,
                            "m1": (11 - i) % 5,
                        }
                    )
                await server.drain()
                final = {}
                while True:
                    try:
                        frame = await client.recv(timeout=0.5)
                    except asyncio.TimeoutError:
                        break
                    final[frame["segment"]] = frame
                # Every delivered segment's last frame equals current
                # materialized state — catch-up is by snapshot.
                assert final
                for key, frame in final.items():
                    live = server.feeds.read(key)
                    assert frame["version"] == live["version"], key
                    assert len(frame["entries"]) == live["total"], key
                sent = server.stats.gateway_frames_sent
                versions = sum(
                    seg["version"] for seg in server.feeds.segments()
                )
                # Far fewer frames than content versions — the burst
                # coalesced instead of replaying.
                assert sent < versions
                await client.close()
            finally:
                await stop_stack(server, gateway)

        asyncio.run(run())
