"""Tests for the sliding-window, aggregate, and snapshot extensions."""

import os

import pytest

from repro import Constraint, DiscoveryConfig, FactDiscoverer, TableSchema
from repro.extensions import (
    AggregateFactDiscoverer,
    GroupSpec,
    WindowedFactDiscoverer,
    load_engine,
    save_engine,
)

SCHEMA = TableSchema(("d",), ("m1", "m2"))


class TestWindowed:
    def test_window_evicts_oldest(self):
        engine = WindowedFactDiscoverer(SCHEMA, window=3)
        for v in (5, 1, 2, 3):
            engine.observe({"d": "x", "m1": v, "m2": v})
        assert len(engine) == 3
        assert engine.live_tids == [1, 2, 3]

    def test_window_validation(self):
        with pytest.raises(ValueError):
            WindowedFactDiscoverer(SCHEMA, window=0)

    def test_record_breaks_window_after_champion_leaves(self):
        """A value beaten by an evicted champion is a fact *within the
        window* — the whole point of windowed discovery."""
        engine = WindowedFactDiscoverer(SCHEMA, window=2, algorithm="stopdown")
        engine.observe({"d": "x", "m1": 100, "m2": 100})  # champion
        engine.observe({"d": "x", "m1": 1, "m2": 1})
        engine.observe({"d": "x", "m1": 2, "m2": 2})  # champion evicted
        facts = engine.observe({"d": "x", "m1": 50, "m2": 50})
        top_full = (Constraint((None,)), SCHEMA.full_measure_mask)
        assert any(f.pair == top_full for f in facts)

    def test_matches_fresh_engine_on_window_contents(self):
        rows = [{"d": "x", "m1": i % 4, "m2": (i * 3) % 5} for i in range(10)]
        probe = {"d": "x", "m1": 2, "m2": 2}
        windowed = WindowedFactDiscoverer(SCHEMA, window=4, algorithm="bottomup")
        for row in rows:
            windowed.observe(row)
        got = {
            (f.constraint.values, f.subspace)
            for f in windowed.observe(probe)
        }
        # The window includes the new arrival: the probe is compared
        # against the window-1 most recent historical rows.
        fresh = FactDiscoverer(SCHEMA, algorithm="bottomup")
        for row in rows[-3:]:
            fresh.observe(row)
        expected = {
            (f.constraint.values, f.subspace) for f in fresh.observe(probe)
        }
        assert got == expected

    def test_observe_many(self):
        engine = WindowedFactDiscoverer(SCHEMA, window=2)
        outs = engine.observe_many(
            {"d": "x", "m1": i, "m2": i} for i in range(4)
        )
        assert len(outs) == 4

    def test_observe_all_deprecated(self):
        engine = WindowedFactDiscoverer(SCHEMA, window=2)
        with pytest.warns(DeprecationWarning, match="observe_many"):
            outs = engine.observe_all(
                [{"d": "x", "m1": i, "m2": i} for i in range(4)]
            )
        assert len(outs) == 4


class TestGroupSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            GroupSpec((), {"t": ("p", "sum")})
        with pytest.raises(ValueError):
            GroupSpec(("g",), {})
        with pytest.raises(ValueError):
            GroupSpec(("g",), {"t": ("p", "median")})


class TestAggregates:
    def _spec(self):
        return GroupSpec(
            ("team",),
            {
                "total": ("pts", "sum"),
                "best": ("pts", "max"),
                "games": ("pts", "count"),
            },
        )

    def test_running_aggregates(self):
        agg = AggregateFactDiscoverer(self._spec())
        agg.observe({"team": "A", "pts": 10})
        agg.observe({"team": "A", "pts": 30})
        agg.observe({"team": "B", "pts": 25})
        assert agg.aggregate_row(("A",)) == {
            "team": "A", "total": 40.0, "best": 30.0, "games": 2.0,
        }
        assert agg.group_count() == 2

    def test_one_live_aggregate_tuple_per_group(self):
        agg = AggregateFactDiscoverer(self._spec())
        for i in range(5):
            agg.observe({"team": "A", "pts": i})
        for i in range(3):
            agg.observe({"team": "B", "pts": i})
        assert len(agg.engine.table) == 2  # stale aggregates retracted

    def test_overtaking_group_becomes_fact(self):
        agg = AggregateFactDiscoverer(
            GroupSpec(("team",), {"total": ("pts", "sum")}),
            algorithm="stopdown",
        )
        agg.observe({"team": "A", "pts": 50})
        agg.observe({"team": "B", "pts": 30})
        facts = agg.observe({"team": "B", "pts": 40})  # B overtakes: 70 > 50
        top = (Constraint((None,)), 0b1)
        assert any(f.pair == top for f in facts)

    def test_avg_and_min(self):
        spec = GroupSpec(
            ("team",), {"mean": ("pts", "avg"), "low": ("pts", "min")}
        )
        agg = AggregateFactDiscoverer(spec)
        agg.observe({"team": "A", "pts": 10})
        agg.observe({"team": "A", "pts": 20})
        row = agg.aggregate_row(("A",))
        assert row["mean"] == 15.0
        assert row["low"] == 10.0


class TestSnapshot:
    def test_roundtrip(self, tmp_path):
        engine = FactDiscoverer(
            SCHEMA,
            algorithm="stopdown",
            config=DiscoveryConfig(max_bound_dims=1, tau=2.0),
        )
        engine.observe({"d": "x", "m1": 3, "m2": 4})
        engine.observe({"d": "y", "m1": 1, "m2": 9})
        path = str(tmp_path / "snap.json")
        save_engine(engine, path)
        loaded = load_engine(path)
        assert len(loaded.table) == 2
        assert loaded.algorithm.name == "stopdown"
        assert loaded.config.tau == 2.0
        # Same future behaviour: next observation gives identical facts.
        probe = {"d": "x", "m1": 2, "m2": 2}
        expected = {(f.constraint.values, f.subspace) for f in engine.facts_for(probe)}
        got = {(f.constraint.values, f.subspace) for f in loaded.facts_for(probe)}
        assert got == expected

    def test_preferences_preserved(self, tmp_path):
        from repro import MIN

        schema = TableSchema(("d",), ("pts", "fouls"), {"fouls": MIN})
        engine = FactDiscoverer(schema, algorithm="bottomup")
        engine.observe({"d": "x", "pts": 5, "fouls": 2})
        path = str(tmp_path / "snap.json")
        save_engine(engine, path)
        loaded = load_engine(path)
        assert loaded.schema.preference("fouls") == MIN

    def test_unknown_version_rejected(self, tmp_path):
        import json

        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            json.dump({"format_version": 99}, fh)
        with pytest.raises(ValueError, match="unsupported snapshot version"):
            load_engine(path)
